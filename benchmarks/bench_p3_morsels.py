"""P3 benchmark: morsel-driven parallel executor scaling vs. worker count.

Rebuilds the E8 clique schema + workload (same shape as ``bench_p1``),
plans every query once, then times pure plan execution under the
single-threaded vectorized baseline and under parallel mode at 1, 2, 4,
and 8 workers on the *same* plan objects. Every configuration must report
identical rows and bit-identical work (the work-parity invariant), so the
wall-clock ratios are pure scheduling effects.

Run standalone to (re)generate ``BENCH_P3.json``::

    PYTHONPATH=src python benchmarks/bench_p3_morsels.py

``REPRO_BENCH_FAST=1`` shrinks to E8's fast sizes. The JSON records
``cpu_count`` alongside the speedups: thread-level speedup on NumPy
kernels requires real cores, so on a 1-CPU container the expected result
is parity (~1x, minus small scheduling overhead), and the ≥2x acceptance
gate below is skipped unless at least 4 CPUs are present.
"""

import json
import os
import time

import pytest

from repro.engine import datagen
from repro.engine.database import Database
from repro.engine.executor import Executor

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

WORKER_COUNTS = (1, 2, 4, 8)

#: Morsel size for the benchmark: small enough that the E8-scale joins
#: (tens of thousands of intermediate rows) split into many morsels.
MORSEL_ROWS = 4096


def build_workload_plans(fast, seed=0):
    """The E8 schema/workload, planned once; returns ``(db, plans)``."""
    db = Database()
    names, edges = datagen.make_join_graph_schema(
        db.catalog, "clique", n_tables=5,
        rows_per_table=400 if fast else 600, seed=seed + 3, prefix="n",
        correlated=True,
    )
    workload = datagen.join_graph_workload(
        names, edges, n_queries=12 if fast else 18, seed=seed + 4,
        min_tables=4,
    )
    return db, [db.planner.plan(q) for q in workload]


def execute_all(db, plans, mode, n_workers=None, morsel_rows=MORSEL_ROWS):
    """Execute every plan; returns ``(rows, work, morsels_dispatched)``."""
    ex = Executor(db.catalog, db.cost_model, mode=mode,
                  morsel_rows=morsel_rows, n_workers=n_workers)
    total_rows, total_work, total_morsels = 0, 0.0, 0
    for plan in plans:
        result = ex.execute(plan)
        total_rows += len(result.rows)
        total_work += result.work
        total_morsels += sum(
            v["morsels"] for v in result.telemetry.operators.values()
        )
    return total_rows, total_work, total_morsels


def measure(fast, repeats=3, seed=0):
    """Best-of-``repeats`` wall time per configuration plus speedups."""
    db, plans = build_workload_plans(fast, seed=seed)
    out = {
        "workload": "E8 clique (rows_per_table=%d, queries=%d)"
        % (400 if fast else 600, 12 if fast else 18),
        "fast": fast,
        "morsel_rows": MORSEL_ROWS,
        "cpu_count": os.cpu_count(),
        "modes": {},
    }
    checks = {}

    def timed(label, mode, n_workers=None):
        best = float("inf")
        for __ in range(repeats):
            t0 = time.perf_counter()
            rows, work, morsels = execute_all(db, plans, mode, n_workers)
            best = min(best, time.perf_counter() - t0)
        checks[label] = (rows, work)
        out["modes"][label] = {
            "seconds": best,
            "total_rows": rows,
            "total_work": work,
            "morsels_dispatched": morsels,
        }

    timed("vectorized", "vectorized")
    for workers in WORKER_COUNTS:
        timed("parallel_%d" % workers, "parallel", n_workers=workers)
    baseline = checks["vectorized"]
    for label, check in checks.items():
        assert check == baseline, (
            "configuration %s disagrees with vectorized: %r vs %r"
            % (label, check, baseline)
        )
    base_seconds = out["modes"]["vectorized"]["seconds"]
    out["speedups"] = {
        "parallel_%d" % w: base_seconds
        / max(out["modes"]["parallel_%d" % w]["seconds"], 1e-12)
        for w in WORKER_COUNTS
    }
    return out


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_p3_parallel_parity_all_worker_counts():
    """Every worker count returns identical rows and bit-identical work."""
    db, plans = build_workload_plans(fast=True)
    baseline = execute_all(db, plans, "vectorized")[:2]
    for workers in WORKER_COUNTS:
        result = execute_all(db, plans, "parallel", n_workers=workers)
        assert result[:2] == baseline, workers
        assert result[2] > 0, "no morsels dispatched at %d workers" % workers


def test_p3_scaling_benchmark(benchmark):
    """Times parallel execution at 4 workers on the FAST-aware workload."""
    db, plans = build_workload_plans(fast=FAST)
    rows, work, morsels = benchmark.pedantic(
        execute_all, args=(db, plans, "parallel", 4), rounds=1, iterations=1
    )
    assert rows > 0 and work > 0 and morsels > 0


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="thread speedup needs >= 4 real cores (cpu_count=%r)"
    % os.cpu_count(),
)
def test_p3_parallel_speedup_full_size():
    """Acceptance gate: ≥2x execution-phase speedup at 4 workers."""
    payload = measure(fast=False, repeats=2)
    assert payload["speedups"]["parallel_4"] >= 2.0, payload


if __name__ == "__main__":
    payload = {"bench": "P3 morsel-driven parallel executor", "results": []}
    for fast in (True, False):
        result = measure(fast)
        payload["results"].append(result)
        line = ", ".join(
            "%s %.3fs" % (label, cfg["seconds"])
            for label, cfg in result["modes"].items()
        )
        print("%s: %s" % ("fast" if fast else "full", line))
        print("  speedups vs vectorized: %s" % (
            ", ".join(
                "%s=%.2fx" % (k, v) for k, v in result["speedups"].items()
            )
        ))
    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_P3.json")
    with open(os.path.abspath(out_path), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_P3.json")
