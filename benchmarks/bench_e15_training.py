"""Regenerates E15: materialization, parallel search, halving, offload.

See DESIGN.md section 5 (experiment E15) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e15_training(benchmark):
    """Regenerates E15: materialization, parallel search, halving, offload."""
    tables = run_experiment_benchmark(benchmark, "E15")
    assert tables
