"""Regenerates E8: NEO-lite end-to-end optimizer on executed work.

See DESIGN.md section 5 (experiment E8) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e08_end_to_end(benchmark):
    """Regenerates E8: NEO-lite end-to-end optimizer on executed work."""
    tables = run_experiment_benchmark(benchmark, "E8")
    assert tables
