"""P1 benchmark: row vs. vectorized executor on the E8 execution phase.

Rebuilds the E8 clique schema + workload, plans every query once, then
times pure plan execution (no planning, no learning) under both executor
modes on the *same* plan objects. The two modes must report identical
total work — the work-parity invariant — so the wall-clock ratio is pure
implementation speedup.

Run standalone to (re)generate ``BENCH_P1.json``::

    PYTHONPATH=src python benchmarks/bench_p1_executor.py

``REPRO_BENCH_FAST=1`` shrinks to E8's fast sizes; the committed JSON and
the ≥5× acceptance gate use the full sizes.
"""

import json
import os
import time

import pytest

from repro.engine import datagen
from repro.engine.database import Database
from repro.engine.executor import EXECUTOR_MODES, Executor

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"


def build_workload_plans(fast, seed=0):
    """The E8 schema/workload, planned once; returns ``(db, plans)``."""
    db = Database()
    names, edges = datagen.make_join_graph_schema(
        db.catalog, "clique", n_tables=5,
        rows_per_table=400 if fast else 600, seed=seed + 3, prefix="n",
        correlated=True,
    )
    workload = datagen.join_graph_workload(
        names, edges, n_queries=12 if fast else 18, seed=seed + 4,
        min_tables=4,
    )
    return db, [db.planner.plan(q) for q in workload]


def execute_all(db, plans, mode):
    """Execute every plan in ``mode``; returns ``(total_rows, total_work)``."""
    ex = Executor(db.catalog, db.cost_model, mode=mode)
    total_rows, total_work = 0, 0.0
    for plan in plans:
        result = ex.execute(plan)
        total_rows += len(result.rows)
        total_work += result.work
    return total_rows, total_work


def measure(fast, repeats=3, seed=0):
    """Best-of-``repeats`` wall time per mode plus the speedup ratio."""
    db, plans = build_workload_plans(fast, seed=seed)
    out = {
        "workload": "E8 clique (rows_per_table=%d, queries=%d)"
        % (400 if fast else 600, 12 if fast else 18),
        "fast": fast,
        "modes": {},
    }
    checks = {}
    for mode in EXECUTOR_MODES:
        best = float("inf")
        for __ in range(repeats):
            t0 = time.perf_counter()
            checks[mode] = execute_all(db, plans, mode)
            best = min(best, time.perf_counter() - t0)
        out["modes"][mode] = {
            "seconds": best,
            "total_rows": checks[mode][0],
            "total_work": checks[mode][1],
        }
    for mode in EXECUTOR_MODES:
        assert checks[mode] == checks["row"], (
            "executor modes disagree: %r" % (checks,)
        )
    out["speedup"] = out["modes"]["row"]["seconds"] / max(
        out["modes"]["vectorized"]["seconds"], 1e-12
    )
    return out


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_p1_executor_modes(benchmark, executor_mode):
    """Times one executor mode on the (FAST-aware) E8 execution phase."""
    db, plans = build_workload_plans(fast=FAST)
    total_rows, total_work = benchmark.pedantic(
        execute_all, args=(db, plans, executor_mode), rounds=1, iterations=1
    )
    assert total_rows > 0 and total_work > 0


def test_p1_modes_agree_on_totals():
    """Every mode produces the same rows and work on the FAST workload."""
    db, plans = build_workload_plans(fast=True)
    baseline = execute_all(db, plans, "row")
    for mode in EXECUTOR_MODES:
        assert execute_all(db, plans, mode) == baseline, mode


@pytest.mark.slow
def test_p1_vectorized_speedup_full_size():
    """Acceptance gate: ≥5× execution-phase speedup at full E8 sizes."""
    payload = measure(fast=False, repeats=2)
    assert payload["speedup"] >= 5.0, payload


if __name__ == "__main__":
    payload = {"bench": "P1 vectorized executor", "results": []}
    for fast in (True, False):
        result = measure(fast)
        payload["results"].append(result)
        print(
            "%s: row %.3fs vectorized %.3fs -> %.1fx"
            % (
                "fast" if fast else "full",
                result["modes"]["row"]["seconds"],
                result["modes"]["vectorized"]["seconds"],
                result["speedup"],
            )
        )
    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_P1.json")
    with open(os.path.abspath(out_path), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_P1.json")
