"""P4 benchmark: fused Filter→Project/Aggregate tails vs. unfused plans.

Builds a wide fact table (an E8-scale aggregate workload: selective
predicates feeding GROUP BY / global aggregates / DISTINCT / LIMIT tails
that read only a few of its columns), plans every query once, then times
pure plan execution with operator fusion off and on using the *same* plan
objects. Fusion must not change results — every configuration reports
identical rows and bit-identical work — so the wall-clock ratio isolates
what fusion saves: the fully-materialized filtered intermediate (every
column gathered, immediately discarded) that the unfused tail builds
between Filter and Project/Aggregate. ``tracemalloc`` peak bytes per pass
quantify that saved materialization directly.

Run standalone to (re)generate ``BENCH_P4.json``::

    PYTHONPATH=src python benchmarks/bench_p4_fusion.py

``REPRO_BENCH_FAST=1`` shrinks the table. The ≥1.3x acceptance gate runs
at full size and is marked slow (PR 3 convention).
"""

import json
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.query import Aggregate, ConjunctiveQuery, Predicate
from repro.engine.storage import Table
from repro.engine.types import ColumnSchema, DataType, TableSchema

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: Measure columns beyond the key columns — wide enough that materializing
#: all of them (the unfused path) visibly costs time and memory.
N_MEASURE_COLS = 12

PARALLEL_WORKERS = 4


def build_workload_plans(fast, seed=0):
    """Wide-table aggregate workload, planned once; ``(db, plans)``."""
    n_rows = 40_000 if fast else 200_000
    rng = np.random.default_rng(seed)
    columns = {
        "id": np.arange(n_rows, dtype=np.int64),
        "k": rng.integers(0, 64, size=n_rows),
        "tag": np.array(
            ["g%02d" % g for g in rng.integers(0, 24, size=n_rows)],
            dtype=object,
        ),
    }
    schema_cols = [
        ColumnSchema("id", DataType.INT),
        ColumnSchema("k", DataType.INT),
        ColumnSchema("tag", DataType.TEXT),
    ]
    for j in range(N_MEASURE_COLS):
        name = "m%02d" % j
        columns[name] = rng.uniform(-100.0, 100.0, size=n_rows)
        schema_cols.append(ColumnSchema(name, DataType.FLOAT))
    db = Database()
    db.catalog.register_table(
        Table(TableSchema("wide", schema_cols), columns=columns)
    )
    db.catalog.analyze("wide")
    t = "wide"
    queries = [
        # Grouped aggregate over 3 of the 12 measure columns.
        ConjunctiveQuery(
            tables=[t],
            predicates=[Predicate(t, "k", "<", 16)],
            group_by=[(t, "tag")],
            aggregates=[
                Aggregate("count"),
                Aggregate("sum", t, "m00"),
                Aggregate("avg", t, "m01"),
                Aggregate("max", t, "m02"),
            ],
        ),
        # Global aggregate behind a float predicate.
        ConjunctiveQuery(
            tables=[t],
            predicates=[Predicate(t, "m03", ">", 0.0)],
            aggregates=[
                Aggregate("count"),
                Aggregate("sum", t, "m04"),
                Aggregate("min", t, "m05"),
            ],
        ),
        # DISTINCT over one narrow column.
        ConjunctiveQuery(
            tables=[t],
            predicates=[Predicate(t, "k", "<", 32)],
            projections=[(t, "tag")],
            distinct=True,
        ),
        # Selective filter + narrow projection + LIMIT.
        ConjunctiveQuery(
            tables=[t],
            predicates=[Predicate(t, "m06", ">", 95.0)],
            projections=[(t, "id"), (t, "m07")],
            limit=100,
        ),
    ]
    return db, [db.planner.plan(q) for q in queries]


def execute_all(db, plans, mode, fusion):
    """Execute every plan; ``(rows, work, fused_ops)`` totals."""
    kwargs = {"mode": mode, "fusion_enabled": fusion}
    if mode == "parallel":
        kwargs["n_workers"] = PARALLEL_WORKERS
    ex = Executor(db.catalog, db.cost_model, **kwargs)
    total_rows, total_work, total_fused = 0, 0.0, 0
    for plan in plans:
        result = ex.execute(plan)
        total_rows += len(result.rows)
        total_work += result.work
        total_fused += result.telemetry.fused_ops
    return total_rows, total_work, total_fused


def peak_alloc_bytes(db, plans, mode, fusion):
    """tracemalloc peak during one full pass (intermediates included)."""
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        execute_all(db, plans, mode, fusion)
        __, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def measure(fast, repeats=3, seed=0, modes=("vectorized", "parallel")):
    """Best-of-``repeats`` timings + peak allocation, fused vs. unfused."""
    db, plans = build_workload_plans(fast, seed=seed)
    out = {
        "workload": "wide-table aggregate (rows=%d, measure_cols=%d, "
        "queries=%d)" % (40_000 if fast else 200_000, N_MEASURE_COLS,
                         len(plans)),
        "fast": fast,
        "cpu_count": os.cpu_count(),
        "configs": {},
        "speedups": {},
        "peak_alloc_ratio": {},
    }
    checks = {}
    for mode in modes:
        for fusion in (False, True):
            label = "%s_%s" % (mode, "fused" if fusion else "unfused")
            best = float("inf")
            for __ in range(repeats):
                t0 = time.perf_counter()
                rows, work, fused_ops = execute_all(db, plans, mode, fusion)
                best = min(best, time.perf_counter() - t0)
            checks[label] = (rows, work)
            out["configs"][label] = {
                "seconds": best,
                "total_rows": rows,
                "total_work": work,
                "fused_ops": fused_ops,
                "peak_alloc_bytes": peak_alloc_bytes(db, plans, mode,
                                                     fusion),
            }
    baseline = checks["%s_unfused" % modes[0]]
    for label, check in checks.items():
        assert check == baseline, (
            "configuration %s disagrees with unfused: %r vs %r"
            % (label, check, baseline)
        )
    for mode in modes:
        unfused = out["configs"]["%s_unfused" % mode]
        fused = out["configs"]["%s_fused" % mode]
        out["speedups"][mode] = unfused["seconds"] / max(
            fused["seconds"], 1e-12
        )
        out["peak_alloc_ratio"][mode] = fused["peak_alloc_bytes"] / max(
            unfused["peak_alloc_bytes"], 1
        )
    return out


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_p4_fusion_parity_and_coverage():
    """Fusion changes neither rows nor work, and actually fires."""
    db, plans = build_workload_plans(fast=True)
    baseline = execute_all(db, plans, "vectorized", fusion=False)
    assert baseline[2] == 0  # fusion off => no fused ops
    for mode in ("vectorized", "parallel", "row"):
        result = execute_all(db, plans, mode, fusion=True)
        assert result[:2] == baseline[:2], mode
        assert result[2] >= len(plans), (
            "fusion did not fire in %s mode" % mode
        )


def test_p4_fusion_benchmark(benchmark):
    """Times the fused vectorized pass on the FAST-aware workload."""
    db, plans = build_workload_plans(fast=FAST)
    rows, work, fused_ops = benchmark.pedantic(
        execute_all, args=(db, plans, "vectorized", True),
        rounds=1, iterations=1,
    )
    assert rows > 0 and work > 0 and fused_ops > 0


@pytest.mark.slow
def test_p4_fusion_speedup_full_size():
    """Acceptance gate: ≥1.3x execution-phase speedup from fusion."""
    payload = measure(fast=False, repeats=2, modes=("vectorized",))
    assert payload["speedups"]["vectorized"] >= 1.3, payload


if __name__ == "__main__":
    payload = {"bench": "P4 operator fusion", "results": []}
    for fast in (True, False):
        result = measure(fast)
        payload["results"].append(result)
        line = ", ".join(
            "%s %.3fs" % (label, cfg["seconds"])
            for label, cfg in result["configs"].items()
        )
        print("%s: %s" % ("fast" if fast else "full", line))
        print("  fusion speedups: %s; peak-alloc ratio fused/unfused: %s" % (
            ", ".join(
                "%s=%.2fx" % (k, v) for k, v in result["speedups"].items()
            ),
            ", ".join(
                "%s=%.2f" % (k, v)
                for k, v in result["peak_alloc_ratio"].items()
            ),
        ))
    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_P4.json")
    with open(os.path.abspath(out_path), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_P4.json")
