"""Regenerates E4: learned rule-ordering rewrites vs. fixed order.

See DESIGN.md section 5 (experiment E4) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e04_sql_rewriter(benchmark):
    """Regenerates E4: learned rule-ordering rewrites vs. fixed order."""
    tables = run_experiment_benchmark(benchmark, "E4")
    assert tables
