"""Regenerates E14: EKG discovery, ActiveClean, truth inference.

See DESIGN.md section 5 (experiment E14) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e14_governance(benchmark):
    """Regenerates E14: EKG discovery, ActiveClean, truth inference."""
    tables = run_experiment_benchmark(benchmark, "E14")
    assert tables
