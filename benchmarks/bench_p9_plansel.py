"""P9 benchmark: plan selection — who wins where, and what the bandit learns.

The plan-selection layer's acceptance experiment. A skewed + correlated
workload is built so the estimate-driven arms are *deceived*:

* a correlated predicate pair on the probe table (``b.p = 1 AND b.q = 1``
  holds for every heavy row) makes independence-multiplied selectivities
  underestimate the filtered size ~17x;
* a heavy-hitter join key (``k = 99``) is inserted *after* ANALYZE, so
  histogram-driven join estimates still describe the benign world while
  the true ``b ⋈ c`` fan-out is quadratic in the burst size.

The UES arm is immune by construction — its order comes from exact
max-frequency upper bounds, not estimates — so on the explosive template
the estimate-driven arms do >5x the work of UES, while on the benign
templates they win slightly (UES ignores predicates). That asymmetry is
exactly what the bandit has to learn: four strategies race the same
query sequence and ``BENCH_P9.json`` records who wins where.

* **optimal** — per-query minimum work over every arm (the oracle the
  learned selector is chasing; unreachable in one pass).
* **learned** — a live ``plan_selector="bandit"`` database running the
  sequence online, training only on its own measured work.
* **pessimistic** — the UES arm everywhere (``plan_selector=
  "pessimistic"``): safe on the explosive template, a constant small tax
  on the benign ones.
* **heuristic** — the greedy arm everywhere: the single-path baseline
  this PR's refactor replaced.

Acceptance gates (PR 10): the bandit's total work beats the heuristic
arm's, while its p95 per-query work stays within ``regret_cap`` x the
UES arm's p95 — it may explore, but the regret guard and strike-demotion
keep the tail bounded.

Run standalone to (re)generate ``BENCH_P9.json``::

    PYTHONPATH=src python benchmarks/bench_p9_plansel.py

``REPRO_BENCH_FAST=1`` shrinks the workload. The acceptance gates run at
full size and are marked slow (PR 3 convention); a fast-size headline
gate covers the total-work win.
"""

import json
import os
import random

import pytest

from repro.engine import Database
from repro.engine.optimizer.hints import default_arms
from repro.engine.telemetry import percentile

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: The heavy-hitter join key inserted after ANALYZE (outside the benign
#: key domain 0..39, so only burst rows collide on it).
HEAVY_K = 99

#: Workload mix: (template name, weight).
MIX = (("explosive", 0.35), ("benign3", 0.30),
       ("twoway", 0.20), ("groupby", 0.15))


def _sizes(fast):
    """(a_rows, b_and_c_rows, heavy_burst, workload_queries)."""
    return (300, 1_000, 300, 160) if fast else (600, 2_500, 700, 400)


def build_db(fast, seed=0, **config):
    """The skewed + correlated catalog with deliberately stale statistics.

    ``a`` holds only benign keys; ``b`` and ``c`` get a post-ANALYZE
    burst of ``heavy`` rows on :data:`HEAVY_K` (with ``p = q = 1`` on
    ``b``, the correlation). Feedback stays off so the estimate-driven
    arms keep planning from the benign-world statistics — the deception
    under test is the planner's, and only plan *selection* may route
    around it.
    """
    n_a, n_bc, heavy, __ = _sizes(fast)
    rng = random.Random(seed)
    db = Database(seed=seed, **config)
    db.execute("CREATE TABLE a (id INT, k INT, v INT)")
    db.execute("CREATE TABLE b (id INT, k INT, p INT, q INT)")
    db.execute("CREATE TABLE c (id INT, k INT, w INT)")
    db.catalog.table("a").insert_rows([
        (i, rng.randrange(40), rng.randrange(1000)) for i in range(n_a)
    ])
    db.catalog.table("b").insert_rows([
        (i, rng.randrange(40), rng.randrange(8), rng.randrange(8))
        for i in range(n_bc)
    ])
    db.catalog.table("c").insert_rows([
        (i, rng.randrange(40), rng.randrange(1000)) for i in range(n_bc)
    ])
    db.execute("ANALYZE")
    db.catalog.table("b").insert_rows([
        (n_bc + i, HEAVY_K, 1, 1) for i in range(heavy)
    ])
    db.catalog.table("c").insert_rows([
        (n_bc + i, HEAVY_K, rng.randrange(1000)) for i in range(heavy)
    ])
    return db


def _template_sql(name, rng):
    """One concrete SQL string for a template (literals from small pools,
    so the plan cache sees repeats)."""
    v = rng.choice((300, 400, 500, 600))
    if name == "explosive":
        # b filtered by the correlated pair: its true size includes the
        # whole heavy burst, its estimate does not. The only join edges
        # are a-c and b-c, so an order that starts from the
        # "small-looking" b must pay the b >< c heavy-key fan-out.
        return ("SELECT COUNT(*) FROM a, b, c "
                "WHERE a.k = c.k AND b.k = c.k "
                "AND b.p = 1 AND b.q = 1 AND a.v < %d" % v)
    if name == "benign3":
        # Same join shape, but the predicate excludes the burst
        # (heavy rows all have p = 1): every order is safe, and the
        # estimate-driven arms slightly beat UES (which ignores filters).
        return ("SELECT COUNT(*) FROM a, b, c "
                "WHERE a.k = c.k AND b.k = c.k "
                "AND b.p = %d AND a.v < %d" % (rng.choice((2, 4, 6)), v))
    if name == "twoway":
        return ("SELECT COUNT(*) FROM a, c "
                "WHERE a.k = c.k AND a.v < %d" % v)
    if name == "groupby":
        return "SELECT k, COUNT(*) FROM c GROUP BY k"
    raise ValueError(name)


def make_workload(fast, seed=0):
    """The query sequence: ``[(template_name, sql), ...]``, MIX-weighted."""
    __, __, __, n_queries = _sizes(fast)
    rng = random.Random(seed * 7919 + 17)
    names = [name for name, __w in MIX]
    weights = [w for __n, w in MIX]
    return [
        (name, _template_sql(name, rng))
        for name in rng.choices(names, weights=weights, k=n_queries)
    ]


def arm_work_table(db, sqls):
    """Measured work per (sql, arm): ``{sql: {arm: total_work}}``.

    Plans each distinct statement once per arm via
    ``Planner.plan_candidates`` and executes on the arm's executor —
    the ground truth the *optimal*, *heuristic*, and *pessimistic*
    strategies are scored from (the workload is read-only, so per-arm
    work is deterministic and independent of sequence position).
    """
    table = {}
    for sql in sqls:
        query = db.pipeline.lower_sql(sql)
        per_arm = {}
        for hints in default_arms():
            cand = db.planner.plan_candidates(query, [hints])[0]
            result = db.executor_for(hints).execute(cand.plan)
            per_arm[hints.name] = result.telemetry.total_work
        table[sql] = per_arm
    return table


def _series_stats(works):
    return {
        "total_work": sum(works),
        "mean_work": sum(works) / max(len(works), 1),
        "p50_work": percentile(works, 0.50),
        "p95_work": percentile(works, 0.95),
        "max_work": max(works) if works else 0.0,
    }


def run_strategies(fast, seed=0):
    """Race the four strategies over one workload; the P9 result dict."""
    workload = make_workload(fast, seed=seed)
    distinct = sorted({sql for __name, sql in workload})

    oracle_db = build_db(fast, seed=seed)
    table = arm_work_table(oracle_db, distinct)

    optimal = [min(table[sql].values()) for __name, sql in workload]
    heuristic = [table[sql]["greedy"] for __name, sql in workload]
    pessimistic = [table[sql]["ues"] for __name, sql in workload]

    # The learned strategy runs live: selection, online training, and
    # per-arm plan caching all exercised end to end.
    bandit_db = build_db(fast, seed=seed, plan_selector="bandit")
    learned, arm_picks = [], {}
    for __name, sql in workload:
        result = bandit_db.execute(sql)
        learned.append(result.telemetry.total_work)
        arm = result.pipeline_telemetry.arm
        arm_picks[arm] = arm_picks.get(arm, 0) + 1

    # Who wins where: per template, each arm's mean work and the winner.
    who_wins = {}
    for tname in sorted({name for name, __sql in workload}):
        sqls = sorted({sql for name, sql in workload if name == tname})
        per_arm = {
            arm: sum(table[sql][arm] for sql in sqls) / len(sqls)
            for arm in table[sqls[0]]
        }
        who_wins[tname] = {
            "mean_work_per_arm": per_arm,
            "winner": min(per_arm, key=per_arm.get),
        }

    regret_cap = bandit_db.config.regret_cap
    strategies = {
        "optimal": _series_stats(optimal),
        "learned": _series_stats(learned),
        "pessimistic": _series_stats(pessimistic),
        "heuristic": _series_stats(heuristic),
    }
    return {
        "fast": fast,
        "queries": len(workload),
        "distinct_statements": len(distinct),
        "mix": dict(MIX),
        "regret_cap": regret_cap,
        "strategies": strategies,
        "who_wins_where": who_wins,
        "bandit_arm_picks": dict(sorted(arm_picks.items())),
        "bandit_selector": bandit_db.plan_selector.stats(),
        "gates": {
            "learned_total_lt_heuristic": (
                strategies["learned"]["total_work"]
                < strategies["heuristic"]["total_work"]
            ),
            "learned_p95_le_cap_x_ues_p95": (
                strategies["learned"]["p95_work"]
                <= regret_cap * strategies["pessimistic"]["p95_work"]
            ),
        },
    }


def measure(fast, seed=0):
    return run_strategies(fast, seed=seed)


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_p9_who_wins_where():
    """The workload separates the arms as designed: UES wins the
    explosive template, an estimate-driven arm wins the benign 3-way."""
    result = run_strategies(fast=True)
    wins = result["who_wins_where"]
    assert wins["explosive"]["winner"] == "ues", wins["explosive"]
    assert wins["benign3"]["winner"] != "ues", wins["benign3"]
    per_arm = wins["explosive"]["mean_work_per_arm"]
    assert per_arm["greedy"] > 5.0 * per_arm["ues"], per_arm


def test_p9_bandit_beats_heuristic():
    """Headline gate at fast size: online bandit total work beats the
    greedy arm, and every arm got explored at least once."""
    result = run_strategies(fast=True)
    strategies = result["strategies"]
    assert (strategies["learned"]["total_work"]
            < strategies["heuristic"]["total_work"]), strategies
    assert strategies["optimal"]["total_work"] <= min(
        s["total_work"] for name, s in strategies.items() if name != "optimal"
    ), strategies
    assert result["bandit_arm_picks"].get("ues", 0) > 0, result


def test_p9_plansel_benchmark(benchmark):
    """Times the full FAST-aware four-strategy race."""
    payload = benchmark.pedantic(
        measure, args=(FAST,), rounds=1, iterations=1,
    )
    assert payload["gates"]["learned_total_lt_heuristic"], payload["gates"]


@pytest.mark.slow
def test_p9_gates_full_size():
    """Acceptance gates at full size: the bandit beats the heuristic arm
    on total work while its p95 stays within regret_cap x the UES arm's
    p95."""
    result = run_strategies(fast=False)
    gates = result["gates"]
    assert gates["learned_total_lt_heuristic"], result["strategies"]
    assert gates["learned_p95_le_cap_x_ues_p95"], result["strategies"]


if __name__ == "__main__":
    payload = {"bench": "P9 plan selection (hint-set arms)", "results": []}
    for fast in (True, False):
        result = measure(fast)
        payload["results"].append(result)
        strategies = result["strategies"]
        print("%s: %d queries | total work: optimal %.0f, learned %.0f, "
              "pessimistic %.0f, heuristic %.0f | gates: %s" % (
                  "fast" if fast else "full", result["queries"],
                  strategies["optimal"]["total_work"],
                  strategies["learned"]["total_work"],
                  strategies["pessimistic"]["total_work"],
                  strategies["heuristic"]["total_work"],
                  result["gates"],
              ))
        for tname, entry in result["who_wins_where"].items():
            print("  %-10s winner=%s" % (tname, entry["winner"]))
    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_P9.json")
    with open(os.path.abspath(out_path), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_P9.json")
