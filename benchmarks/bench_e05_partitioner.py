"""Regenerates E5: RL partition-key advisor vs. heuristic.

See DESIGN.md section 5 (experiment E5) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e05_partitioner(benchmark):
    """Regenerates E5: RL partition-key advisor vs. heuristic."""
    tables = run_experiment_benchmark(benchmark, "E5")
    assert tables
