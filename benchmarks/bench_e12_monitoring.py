"""Regenerates E12: forecasting, perf prediction, root cause, bandit auditing.

See DESIGN.md section 5 (experiment E12) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e12_monitoring(benchmark):
    """Regenerates E12: forecasting, perf prediction, root cause, bandit auditing."""
    tables = run_experiment_benchmark(benchmark, "E12")
    assert tables
