"""P5 benchmark: the closed cardinality-feedback loop.

Two experiments quantify what executing queries teaches the optimizer:

1. **Learned-estimator correction.** A learned estimator trained only on
   single-predicate queries (marginal selectivities) faces a skewed
   workload of correlated conjunctions it systematically underestimates.
   Each execution's per-node actual cardinalities are ingested into a
   :class:`~repro.engine.optimizer.feedback.QueryFeedbackStore`;
   ``refit_from_feedback`` then retrains on base + observed pairs. The
   benchmark records the workload's median/p95 q-error before and after —
   the after numbers must be strictly better.

2. **Join-order replanning.** A three-table join whose cheapest order
   hinges on a join cardinality the traditional estimator gets badly
   wrong (disjoint key domains it assumes are contained). The cold plan
   joins the wrong pair first; feedback observes the empty join, the
   drifted feedback version invalidates the cached plan, and the re-plan
   flips the join order. The benchmark records both plans, both measured
   ``work`` values, and the win ratio.

Run standalone to (re)generate ``BENCH_P5.json``::

    PYTHONPATH=src python benchmarks/bench_p5_feedback.py

``REPRO_BENCH_FAST=1`` shrinks tables and training epochs.
"""

import json
import os
import statistics

from repro.engine import datagen
from repro.engine import plans as P
from repro.engine.catalog import Catalog
from repro.engine.database import Database
from repro.engine.executor import count_join_rows
from repro.engine.optimizer.feedback import QueryFeedbackStore
from repro.engine.query import ConjunctiveQuery, JoinEdge, Predicate
from repro.engine.telemetry import q_error

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"


# ----------------------------------------------------------------------
# Experiment 1: learned-estimator q-error before/after feedback
# ----------------------------------------------------------------------
def measure_learned_feedback(fast, seed=0):
    """Median/p95 q-error of the learned estimator, cold vs refit."""
    from repro.ai4db.optimization.cardinality import (
        LearnedCardinalityEstimator,
        QueryFeaturizer,
        generate_training_queries,
    )

    n_rows = 2_000 if fast else 8_000
    catalog = Catalog()
    datagen.make_correlated_table(
        catalog, "facts", n_rows=n_rows, n_values=40, correlation=0.9,
        seed=seed,
    )
    featurizer = QueryFeaturizer(catalog, ["facts"], [])
    base_q, base_c = generate_training_queries(
        catalog, "facts", ["a", "b"],
        n_queries=100 if fast else 300, n_values=40, seed=seed + 1,
        max_predicates=1,
    )
    est = LearnedCardinalityEstimator(
        featurizer, hidden=(32,), epochs=60 if fast else 120, seed=seed
    ).fit(base_q, base_c)

    # The skewed workload: correlated conjunctions the marginal-only
    # training set never exhibited.
    workload = [
        ConjunctiveQuery(
            tables=["facts"],
            predicates=[Predicate("facts", "a", op, k),
                        Predicate("facts", "b", op, k)],
        )
        for op in ("<", "<=")
        for k in (5, 8, 10, 12, 15, 20, 25, 30)
    ]
    truths = [count_join_rows(catalog, q, ["facts"]) for q in workload]

    def q_errors():
        return [
            q_error(est.estimate_table(q, "facts"), t)
            for q, t in zip(workload, truths)
        ]

    cold = q_errors()
    store = QueryFeedbackStore()
    for q, t in zip(workload, truths):
        store.observe(q, ["facts"], est.estimate_table(q, "facts"), t)
    used = est.refit_from_feedback(store)
    warm = q_errors()
    return {
        "workload_queries": len(workload),
        "feedback_pairs_used": used,
        "median_q_error_before": statistics.median(cold),
        "median_q_error_after": statistics.median(warm),
        "p95_q_error_before": sorted(cold)[int(0.95 * (len(cold) - 1))],
        "p95_q_error_after": sorted(warm)[int(0.95 * (len(warm) - 1))],
    }


# ----------------------------------------------------------------------
# Experiment 2: stale estimate → drift → replanned join order
# ----------------------------------------------------------------------
def _scan_order(plan):
    return [n.table for n in plan.walk()
            if isinstance(n, (P.SeqScan, P.IndexScan))]


def build_replan_db(fast):
    """Fact table whose f⋈b join is empty but estimated 4x bigger than
    the (real) f⋈a join — the stale-estimate trap."""
    n_f = 4_000 if fast else 40_000
    db = Database(feedback_enabled=True)
    db.execute("CREATE TABLE f (id INT, fk_a INT, fk_b INT)")
    db.catalog.table("f").insert_rows(
        [(i, i % 100, i % 10) for i in range(n_f)]
    )
    db.execute("CREATE TABLE a (id INT)")
    db.catalog.table("a").insert_rows([(i,) for i in range(100)])
    db.execute("CREATE TABLE b (id INT)")
    db.catalog.table("b").insert_rows(
        [(1000 + (j % 50),) for j in range(200)]
    )
    db.execute("ANALYZE")
    return db


def measure_replan(fast):
    """Cold vs feedback-replanned work on the three-way join."""
    db = build_replan_db(fast)
    q3 = ConjunctiveQuery(
        tables=["f", "a", "b"],
        join_edges=[JoinEdge("f", "fk_a", "a", "id"),
                    JoinEdge("f", "fk_b", "b", "id")],
    )
    qfb = ConjunctiveQuery(
        tables=["f", "b"],
        join_edges=[JoinEdge("f", "fk_b", "b", "id")],
    )
    cold_plan = db.planner.plan(q3)
    cold = db.run_query_object(q3)
    # The pair query exposes the empty f⋈b; its huge q-error bumps the
    # feedback version, invalidating q3's cached plan.
    db.run_query_object(qfb)
    warm_plan = db.planner.plan(q3)
    warm = db.run_query_object(q3)
    assert warm.rows == cold.rows
    return {
        "cold_join_order": _scan_order(cold_plan),
        "replanned_join_order": _scan_order(warm_plan),
        "join_order_changed": _scan_order(cold_plan) != _scan_order(warm_plan),
        "replanned_cache_hit": bool(warm.pipeline_telemetry.cache_hit),
        "feedback": db.feedback.stats(),
        "cold_work": cold.work,
        "replanned_work": warm.work,
        "work_ratio": cold.work / max(warm.work, 1e-12),
    }


def measure(fast):
    return {
        "fast": fast,
        "learned_feedback": measure_learned_feedback(fast),
        "join_order_replan": measure_replan(fast),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_p5_learned_q_error_improves():
    """Feedback refit must drop the skewed workload's median q-error."""
    result = measure_learned_feedback(fast=True)
    assert result["feedback_pairs_used"] == result["workload_queries"]
    assert (result["median_q_error_after"]
            < result["median_q_error_before"])


def test_p5_drift_replans_to_cheaper_order():
    """The stale join estimate must replan to a cheaper join order."""
    result = measure_replan(fast=True)
    assert result["join_order_changed"] is True
    assert result["replanned_cache_hit"] is False
    assert result["replanned_work"] < result["cold_work"]
    assert result["feedback"]["drifts"] >= 1


def test_p5_feedback_benchmark(benchmark):
    """Times one full feedback round trip (execute → ingest → replan)."""
    result = benchmark.pedantic(
        measure_replan, args=(True,), rounds=1, iterations=1
    )
    assert result["work_ratio"] > 1.0


if __name__ == "__main__":
    payload = {"bench": "P5 cardinality feedback", "results": []}
    for fast in (True, False):
        result = measure(fast)
        payload["results"].append(result)
        lf, jr = result["learned_feedback"], result["join_order_replan"]
        print("%s: learned median q-error %.2f -> %.2f (p95 %.1f -> %.1f)"
              % ("fast" if fast else "full",
                 lf["median_q_error_before"], lf["median_q_error_after"],
                 lf["p95_q_error_before"], lf["p95_q_error_after"]))
        print("  replan: %s -> %s, work %.0f -> %.0f (%.1fx win)"
              % (jr["cold_join_order"], jr["replanned_join_order"],
                 jr["cold_work"], jr["replanned_work"], jr["work_ratio"]))
    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_P5.json")
    with open(os.path.abspath(out_path), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_P5.json")
