"""Regenerates E10: KV design-continuum search vs. fixed designs.

See DESIGN.md section 5 (experiment E10) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e10_learned_kv(benchmark):
    """Regenerates E10: KV design-continuum search vs. fixed designs."""
    tables = run_experiment_benchmark(benchmark, "E10")
    assert tables
