"""Regenerates E1: learned knob tuning vs. baselines (CDBTune/QTune/BO/grid/random).

See DESIGN.md section 5 (experiment E1) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e01_knob_tuning(benchmark):
    """Regenerates E1: learned knob tuning vs. baselines (CDBTune/QTune/BO/grid/random)."""
    tables = run_experiment_benchmark(benchmark, "E1")
    assert tables
