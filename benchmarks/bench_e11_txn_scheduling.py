"""Regenerates E11: learned transaction scheduling vs. FIFO/cost-ordered.

See DESIGN.md section 5 (experiment E11) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e11_txn_scheduling(benchmark):
    """Regenerates E11: learned transaction scheduling vs. FIFO/cost-ordered."""
    tables = run_experiment_benchmark(benchmark, "E11")
    assert tables
