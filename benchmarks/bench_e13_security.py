"""Regenerates E13: injection detection, sensitive discovery, access control.

See DESIGN.md section 5 (experiment E13) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e13_security(benchmark):
    """Regenerates E13: injection detection, sensitive discovery, access control."""
    tables = run_experiment_benchmark(benchmark, "E13")
    assert tables
