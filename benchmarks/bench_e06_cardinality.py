"""Regenerates E6: learned cardinality estimation q-errors + correlation ablation.

See DESIGN.md section 5 (experiment E6) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e06_cardinality(benchmark):
    """Regenerates E6: learned cardinality estimation q-errors + correlation ablation."""
    tables = run_experiment_benchmark(benchmark, "E6")
    assert tables
