"""Regenerates E3: materialized-view advisors under a space budget.

See DESIGN.md section 5 (experiment E3) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e03_view_advisor(benchmark):
    """Regenerates E3: materialized-view advisors under a space budget."""
    tables = run_experiment_benchmark(benchmark, "E3")
    assert tables
