"""Regenerates E7: join-order methods, cost vs. optimization time.

See DESIGN.md section 5 (experiment E7) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e07_join_order(benchmark):
    """Regenerates E7: join-order methods, cost vs. optimization time."""
    tables = run_experiment_benchmark(benchmark, "E7")
    assert tables
