"""Regenerates E9: learned indexes vs. B+Tree, plus the RMI ablation.

See DESIGN.md section 5 (experiment E9) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e09_learned_index(benchmark):
    """Regenerates E9: learned indexes vs. B+Tree, plus the RMI ablation."""
    tables = run_experiment_benchmark(benchmark, "E9")
    assert tables
