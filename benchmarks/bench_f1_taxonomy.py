"""Regenerates the Figure-1 taxonomy coverage table.

See DESIGN.md section 5 (experiment F1) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_f1_taxonomy(benchmark):
    """Regenerates the Figure-1 taxonomy coverage table."""
    tables = run_experiment_benchmark(benchmark, "F1")
    assert tables
