"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one experiment from DESIGN.md §5: the
benchmark measures the end-to-end experiment wall time (1 round — these
are experiment regenerations, not micro-benchmarks), and the experiment's
result tables are printed so ``pytest benchmarks/ --benchmark-only`` output
doubles as the EXPERIMENTS.md source of truth.

Set ``REPRO_BENCH_FAST=1`` to run the shrunken CI-sized variants.
Set ``REPRO_EXECUTOR_MODE=row`` to regenerate experiments on the row
interpreter instead of the vectorized executor; ``bench_p1_executor.py``
times both modes explicitly via the ``executor_mode`` fixture. Full-size
runs are marked ``slow`` (deselect with ``-m 'not slow'``).
"""

import os

import pytest

from repro.harness import run_experiment

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"


@pytest.fixture(params=["row", "vectorized", "parallel"])
def executor_mode(request):
    """Parametrizes a benchmark over every executor mode."""
    return request.param


@pytest.fixture(scope="session")
def harness_smoke():
    """Runs ``python -m repro.harness E8 --fast`` once per session.

    A cheap end-to-end smoke of the staged pipeline (parse → … → execute,
    plan cache included) through the real harness CLI path; returns the
    exit code so benchmark tests can assert on it.
    """
    from repro.harness.__main__ import main as harness_main

    return harness_main(["E8", "--fast"])


def run_experiment_benchmark(benchmark, exp_id, fast=None):
    """Benchmark one experiment regeneration and print its tables."""
    effective_fast = FAST if fast is None else fast
    tables = benchmark.pedantic(
        run_experiment,
        args=(exp_id,),
        kwargs={"seed": 0, "fast": effective_fast, "show": False},
        rounds=1,
        iterations=1,
    )
    print()
    for table in tables:
        table.show()
    return tables
