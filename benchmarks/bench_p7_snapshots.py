"""P7 benchmark: per-table plan-cache scoping vs. the global epoch.

A writer hammers one hot table (INSERT + ANALYZE every round) while a
read workload keeps re-running warmed 3-way join queries over the *cold*
tables. Under
the legacy ``cache_scope="global"`` token every write anywhere drifts
every cached plan, so each cold query replans every round (hit rate ~0);
under the default per-table version vector the cold queries' tokens
never move, so they stay warm (~100% hits) and skip join enumeration
entirely. The benchmark records both hit rates and the p50/p95 per-query
latency, plus the cost of pinning a ``db.snapshot()`` across the whole
catalog (the MVCC read path PR 7 adds).

Run standalone to (re)generate ``BENCH_P7.json``::

    PYTHONPATH=src python benchmarks/bench_p7_snapshots.py

``REPRO_BENCH_FAST=1`` shrinks the workload. The acceptance gates run at
full size and are marked slow (PR 3 convention).
"""

import json
import os
import time

import pytest

from repro.engine.database import Database

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: Rows appended to the hot table per writer round.
WRITE_BATCH = 50


def _sizes(fast):
    """(n_cold_tables, rows_per_table, rounds)."""
    return (6, 2_000, 30) if fast else (12, 5_000, 100)


def _build(scope, fast, seed=0):
    """One database: ``hot`` plus N cold tables, all analyzed."""
    n_tables, n_rows, __ = _sizes(fast)
    db = Database(cache_scope=scope)
    names = ["hot"] + ["cold%02d" % i for i in range(n_tables)]
    for name in names:
        db.execute("CREATE TABLE %s (id INT, k INT, v FLOAT)" % name)
        db.catalog.table(name).insert_rows([
            (i, (i * 7 + seed) % 13, float(i % 97)) for i in range(n_rows)
        ])
    db.execute("ANALYZE")
    return db, names[1:]


def _cold_queries(cold_tables):
    """One 3-table join per consecutive triple of cold tables.

    Joins make the replan cost real: a cache miss pays join enumeration
    and per-subset estimation, which is what the per-table scope saves
    the cold readers from (a warmed 3-way join replans ~3.5x slower than
    it hits).
    """
    out = []
    for i in range(len(cold_tables) - 2):
        a, b, c = cold_tables[i], cold_tables[i + 1], cold_tables[i + 2]
        out.append(
            "SELECT COUNT(*) FROM %s, %s, %s "
            "WHERE %s.id = %s.id AND %s.id = %s.id AND %s.id < 200"
            % (a, b, c, a, b, b, c, a)
        )
    return out


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def run_scope(scope, fast, seed=0):
    """The hot-writer/cold-reader race under one cache scope.

    Returns the plan-cache counters over the raced phase plus per-query
    latency percentiles (seconds) for the cold-table reads.
    """
    db, cold_tables = _build(scope, fast, seed=seed)
    __, __, rounds = _sizes(fast)
    queries = _cold_queries(cold_tables)
    baseline = [db.execute(sql).rows for sql in queries]  # warm every plan
    db.pipeline.plan_cache.reset_counters()
    latencies = []
    for r in range(rounds):
        db.catalog.table("hot").insert_rows([
            (r * WRITE_BATCH + i, i % 13, float(i)) for i in range(WRITE_BATCH)
        ])
        db.execute("ANALYZE hot")
        for sql, expected in zip(queries, baseline):
            t0 = time.perf_counter()
            rows = db.execute(sql).rows
            latencies.append(time.perf_counter() - t0)
            assert rows == expected  # cold tables never change
    stats = db.pipeline.plan_cache.stats()
    lookups = stats["hits"] + stats["misses"]
    latencies.sort()
    return {
        "cache_scope": scope,
        "rounds": rounds,
        "cold_tables": len(cold_tables),
        "hits": stats["hits"],
        "misses": stats["misses"],
        "invalidations": stats["invalidations"],
        "hit_rate": stats["hits"] / max(1, lookups),
        "p50_seconds": _percentile(latencies, 0.50),
        "p95_seconds": _percentile(latencies, 0.95),
        "total_seconds": sum(latencies),
    }


def snapshot_costs(fast, repeats=5, seed=0):
    """Cost of pinning one whole-catalog snapshot, and of reading it."""
    db, cold_tables = _build("table", fast, seed=seed)
    best_pin = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        snap = db.snapshot()
        best_pin = min(best_pin, time.perf_counter() - t0)
    sql = _cold_queries(cold_tables)[0]
    live = db.execute(sql).rows
    t0 = time.perf_counter()
    pinned = snap.query(sql)
    read_seconds = time.perf_counter() - t0
    assert pinned == live
    return {
        "tables": len(cold_tables) + 1,
        "pin_seconds": best_pin,
        "pinned_read_seconds": read_seconds,
    }


def measure(fast, seed=0):
    """Global-epoch vs per-table scoping under one hot writer."""
    out = {
        "workload": "1 hot writer + %d cold readers, %d rounds, "
        "%d rows/table" % (_sizes(fast)[0], _sizes(fast)[2], _sizes(fast)[1]),
        "fast": fast,
        "configs": {},
    }
    for scope in ("global", "table"):
        out["configs"][scope] = run_scope(scope, fast, seed=seed)
    g, t = out["configs"]["global"], out["configs"]["table"]
    out["hit_rate_global"] = g["hit_rate"]
    out["hit_rate_table"] = t["hit_rate"]
    out["p95_speedup"] = g["p95_seconds"] / max(t["p95_seconds"], 1e-12)
    out["total_speedup"] = g["total_seconds"] / max(t["total_seconds"], 1e-12)
    out["snapshot"] = snapshot_costs(fast, seed=seed)
    return out


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_p7_per_table_scope_keeps_cold_plans_warm():
    """The headline contrast, at fast size: a writer on ``hot`` leaves
    every cold-table plan at 100% hits under per-table scoping and at 0%
    under the legacy global epoch."""
    table = run_scope("table", fast=True)
    assert table["hit_rate"] == 1.0, table
    assert table["invalidations"] == 0, table
    glob = run_scope("global", fast=True)
    assert glob["hit_rate"] == 0.0, glob
    assert glob["invalidations"] == glob["misses"], glob


def test_p7_snapshot_pin_is_cheap_and_correct():
    costs = snapshot_costs(fast=True)
    assert costs["pin_seconds"] < 1.0, costs


def test_p7_snapshots_benchmark(benchmark):
    """Times the full FAST-aware measurement (both scopes + snapshot)."""
    payload = benchmark.pedantic(
        measure, args=(FAST,), rounds=1, iterations=1,
    )
    assert payload["hit_rate_table"] > payload["hit_rate_global"]


@pytest.mark.slow
def test_p7_gates_full_size():
    """Acceptance gates at full size: cold plans ~100% warm vs ~0%, and
    skipping the replan shows up in the tail latency."""
    payload = measure(fast=False)
    assert payload["hit_rate_table"] >= 0.99, payload
    assert payload["hit_rate_global"] <= 0.01, payload
    assert payload["p95_speedup"] >= 1.3, payload
    assert payload["total_speedup"] >= 1.3, payload


if __name__ == "__main__":
    payload = {"bench": "P7 per-table versions & snapshots", "results": []}
    for fast in (True, False):
        result = measure(fast)
        payload["results"].append(result)
        print("%s: hit rate table=%.0f%% global=%.0f%%; p95 %.2fx, "
              "total %.2fx; snapshot pin %.1fus over %d tables" % (
                  "fast" if fast else "full",
                  100.0 * result["hit_rate_table"],
                  100.0 * result["hit_rate_global"],
                  result["p95_speedup"],
                  result["total_speedup"],
                  1e6 * result["snapshot"]["pin_seconds"],
                  result["snapshot"]["tables"],
              ))
    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_P7.json")
    with open(os.path.abspath(out_path), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_P7.json")
