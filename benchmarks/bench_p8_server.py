"""P8 benchmark: the multi-tenant query server under concurrent load.

Three scenarios over :class:`repro.engine.QueryServer`:

* **Snapshot isolation at scale** — 8+ ``isolation="session"`` sessions
  pin their snapshots, then race a writer that commits into the very
  tables they read. Every session's every result must be bit-identical
  to a serial replay on a frozen twin database (the acceptance gate the
  PR is judged on: MVCC reads cost no correctness under concurrency).
* **Fair-share interference** — tenant B's p95 latency is measured
  alone, then again while over-quota tenant A hammers admission with
  expensive queries it can no longer pay for. Fair-share + per-tenant
  buckets must keep B's p95 within 10% of its alone run (slow gate).
* **Closed-loop traffic** — :func:`repro.engine.server.run_traffic`
  drives Zipf-skewed tenants through a read/write mix and reports
  throughput, per-tenant percentiles, admission decisions, and commits.

Run standalone to (re)generate ``BENCH_P8.json``::

    PYTHONPATH=src python benchmarks/bench_p8_server.py

``REPRO_BENCH_FAST=1`` shrinks the workload. The acceptance gates run at
full size and are marked slow (PR 3 convention).
"""

import json
import os
import threading
import time

import pytest

from repro.engine import Database, QueryServer
from repro.engine.server import AdmissionError, run_traffic
from repro.engine.telemetry import percentile

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: Sessions racing the writer in the isolation scenario (the acceptance
#: number: at least 8 concurrent snapshot readers).
N_SESSIONS = 8

TABLES = ("r0", "r1", "r2")


def _sizes(fast):
    """(rows_per_table, reads_per_session, b_queries, traffic_requests)."""
    return (1_500, 5, 400, 15) if fast else (4_000, 10, 1_500, 30)


def _build(fast, seed=0):
    db = Database()
    rows_per_table, __, __, __ = _sizes(fast)
    for name in TABLES:
        db.execute("CREATE TABLE %s (id INT, k INT, v FLOAT)" % name)
        db.catalog.table(name).insert_rows([
            (i, (i * 7 + seed) % 13, float(i % 97))
            for i in range(rows_per_table)
        ])
    db.execute("ANALYZE")
    return db


#: Reader queries with plan-independent output (aggregates, ORDER BY,
#: single-table float folds) so bit-identical comparison is meaningful
#: even if live statistics drift under the racing writer.
READ_QUERIES = [
    "SELECT COUNT(*) FROM r0",
    "SELECT COUNT(*) FROM r1 WHERE k = 3",
    "SELECT k, COUNT(*) FROM r2 GROUP BY k ORDER BY k",
    "SELECT k, SUM(v) FROM r0 GROUP BY k ORDER BY k",
    "SELECT COUNT(*) FROM r1, r2 WHERE r1.id = r2.id AND r1.k < 5",
]


# ----------------------------------------------------------------------
# Scenario 1: snapshot isolation, N pinned sessions vs a frozen twin
# ----------------------------------------------------------------------
def run_isolation(fast, seed=0):
    """Race pinned sessions against a writer; compare to a frozen twin.

    Returns the session count, whether every read was bit-identical to
    the serial oracle, and how many commits raced the readers.
    """
    __, reads_per_session, __, __ = _sizes(fast)
    db = _build(fast, seed=seed)
    twin = _build(fast, seed=seed)
    server = QueryServer(db, tenant_quota=1e12, quota_refill_rate=0.0)

    # Serial oracle on the never-written twin.
    oracle = [twin.execute(sql).rows for sql in READ_QUERIES]

    # Pin every session before the writer starts: their snapshots all
    # equal the twin's state, whatever the writer does afterwards.
    sessions = [
        server.session(tenant="s%d" % i, isolation="session")
        for i in range(N_SESSIONS)
    ]
    stop = threading.Event()
    barrier = threading.Barrier(N_SESSIONS + 1)
    errors = []
    mismatches = []

    def writer():
        try:
            with server.session(tenant="writer") as sess:
                barrier.wait()
                batch = 0
                while not stop.is_set():
                    table = TABLES[batch % len(TABLES)]
                    sess.insert_rows(table, [
                        (100_000 + batch * 10 + r, r % 13, float(r))
                        for r in range(10)
                    ])
                    batch += 1
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    def reader(idx):
        try:
            sess = sessions[idx]
            barrier.wait()
            for __round in range(reads_per_session):
                for sql, expected in zip(READ_QUERIES, oracle):
                    rows = sess.query(sql)
                    if rows != expected:
                        mismatches.append((idx, sql, rows[:3], expected[:3]))
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(i,))
               for i in range(N_SESSIONS)]
    wt = threading.Thread(target=writer)
    wt.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    wt.join()
    if errors:
        raise errors[0]
    commits = server.commit_history()[-1][0]
    return {
        "n_sessions": N_SESSIONS,
        "reads_per_session": reads_per_session * len(READ_QUERIES),
        "commits_raced": commits,
        "snapshot_reads_identical": not mismatches,
        "mismatches": mismatches[:5],
    }


# ----------------------------------------------------------------------
# Scenario 2: fair-share interference (tenant B alone vs contended)
# ----------------------------------------------------------------------
def run_interference(fast, seed=0):
    """Tenant B's p95, alone vs under tenant A's over-quota flood.

    B reads a small dedicated table, so the (uniform per-tenant) quota
    that comfortably covers B's whole run buys A only a handful of its
    expensive joins; after those, every A statement sheds on the
    admission timeout, so A hammers the admission path for B's whole
    contended phase without being able to execute. Fair-share per-tenant
    buckets are what keeps that hammering away from B's latency.

    B is measured alone, then contended, then alone again; the two alone
    phases are pooled so drift (allocator/GC state after A's burst)
    cancels instead of masquerading as interference.
    """
    import gc

    __, __, b_queries, __ = _sizes(fast)
    db = _build(fast, seed=seed)
    db.execute("CREATE TABLE bsmall (id INT, k INT, v FLOAT)")
    db.catalog.table("bsmall").insert_rows(
        [(i, i % 7, float(i)) for i in range(300)]
    )
    db.execute("ANALYZE bsmall")
    b_sql = "SELECT COUNT(*) FROM bsmall WHERE k = 3"
    a_sql = ("SELECT r0.k, COUNT(*), SUM(r0.v) FROM r0, r1 "
             "WHERE r0.id = r1.id GROUP BY r0.k")
    # Size the quota from the plans' own estimates: B's entire run fits
    # with headroom, while A goes broke after a few joins.
    b_cost = db.pipeline.prepare_sql(b_sql).est_cost
    a_cost = db.pipeline.prepare_sql(a_sql).est_cost
    quota = max(1.5 * (3 * b_queries + 10) * b_cost, 4.0 * a_cost)
    # A 50ms admission timeout bounds how often A's shed loop wakes (B
    # never waits — fair-share admits it on the fast path), keeping the
    # flood's cost an admission-path cost, not a GIL-preemption storm.
    server = QueryServer(
        db, admission_policy="fair-share",
        tenant_quota=quota, quota_refill_rate=0.0,
        admission_timeout=0.05,
    )
    b_sess = server.session(tenant="B")
    for __warm in range(5):
        b_sess.query(b_sql)

    def measure_b():
        gc.collect()
        lat = []
        for __i in range(b_queries):
            t0 = time.perf_counter()
            b_sess.query(b_sql)
            lat.append(time.perf_counter() - t0)
        return lat

    alone = measure_b()

    # Flood: run A until its bucket is broke, then keep hammering.
    a_broke = threading.Event()
    stop = threading.Event()

    def flood():
        with server.session(tenant="A") as a_sess:
            while not stop.is_set():
                try:
                    a_sess.query(a_sql)
                except AdmissionError:
                    a_broke.set()

    ft = threading.Thread(target=flood, daemon=True)
    ft.start()
    a_broke.wait(timeout=60.0)
    contended = measure_b()
    stop.set()
    ft.join(timeout=10.0)
    alone += measure_b()

    stats = server.admission.stats()
    p95_alone = percentile(alone, 0.95)
    p95_contended = percentile(contended, 0.95)
    return {
        "policy": "fair-share",
        "b_queries": b_queries,
        "p50_alone_seconds": percentile(alone, 0.50),
        "p50_contended_seconds": percentile(contended, 0.50),
        "p95_alone_seconds": p95_alone,
        "p95_contended_seconds": p95_contended,
        "p95_interference_ratio": p95_contended / max(p95_alone, 1e-12),
        "a_shed": stats["A"]["shed"],
        "a_admitted": stats["A"]["admitted"],
        "b_shed": stats["B"]["shed"],
        "b_queued": stats["B"]["queued"],
    }


# ----------------------------------------------------------------------
# Scenario 3: closed-loop Zipf traffic through the driver
# ----------------------------------------------------------------------
def run_traffic_scenario(fast, seed=0):
    __, __, __, requests = _sizes(fast)
    db = _build(fast, seed=seed)
    server = QueryServer(
        db, admission_policy="fair-share",
        tenant_quota=1e9, quota_refill_rate=1e6,
    )
    report = run_traffic(
        server,
        read_pool=READ_QUERIES,
        write_pool=[
            "INSERT INTO r0 VALUES (900000, 1, 1.0)",
            "INSERT INTO r1 VALUES (900000, 2, 2.0)",
        ],
        n_clients=12, requests_per_client=requests, n_tenants=4,
        zipf_s=1.2, read_fraction=0.9, seed=seed,
    )
    return report.summary()


def measure(fast, seed=0):
    return {
        "fast": fast,
        "isolation": run_isolation(fast, seed=seed),
        "interference": run_interference(fast, seed=seed),
        "traffic": run_traffic_scenario(fast, seed=seed),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_p8_snapshot_isolation_bitwise():
    """Headline gate at fast size: 8 pinned sessions racing a writer
    read bit-identically to the frozen serial oracle."""
    result = run_isolation(fast=True)
    assert result["n_sessions"] >= 8, result
    assert result["snapshot_reads_identical"], result
    assert result["commits_raced"] > 0, result


def test_p8_traffic_driver_reports():
    summary = run_traffic_scenario(fast=True)
    assert summary["completed"] > 0, summary
    assert summary["commits"] > 0, summary
    assert summary["tenants"], summary
    for tenant_stats in summary["tenants"].values():
        assert tenant_stats["p95_seconds"] >= tenant_stats["p50_seconds"]


def test_p8_server_benchmark(benchmark):
    """Times the full FAST-aware measurement (all three scenarios)."""
    payload = benchmark.pedantic(
        measure, args=(FAST,), rounds=1, iterations=1,
    )
    assert payload["isolation"]["snapshot_reads_identical"]


@pytest.mark.slow
def test_p8_gates_full_size():
    """Acceptance gates at full size: >=8 concurrent sessions stay
    bit-identical to the serial oracle, and an over-quota tenant cannot
    inflate another tenant's p95 by more than 10%."""
    payload = measure(fast=False)
    isolation = payload["isolation"]
    assert isolation["n_sessions"] >= 8, isolation
    assert isolation["snapshot_reads_identical"], isolation
    assert isolation["commits_raced"] > 0, isolation
    interference = payload["interference"]
    assert interference["a_shed"] > 0, interference
    assert interference["b_shed"] == 0, interference
    assert interference["p95_interference_ratio"] <= 1.10, interference


if __name__ == "__main__":
    payload = {"bench": "P8 multi-tenant serving & admission", "results": []}
    for fast in (True, False):
        result = measure(fast)
        payload["results"].append(result)
        iso, inter = result["isolation"], result["interference"]
        print("%s: %d sessions x %d reads vs %d racing commits, "
              "identical=%s; p95 interference %.3fx (A shed %d); "
              "traffic %.0f qps, %d shed" % (
                  "fast" if fast else "full",
                  iso["n_sessions"], iso["reads_per_session"],
                  iso["commits_raced"], iso["snapshot_reads_identical"],
                  inter["p95_interference_ratio"], inter["a_shed"],
                  result["traffic"]["throughput_qps"],
                  result["traffic"]["shed"],
              ))
    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_P8.json")
    with open(os.path.abspath(out_path), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_P8.json")
