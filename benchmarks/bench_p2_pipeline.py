"""P2 benchmark: cold vs. warm planning through the staged query pipeline.

Rebuilds the E8 clique schema + workload and runs it twice through
``Database.run_query_object``: a cold pass (plan cache empty — every query
pays parse/lower/rewrite/plan) and warm passes (every query is a plan-cache
hit — planning collapses to a signature lookup). Execution work must be
bit-identical between passes; the planning-seconds ratio is the cache's
payoff.

Run standalone to (re)generate ``BENCH_P2.json``::

    PYTHONPATH=src python benchmarks/bench_p2_pipeline.py

``REPRO_BENCH_FAST=1`` shrinks to E8's fast sizes; the committed JSON and
the ≥5× acceptance gate use the full sizes.
"""

import json
import os
import time

import pytest

from repro.engine import datagen
from repro.engine.database import Database

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"


def build_workload(fast, seed=0):
    """The E8 schema/workload (queries, not plans); returns ``(db, queries)``."""
    db = Database()
    names, edges = datagen.make_join_graph_schema(
        db.catalog, "clique", n_tables=5,
        rows_per_table=400 if fast else 600, seed=seed + 3, prefix="n",
        correlated=True,
    )
    workload = datagen.join_graph_workload(
        names, edges, n_queries=12 if fast else 18, seed=seed + 4,
        min_tables=4,
    )
    return db, workload


def run_pass(db, queries):
    """One full-workload pass; returns ``(stats, total_work, wall_seconds)``."""
    db.pipeline.reset_stats()
    t0 = time.perf_counter()
    total_work = sum(db.run_query_object(q).work for q in queries)
    wall = time.perf_counter() - t0
    return db.pipeline.stats(), total_work, wall


def measure(fast, warm_rounds=3, seed=0):
    """Cold pass, then best-of-``warm_rounds`` warm passes."""
    db, queries = build_workload(fast, seed=seed)
    db.pipeline.invalidate()
    cold_stats, cold_work, cold_wall = run_pass(db, queries)
    assert cold_stats["plan_cache"]["hits"] == 0

    warm = None
    for __ in range(warm_rounds):
        stats, work, wall = run_pass(db, queries)
        if warm is None or stats["planning_seconds"] < warm[0]["planning_seconds"]:
            warm = (stats, work, wall)
    warm_stats, warm_work, warm_wall = warm

    assert warm_work == cold_work, "cached plans changed the executed work"
    hits = warm_stats["plan_cache"]["hits"]
    hit_rate = hits / max(1, hits + warm_stats["plan_cache"]["misses"])
    return {
        "workload": "E8 clique (rows_per_table=%d, queries=%d)"
        % (400 if fast else 600, 12 if fast else 18),
        "fast": fast,
        "cold": {
            "planning_seconds": cold_stats["planning_seconds"],
            "execution_seconds": cold_stats["execution_seconds"],
            "wall_seconds": cold_wall,
            "cache_hits": cold_stats["plan_cache"]["hits"],
            "cache_misses": cold_stats["plan_cache"]["misses"],
        },
        "warm": {
            "planning_seconds": warm_stats["planning_seconds"],
            "execution_seconds": warm_stats["execution_seconds"],
            "wall_seconds": warm_wall,
            "cache_hits": hits,
            "cache_misses": warm_stats["plan_cache"]["misses"],
            "hit_rate": hit_rate,
        },
        "total_work": cold_work,
        "planning_speedup": cold_stats["planning_seconds"]
        / max(warm_stats["planning_seconds"], 1e-12),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_p2_cache_hits_on_warm_run():
    """Warm pass is all hits, same total work (FAST sizes)."""
    payload = measure(fast=True, warm_rounds=1)
    assert payload["warm"]["hit_rate"] == 1.0
    assert payload["warm"]["cache_misses"] == 0


def test_p2_pipeline_benchmark(benchmark):
    """Times cold+warm workload passes at (FAST-aware) E8 sizes."""
    payload = benchmark.pedantic(
        measure, args=(FAST,), kwargs={"warm_rounds": 1},
        rounds=1, iterations=1,
    )
    assert payload["total_work"] > 0


def test_p2_harness_smoke(harness_smoke):
    """E8 runs end-to-end through the pipeline (fast harness invocation)."""
    assert harness_smoke == 0


@pytest.mark.slow
def test_p2_warm_planning_speedup_full_size():
    """Acceptance gate: ≥5× warm-vs-cold planning speedup at full sizes."""
    payload = measure(fast=False, warm_rounds=2)
    assert payload["planning_speedup"] >= 5.0, payload


if __name__ == "__main__":
    payload = {"bench": "P2 pipeline plan cache", "results": []}
    for fast in (True, False):
        result = measure(fast)
        payload["results"].append(result)
        print(
            "%s: planning cold %.4fs warm %.4fs -> %.1fx (hit rate %.0f%%)"
            % (
                "fast" if fast else "full",
                result["cold"]["planning_seconds"],
                result["warm"]["planning_seconds"],
                result["planning_speedup"],
                100 * result["warm"]["hit_rate"],
            )
        )
    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_P2.json")
    with open(os.path.abspath(out_path), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_P2.json")
