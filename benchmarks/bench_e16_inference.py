"""Regenerates E16: operators, hybrid pushdown, cascade ablation.

See DESIGN.md section 5 (experiment E16) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e16_inference(benchmark):
    """Regenerates E16: operators, hybrid pushdown, cascade ablation."""
    tables = run_experiment_benchmark(benchmark, "E16")
    assert tables
