"""Regenerates E17: the paper's §2.3 challenges made concrete — model
validation gate, convergence guard, drift detection, fault-tolerant training.

See DESIGN.md section 5 (experiment E17) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e17_challenges(benchmark):
    """Regenerates E17: validation, convergence, drift, fault tolerance."""
    tables = run_experiment_benchmark(benchmark, "E17")
    assert tables
