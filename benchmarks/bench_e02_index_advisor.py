"""Regenerates E2: index advisors (greedy what-if vs. RL vs. classifier).

See DESIGN.md section 5 (experiment E2) for the expected shape.
"""

from conftest import run_experiment_benchmark


def test_e02_index_advisor(benchmark):
    """Regenerates E2: index advisors (greedy what-if vs. RL vs. classifier)."""
    tables = run_experiment_benchmark(benchmark, "E2")
    assert tables
