"""P6 benchmark: segmented encoded storage vs. the seed's flat layout.

Builds a clustered, low-cardinality fact table twice — once emulating the
seed layout (a single plain-encoded segment, zone-map pruning off: flat
NumPy arrays) and once with encoded 4K-row segments (dictionary/RLE where
profitable, zone maps on) — plans an analytical workload once per
database, and times pure plan execution. The observational contract
holds throughout: both layouts report identical rows and bit-identical
``work``, so the wall-clock ratio isolates what the storage layer saves
(segments skipped via zone maps, predicates evaluated on dictionary
codes, columns decoded late). ``tracemalloc`` peaks quantify the saved
materialization; a separate ingest pass compares the tail-segment append
path against the seed's per-batch ``np.concatenate``.

Run standalone to (re)generate ``BENCH_P6.json``::

    PYTHONPATH=src python benchmarks/bench_p6_storage.py

``REPRO_BENCH_FAST=1`` shrinks the table. The ≥2x acceptance gates run
at full size and are marked slow (PR 3 convention).
"""

import json
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.query import Aggregate, ConjunctiveQuery, Predicate
from repro.engine.storage import Table
from repro.engine.types import ColumnSchema, DataType, TableSchema

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: Encoded-layout segment size; small enough that the fast workload still
#: seals several segments, large enough to amortize per-segment overhead.
SEGMENT_ROWS = 4096

#: Days in the clustered time column (rows arrive in day order).
N_DAYS = 256


def _n_rows(fast):
    return 20_000 if fast else 200_000


def _rows(n, seed=0):
    """Clustered/low-cardinality rows.

    ``day`` and its text twin ``date`` are clustered (rows arrive in
    time order), so their zone maps are tight; ``tag``/``status`` are
    scattered low-cardinality text, the dictionary-encoding sweet spot.
    """
    rng = np.random.default_rng(seed)
    ids = np.arange(n, dtype=np.int64)
    days = ids // max(1, n // N_DAYS)
    tags = rng.integers(0, 64, size=n)
    statuses = rng.integers(0, 4, size=n)
    m0 = rng.uniform(-100.0, 100.0, size=n)
    m1 = rng.uniform(0.0, 1.0, size=n)
    return [
        (int(ids[i]), int(days[i]), "d%03d" % days[i],
         "g%02d" % tags[i], "s%d" % statuses[i],
         float(m0[i]), float(m1[i]))
        for i in range(n)
    ]


def _schema():
    return TableSchema("fact", [
        ColumnSchema("id", DataType.INT),
        ColumnSchema("day", DataType.INT),
        ColumnSchema("date", DataType.TEXT),
        ColumnSchema("tag", DataType.TEXT),
        ColumnSchema("status", DataType.TEXT),
        ColumnSchema("m0", DataType.FLOAT),
        ColumnSchema("m1", DataType.FLOAT),
    ])


def _queries(n):
    t = "fact"
    return [
        # Narrow range on the clustered key: zone maps skip nearly all
        # segments, and the surviving output is small enough that the
        # shared row-materialization cost stays out of the way.
        ConjunctiveQuery(
            tables=[t],
            predicates=[Predicate(t, "id", "<", n // 400)],
            projections=[(t, "id"), (t, "m0")],
        ),
        # Equality on the clustered day column (a couple of segments
        # survive); the flat layout pays a full-column integer mask.
        ConjunctiveQuery(
            tables=[t],
            predicates=[Predicate(t, "day", "=", 3)],
            group_by=[(t, "status")],
            aggregates=[
                Aggregate("count"),
                Aggregate("sum", t, "m0"),
                Aggregate("avg", t, "m1"),
            ],
        ),
        # Clustered TEXT equality: the flat layout compares every string
        # object; encoded segments prune on string zone maps and compare
        # dictionary codes in the survivors.
        ConjunctiveQuery(
            tables=[t],
            predicates=[Predicate(t, "date", "=", "d003")],
            aggregates=[Aggregate("count"), Aggregate("sum", t, "m1")],
        ),
        # Scattered low-cardinality equality: no pruning, but the
        # predicate evaluates on dictionary codes instead of strings —
        # and a COUNT tail decodes nothing at all.
        ConjunctiveQuery(
            tables=[t],
            predicates=[Predicate(t, "tag", "=", "g07")],
            aggregates=[Aggregate("count")],
        ),
    ]


def build_layouts(fast, seed=0):
    """``{label: (db, plans, pruning)}`` for the two storage layouts."""
    n = _n_rows(fast)
    rows = _rows(n, seed=seed)
    layouts = {}
    for label, kwargs, pruning in (
        # One plain segment spanning the whole table == the seed's flat
        # NumPy arrays (nothing to prune, nothing encoded).
        ("flat", {"segment_rows": n, "segment_encodings": ("plain",),
                  "zone_map_pruning": False}, False),
        ("encoded", {"segment_rows": SEGMENT_ROWS}, True),
    ):
        db = Database(**kwargs)
        db.catalog.register_table(Table(
            _schema(),
            segment_rows=kwargs["segment_rows"],
            segment_encodings=kwargs.get("segment_encodings"),
        ))
        db.catalog.table("fact").insert_rows(rows)
        db.catalog.analyze("fact")
        plans = [db.planner.plan(q) for q in _queries(n)]
        layouts[label] = (db, plans, pruning)
    return layouts


def execute_all(db, plans, pruning, mode="vectorized"):
    """Execute every plan; totals + accumulated segment telemetry."""
    ex = Executor(db.catalog, db.cost_model, mode=mode,
                  fusion_enabled=True, pruning_enabled=pruning)
    totals = {
        "rows": 0, "work": 0.0, "segments_total": 0, "segments_pruned": 0,
        "bytes_decoded": 0,
    }
    for plan in plans:
        result = ex.execute(plan)
        # Count via the relation, not ``result.rows`` — materializing
        # Python tuples costs the same in every layout and would mask
        # the storage-layer delta being measured.
        totals["rows"] += len(result.relation)
        totals["work"] += result.work
        tel = result.telemetry
        totals["segments_total"] += tel.segments_total
        totals["segments_pruned"] += tel.segments_pruned
        totals["bytes_decoded"] += tel.bytes_decoded
    return totals


def peak_alloc_bytes(db, plans, pruning):
    """tracemalloc peak during one full pass (intermediates included)."""
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        execute_all(db, plans, pruning)
        __, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def ingest_rates(fast, batch_rows=500, seed=1):
    """Batched-append throughput: tail segments vs. per-batch concat.

    The seed's ``insert_rows`` rebuilt every column with ``np.concatenate``
    per batch — O(n²) over a batched load. The segmented path appends to
    the mutable tail and seals full chunks, so each sealed row is copied
    exactly once.
    """
    n = _n_rows(fast)
    rows = _rows(n, seed=seed)
    batches = [rows[i:i + batch_rows] for i in range(0, n, batch_rows)]

    table = Table(_schema(), segment_rows=SEGMENT_ROWS)
    t0 = time.perf_counter()
    for chunk in batches:
        table.insert_rows(chunk)
    segmented = time.perf_counter() - t0
    assert table.n_rows == n

    schema = _schema()
    flat = {
        c.name: np.empty(0, dtype=c.dtype.numpy_dtype)
        for c in schema.columns
    }
    t0 = time.perf_counter()
    # The seed's insert_rows, verbatim: per-row coercion into a fresh
    # array, then a full-column concatenate — every batch re-copies all
    # previously inserted rows.
    for chunk in batches:
        for j, c in enumerate(schema.columns):
            incoming = np.asarray(
                [c.dtype.coerce(r[j]) for r in chunk],
                dtype=c.dtype.numpy_dtype,
            )
            flat[c.name] = np.concatenate([flat[c.name], incoming])
    concat = time.perf_counter() - t0
    assert all(len(a) == n for a in flat.values())

    return {
        "rows": n,
        "batch_rows": batch_rows,
        "segmented_seconds": segmented,
        "flat_concat_seconds": concat,
        "segmented_rows_per_s": n / max(segmented, 1e-12),
        "flat_rows_per_s": n / max(concat, 1e-12),
        "speedup": concat / max(segmented, 1e-12),
    }


def measure(fast, repeats=3, seed=0):
    """Best-of-``repeats`` scan timings + peaks + prune/ingest rates."""
    layouts = build_layouts(fast, seed=seed)
    out = {
        "workload": "clustered fact table (rows=%d, queries=%d, "
        "segment_rows=%d)" % (_n_rows(fast), len(_queries(_n_rows(fast))),
                              SEGMENT_ROWS),
        "fast": fast,
        "configs": {},
    }
    checks = {}
    for label, (db, plans, pruning) in layouts.items():
        best = float("inf")
        totals = None
        for __ in range(repeats):
            t0 = time.perf_counter()
            totals = execute_all(db, plans, pruning)
            best = min(best, time.perf_counter() - t0)
        checks[label] = (totals["rows"], totals["work"])
        seg_total = totals["segments_total"]
        out["configs"][label] = {
            "seconds": best,
            "total_rows": totals["rows"],
            "total_work": totals["work"],
            "segments_total": seg_total,
            "segments_pruned": totals["segments_pruned"],
            "prune_rate": totals["segments_pruned"] / max(1, seg_total),
            "bytes_decoded": totals["bytes_decoded"],
            "table_encoded_bytes": db.catalog.table("fact").encoded_bytes(),
            "peak_alloc_bytes": peak_alloc_bytes(db, plans, pruning),
        }
    assert checks["encoded"] == checks["flat"], (
        "encoded layout diverges from flat: %r vs %r"
        % (checks["encoded"], checks["flat"])
    )
    flat, enc = out["configs"]["flat"], out["configs"]["encoded"]
    out["scan_speedup"] = flat["seconds"] / max(enc["seconds"], 1e-12)
    out["peak_alloc_ratio"] = flat["peak_alloc_bytes"] / max(
        enc["peak_alloc_bytes"], 1
    )
    out["prune_rate"] = enc["prune_rate"]
    out["bytes_decoded_ratio"] = flat["bytes_decoded"] / max(
        enc["bytes_decoded"], 1
    )
    out["compression_ratio"] = flat["table_encoded_bytes"] / max(
        enc["table_encoded_bytes"], 1
    )
    out["ingest"] = ingest_rates(fast)
    return out


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_p6_layout_parity_and_pruning():
    """Encoded segments change neither rows nor work, and pruning fires."""
    layouts = build_layouts(fast=True)
    flat_db, flat_plans, __ = layouts["flat"]
    enc_db, enc_plans, __ = layouts["encoded"]
    baseline = execute_all(flat_db, flat_plans, pruning=False)
    assert baseline["segments_pruned"] == 0
    for mode in ("vectorized", "parallel", "row"):
        totals = execute_all(enc_db, enc_plans, pruning=True, mode=mode)
        assert totals["rows"] == baseline["rows"], mode
        assert totals["work"] == baseline["work"], mode
        if mode != "row":  # the row interpreter scans flat arrays
            assert totals["segments_pruned"] > 0, mode
            assert totals["bytes_decoded"] < baseline["bytes_decoded"], mode


def test_p6_storage_benchmark(benchmark):
    """Times the encoded-layout pass on the FAST-aware workload."""
    db, plans, pruning = build_layouts(fast=FAST)["encoded"]
    totals = benchmark.pedantic(
        execute_all, args=(db, plans, pruning), rounds=1, iterations=1,
    )
    assert totals["rows"] > 0 and totals["segments_pruned"] > 0


@pytest.mark.slow
def test_p6_storage_gates_full_size():
    """Acceptance gates: ≥2x scan speedup, ≥2x lower peak alloc, ≥50%
    segments pruned on the clustered/low-cardinality workload."""
    payload = measure(fast=False, repeats=2)
    assert payload["scan_speedup"] >= 2.0, payload
    assert payload["peak_alloc_ratio"] >= 2.0, payload
    assert payload["prune_rate"] >= 0.5, payload


if __name__ == "__main__":
    payload = {"bench": "P6 segmented storage", "results": []}
    for fast in (True, False):
        result = measure(fast)
        payload["results"].append(result)
        print("%s: flat %.3fs, encoded %.3fs (%.2fx); prune_rate=%.0f%%, "
              "alloc ratio=%.2fx, ingest speedup=%.2fx" % (
                  "fast" if fast else "full",
                  result["configs"]["flat"]["seconds"],
                  result["configs"]["encoded"]["seconds"],
                  result["scan_speedup"],
                  100.0 * result["prune_rate"],
                  result["peak_alloc_ratio"],
                  result["ingest"]["speedup"],
              ))
    out_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_P6.json")
    with open(os.path.abspath(out_path), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("wrote BENCH_P6.json")
