"""Learned database design: indexes, KV design continuum, transactions.

The tutorial's "learning-based database design" category in one script:

1. **learned indexes** (RMI / PGM / ALEX-lite) vs. B+Tree on size and
   probe cost, including inserts into ALEX-lite,
2. the **design continuum** search finding a KV design per workload,
3. **learned transaction scheduling** cutting contention on a hotspot
   OLTP batch.

Run:  python examples/learned_storage.py
"""

import numpy as np

from repro.ai4db.design.learned_index import (
    ALEXLiteIndex,
    BinarySearchIndex,
    PGMIndex,
    RMIIndex,
    evaluate_index,
)
from repro.ai4db.design.learned_kv import (
    DesignContinuumSearch,
    KVCostModel,
    KVWorkload,
    classic_designs,
)
from repro.ai4db.design.txn_mgmt import ConflictClassifier, evaluate_schedulers
from repro.engine.indexes import BPlusTree
from repro.engine.txn import hotspot_workload


def main():
    rng = np.random.default_rng(0)

    print("== 1. Learned indexes on 200k lognormal keys ==")
    keys = np.unique(rng.lognormal(10, 1.5, 200000))
    probe = keys[rng.choice(len(keys), 2000, replace=False)]
    gaps = keys[:-1] + np.diff(keys) / 2
    absent = gaps[rng.choice(len(gaps), 2000, replace=False)]
    btree = BPlusTree.bulk_load([(float(k), i) for i, k in enumerate(keys)])
    print("  %-14s %10s %12s" % ("index", "avg-cmps", "size-bytes"))
    for index in (BinarySearchIndex(keys),
                  RMIIndex(keys, n_models=1024),
                  PGMIndex(keys, epsilon=32),
                  ALEXLiteIndex(keys)):
        metrics = evaluate_index(index, probe, absent)
        print("  %-14s %10.1f %12d" %
              (index.name, metrics["mean_hit_comparisons"],
               metrics["size_bytes"]))
    print("  %-14s %10.1f %12d  (height %d)" %
          ("b+tree", btree.height * np.ceil(np.log2(btree.order)),
           btree.size_bytes(), btree.height))

    print("\n  Inserting 5k new keys into ALEX-lite (updatable)...")
    alex = ALEXLiteIndex(keys[:100000])
    new_keys = rng.lognormal(10, 1.5, 5000)
    for k in new_keys:
        alex.insert(float(k))
    found, __ = alex.lookup(float(new_keys[42]))
    print("  inserted key found:", found is not None,
          "| size now %d entries" % len(alex))

    print("\n== 2. KV design continuum (data-structure alchemy) ==")
    cost_model = KVCostModel()
    search = DesignContinuumSearch(cost_model)
    for workload in (KVWorkload("read-heavy", 0.85, 0.10, 0.05),
                     KVWorkload("write-heavy", 0.15, 0.80, 0.05)):
        design, cost, trajectory = search.search(workload)
        best_fixed = min(
            (cost_model.total_cost(d, workload), name)
            for name, d in classic_designs().items()
        )
        print("  %-12s searched cost %.2f (best fixed: %s at %.2f) in %d "
              "moves" % (workload.name, cost, best_fixed[1], best_fixed[0],
                         len(trajectory)))
        print("    -> %r" % design)

    print("\n== 3. Learned transaction scheduling ==")
    train = hotspot_workload(n_txns=250, hot_fraction=0.7, seed=1)
    classifier = ConflictClassifier(seed=0).fit(train, n_pairs=1500, seed=2)
    txns = hotspot_workload(n_txns=250, hot_fraction=0.7, seed=0)
    results = evaluate_schedulers(txns, n_workers=4, classifier=classifier)
    print("  %-14s %12s %10s %8s" % ("scheduler", "makespan", "waits",
                                     "aborts"))
    for name in ("fifo", "cost-ordered", "learned"):
        r = results[name]
        print("  %-14s %12.1f %10.1f %8d" %
              (name, r.makespan, r.total_wait, r.aborts))


if __name__ == "__main__":
    main()
