"""Learned database security and monitoring in one incident-response loop.

Plays out a day in the life of a learned security/monitoring stack
(paper §2.1, categories 4–5):

1. the **SQL-injection detector** screens incoming statements,
2. **sensitive-data discovery** flags columns needing masking,
3. the **access controller** adjudicates requests against those columns,
4. the **bandit activity monitor** spends its audit budget on risky
   activity types,
5. the **root-cause diagnoser** explains a slow-query incident.

Run:  python examples/security_monitoring.py
"""

import numpy as np

from repro.ai4db.monitoring.activity_monitor import (
    BanditAuditPolicy,
    RandomAuditPolicy,
    run_audit_simulation,
)
from repro.ai4db.monitoring.root_cause import ClusterDiagnoser, RuleBasedDiagnoser
from repro.ai4db.security.access_control import (
    AccessRequestGenerator,
    LearnedAccessController,
    StaticACLBaseline,
    false_permit_rate,
)
from repro.ai4db.security.discovery import (
    LearnedSensitiveDiscovery,
    RegexRuleDiscovery,
    SensitiveColumnGenerator,
    discovery_f1,
)
from repro.ai4db.security.sql_injection import (
    InjectionCorpusGenerator,
    LearnedInjectionDetector,
    SignatureRuleDetector,
    evaluate_detector,
)
from repro.engine.telemetry import ACTIVITY_TYPES, kpi_episodes
from repro.ml import accuracy


def main():
    print("== 1. SQL-injection screening ==")
    gen = InjectionCorpusGenerator(seed=0)
    train_x, train_y, __ = gen.generate(500, 250)
    test_x, test_y, test_f = gen.generate(300, 150)
    rules = SignatureRuleDetector()
    learned = LearnedInjectionDetector("tree", seed=0).fit(train_x, train_y)
    for det in (rules, learned):
        r = evaluate_detector(det, test_x, test_y, test_f)
        obf = [v for k, v in r["family_recall"].items() if k.endswith("+obf")]
        print("  %-16s recall=%.2f obfuscated-recall=%.2f precision=%.2f" %
              (det.name, r["recall"], float(np.mean(obf)), r["precision"]))
    example_attack = "SELECT * FROM users WHERE id = 7 /**/ oR 2>1"
    print("  obfuscated sample -> rules: %s, learned: %s" % (
        "FLAGGED" if rules.predict([example_attack])[0] else "missed",
        "FLAGGED" if learned.predict([example_attack])[0] else "missed",
    ))

    print("\n== 2. Sensitive-data discovery ==")
    sgen = SensitiveColumnGenerator(seed=1)
    names_tr, vals_tr, labels_tr, __ = sgen.generate(150)
    names_te, vals_te, labels_te, kinds_te = sgen.generate(80)
    for method in (RegexRuleDiscovery(),
                   LearnedSensitiveDiscovery(seed=0).fit(names_tr, vals_tr,
                                                         labels_tr)):
        p, r, f1 = discovery_f1(method, names_te, vals_te, labels_te)
        print("  %-12s precision=%.2f recall=%.2f f1=%.2f" %
              (method.name, p, r, f1))

    print("\n== 3. Purpose-based access control ==")
    agen = AccessRequestGenerator(seed=2)
    req_tr, y_tr = agen.generate(1500)
    req_te, y_te = agen.generate(500)
    for method in (StaticACLBaseline(), LearnedAccessController(seed=0)):
        method.fit(req_tr, y_tr)
        preds = method.predict(req_te)
        print("  %-12s accuracy=%.3f false-permits=%.3f" %
              (method.name, accuracy(y_te, preds),
               false_permit_rate(y_te, preds)))

    print("\n== 4. Bandit-driven activity auditing ==")
    means = np.array([m for __, m in ACTIVITY_TYPES])
    for policy in (RandomAuditPolicy(seed=0),
                   BanditAuditPolicy("thompson", seed=0)):
        r = run_audit_simulation(policy, means, n_steps=1500, seed=3)
        print("  %-16s risk captured=%.0f (regret %.0f)" %
              (policy.name, r["captured"], r["regret"]))

    print("\n== 5. Root-cause diagnosis of a slow-query incident ==")
    X, labels = kpi_episodes(n_episodes=240, seed=4)
    diagnoser = ClusterDiagnoser(seed=0).fit(X[:180], lambda i: labels[i])
    rules_diag = RuleBasedDiagnoser()
    y_true = np.array(labels[180:], dtype=object)
    print("  kpi-rules accuracy: %.3f" % accuracy(
        y_true, np.array(rules_diag.diagnose_batch(X[180:]), dtype=object)))
    print("  cluster+label accuracy: %.3f (%d DBA labels)" % (
        accuracy(y_true,
                 np.array(diagnoser.diagnose_batch(X[180:]), dtype=object)),
        diagnoser.labels_used_))


if __name__ == "__main__":
    main()
