"""DB4AI pipeline: governance -> in-database training -> optimized inference.

Walks the tutorial's DB4AI lifecycle end to end on the hospital-stay
scenario its challenges section uses:

1. **discovery** — find the joinable patient data with the EKG,
2. **labeling** — infer reliable labels from a noisy crowd (Dawid–Skene),
3. **cleaning** — spend a cleaning budget where it helps (ActiveClean),
4. **training** — train models declaratively with AISQL + model registry,
5. **inference** — answer the hybrid query ("patients whose predicted stay
   exceeds 5 days") with pushdown + a model cascade.

Run:  python examples/db4ai_pipeline.py
"""

import numpy as np

from repro.db4ai.declarative import AISQLExtension
from repro.db4ai.governance.cleaning import (
    ActiveCleanSession,
    CorruptedDataset,
    RandomCleanSession,
    cleaning_curve,
)
from repro.db4ai.governance.discovery import EnterpriseKnowledgeGraph
from repro.db4ai.governance.labeling import (
    DawidSkene,
    SimulatedCrowd,
    majority_vote,
)
from repro.db4ai.inference.pushdown import (
    CascadeStrategy,
    HybridQuery,
    NaiveStrategy,
    PushdownStrategy,
    make_patients_database,
    run_hybrid_query,
    train_stay_models,
)
from repro.engine.query import Predicate


def main():
    print("== 1. Data discovery (Aurum-lite EKG) ==")
    db, features = make_patients_database(n_patients=10000, seed=0)
    ekg = EnterpriseKnowledgeGraph().build(db.catalog)
    hits = ekg.keyword_search("severity")
    print("Columns matching 'severity':", hits)

    print("\n== 2. Labeling with a noisy crowd ==")
    crowd = SimulatedCrowd(n_workers=15, n_classes=2, n_spammers=3, seed=1)
    rng = np.random.default_rng(2)
    truths = rng.integers(0, 2, 300)
    votes = crowd.collect(truths, redundancy=5)
    mv = majority_vote(votes, 2, seed=0)
    ds = DawidSkene(2).fit(votes, crowd.n_workers)
    print("Majority vote accuracy: %.3f | Dawid-Skene: %.3f" %
          (float(np.mean(mv == truths)),
           float(np.mean(ds.predict() == truths))))
    reliability = ds.worker_reliability()
    print("Spammers detected (lowest inferred reliability): workers %s" %
          np.argsort(reliability)[:3].tolist())

    print("\n== 3. Cleaning with a budget (ActiveClean) ==")
    dataset = CorruptedDataset(seed=3)
    counts, active = cleaning_curve(ActiveCleanSession, dataset, n_batches=6)
    __, random_ = cleaning_curve(RandomCleanSession, dataset, n_batches=6)
    print("Accuracy after cleaning %d records: ActiveClean %.3f vs "
          "random %.3f" % (counts[-1], active[-1], random_[-1]))

    print("\n== 4. Declarative in-database training (AISQL) ==")
    ext = AISQLExtension().install(db)
    print(db.execute(
        "CREATE MODEL stay KIND regressor ON patients TARGET true_stay "
        "FEATURES (age, severity, comorbidities, emergency, ward) "
        "WITH (epochs = 100, hidden = 32)"
    ))
    print("Registry:", ext.registry.get("stay"))
    print("Evaluation:", db.execute("EVALUATE stay ON patients"))

    print("\n== 5. Hybrid-query inference (the paper's example) ==")
    models = train_stay_models(db, features, n_train=3000, seed=0)
    hybrid = HybridQuery("patients",
                         [Predicate("patients", "age", ">", 60)],
                         features, threshold=5.0)
    results = run_hybrid_query(
        db, models, hybrid,
        strategies=[NaiveStrategy(), PushdownStrategy(), CascadeStrategy()],
    )
    print("%-10s %18s %10s %10s %8s" %
          ("strategy", "expensive-rows", "seconds", "precision", "recall"))
    for row in results:
        print("%-10s %18d %10.4f %10.3f %8.3f" %
              (row["strategy"], row["expensive_rows"], row["seconds"],
               row["precision"], row["recall"]))


if __name__ == "__main__":
    main()
