"""Learned query optimization: estimator, join orderer, end-to-end.

Shows the three levels at which learning replaces the optimizer's
heuristics (paper §2.1, "learning-based database optimization"):

1. a learned **cardinality estimator** fixes the independence assumption
   on correlated data,
2. **MCTS join ordering** matches DP plan quality without exhaustive
   enumeration,
3. the **end-to-end NEO-lite optimizer** learns from executed latency and
   beats the misestimating analytic optimizer.

Run:  python examples/learned_query_optimizer.py
"""

import numpy as np

from repro.ai4db.optimization.cardinality import (
    LearnedCardinalityEstimator,
    QueryFeaturizer,
    generate_training_queries,
)
from repro.ai4db.optimization.end_to_end import NeoLiteOptimizer
from repro.ai4db.optimization.join_order import MCTSJoinOrderer
from repro.engine import Database, datagen
from repro.engine.catalog import Catalog
from repro.engine.optimizer.cardinality import TraditionalEstimator
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.join_enum import dp_left_deep, greedy_order
from repro.ml import q_error_summary


def main():
    print("== 1. Learned cardinality estimation ==")
    catalog = Catalog()
    datagen.make_correlated_table(catalog, "facts", n_rows=8000, n_values=50,
                                  correlation=0.9, seed=0)
    queries, cards = generate_training_queries(
        catalog, "facts", ["a", "b", "c"], n_queries=400, n_values=50, seed=1
    )
    split = 320
    featurizer = QueryFeaturizer(catalog, ["facts"], [])
    learned = LearnedCardinalityEstimator(featurizer, epochs=100, seed=0)
    learned.fit(queries[:split], cards[:split])
    traditional = TraditionalEstimator(catalog)
    trad_preds = [traditional.estimate_subset(q, q.tables)
                  for q in queries[split:]]
    for name, preds in (("histogram", trad_preds),
                        ("learned", learned.predict(queries[split:]))):
        s = q_error_summary(cards[split:], preds)
        print("  %-10s q50=%.2f q95=%.1f q99=%.1f max=%.1f" %
              (name, s["q50"], s["q95"], s["q99"], s["max"]))

    print("\n== 2. MCTS join ordering on an 8-table clique ==")
    cat2 = Catalog()
    names, edges = datagen.make_join_graph_schema(
        cat2, "clique", n_tables=8, rows_per_table=600, seed=2
    )
    join_queries = datagen.join_graph_workload(names, edges, n_queries=5,
                                               seed=3, min_tables=7)
    estimator = TraditionalEstimator(cat2)
    cost_model = CostModel()
    mcts = MCTSJoinOrderer(estimator, cost_model, n_iterations=250, seed=0)
    for i, q in enumerate(join_queries):
        __, dp_cost = dp_left_deep(q, estimator, cost_model)
        __, greedy_cost = greedy_order(q, estimator, cost_model)
        __, mcts_cost = mcts.order(q)
        print("  query %d (%d tables): dp=%.3g greedy=%.3g mcts=%.3g" %
              (i, len(q.tables), dp_cost, greedy_cost, mcts_cost))

    print("\n== 3. End-to-end optimizer learning from latency ==")
    db = Database()
    nnames, nedges = datagen.make_join_graph_schema(
        db.catalog, "clique", n_tables=5, rows_per_table=600, seed=3,
        prefix="n", correlated=True,
    )
    workload = datagen.join_graph_workload(nnames, nedges, n_queries=16,
                                           seed=4, min_tables=4)
    train, test = workload[:8], workload[8:]
    neo = NeoLiteOptimizer(db, nnames, epochs=100, seed=0)
    neo.bootstrap(train, extra_random_orders=2).train()
    analytic_work, neo_work = [], []
    for q in test:
        analytic_work.append(db.executor.execute(db.planner.plan(q)).work)
        result, order = neo.execute(q, learn=False)
        neo_work.append(result.work)
    print("  mean executed work: analytic=%.3g  neo-lite=%.3g (%.2fx)" %
          (float(np.mean(analytic_work)), float(np.mean(neo_work)),
           float(np.mean(analytic_work)) / float(np.mean(neo_work))))


if __name__ == "__main__":
    main()
