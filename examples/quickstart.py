"""Quickstart: the database engine + AISQL in five minutes.

Creates tables with SQL, queries them through the cost-based optimizer,
inspects a plan, then trains and applies a model *inside* the database
with AISQL — the tutorial's declarative DB4AI entry point.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.db4ai.declarative import AISQLExtension
from repro.engine import Database


def main():
    db = Database()

    # --- plain SQL -------------------------------------------------------
    db.execute("CREATE TABLE users (id INT, name TEXT, age INT, spend FLOAT)")
    rng = np.random.default_rng(7)
    values = []
    for i in range(2000):
        age = int(rng.integers(18, 80))
        spend = round(3.0 * age + rng.normal(0, 25) + 40, 2)
        values.append("(%d, 'user_%d', %d, %s)" % (i, i, age, spend))
    db.execute("INSERT INTO users VALUES " + ", ".join(values))
    db.execute("ANALYZE users")

    print("Row count:", db.query("SELECT COUNT(*) FROM users")[0][0])
    print("Avg spend of 30-40 year olds:",
          round(db.query(
              "SELECT AVG(spend) FROM users WHERE age >= 30 AND age <= 40"
          )[0][0], 2))

    # --- indexes change plans --------------------------------------------
    print("\nPlan without an index:")
    print(db.explain("SELECT COUNT(*) FROM users WHERE age < 25"))
    db.execute("CREATE INDEX idx_age ON users (age)")
    print("\nPlan with an index on age:")
    print(db.explain("SELECT COUNT(*) FROM users WHERE age < 25"))

    # --- AISQL: train and predict inside the database ---------------------
    AISQLExtension().install(db)
    print("\n" + db.execute(
        "CREATE MODEL spend_model KIND regressor ON users TARGET spend "
        "FEATURES (age) WITH (epochs = 80, hidden = 16)"
    ))
    print("Holdout fit:", db.execute("EVALUATE spend_model ON users"))
    result = db.execute("PREDICT spend_model ON users WHERE age > 70 LIMIT 3")
    print("Sample predictions (age -> predicted spend):")
    for row in result.rows:
        print("   age %d -> %.1f" % (int(row[0]), row[-1]))


if __name__ == "__main__":
    main()
