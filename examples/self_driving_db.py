"""Self-driving database demo: the AI4DB components working together.

On a star-schema warehouse with an analytical workload, this example runs
the full learned-configuration loop the tutorial describes:

1. the **SQL rewriter** simplifies the workload's queries,
2. the **index advisor** picks indexes under a budget,
3. the **view advisor** materializes views under a space budget,
4. the **knob tuner** (pretrained CDBTune-lite) tunes the simulated server,
5. the **monitoring** stack forecasts load and diagnoses an incident.

Run:  python examples/self_driving_db.py
"""

import numpy as np

from repro.ai4db.config.index_advisor import (
    GreedyIndexAdvisor,
    realize_indexes,
    workload_cost,
)
from repro.ai4db.config.knob_tuning import CDBTuneLite, DefaultConfigTuner
from repro.ai4db.config.sql_rewriter import FixedOrderRewriter
from repro.ai4db.config.view_advisor import GreedyViewAdvisor
from repro.ai4db.monitoring.forecast import AutoregressiveForecaster
from repro.ai4db.monitoring.root_cause import ClusterDiagnoser
from repro.engine import Database, datagen
from repro.engine.knobs import KnobResponseSimulator, standard_workloads
from repro.engine.telemetry import arrival_trace, kpi_episodes


def main():
    print("== Building the warehouse ==")
    db = Database()
    datagen.make_star_schema(db.catalog, n_customers=800, n_products=150,
                             n_dates=120, n_sales=12000, seed=0)
    workload = datagen.star_workload(n_queries=25, seed=1)
    base_cost = workload_cost(db.catalog, workload)
    print("Workload: %d analytical queries, base cost %.3g" %
          (len(workload), base_cost))

    print("\n== 1. SQL rewriting ==")
    rewriter = FixedOrderRewriter()
    rewritten = []
    n_applied = 0
    for q in workload:
        new_q, applied = rewriter.rewrite(q, db.catalog)
        rewritten.append(new_q)
        n_applied += len(applied)
    print("Applied %d rule rewrites across the workload" % n_applied)

    print("\n== 2. Index advisor (budget: 3 indexes) ==")
    picks, cost_after_idx = GreedyIndexAdvisor().recommend(
        db.catalog, rewritten, budget=3
    )
    realize_indexes(db.catalog, picks)
    print("Chose:", ", ".join("%s.%s" % p.key() for p in picks))
    print("Estimated workload cost: %.3g -> %.3g (%.0f%%)" %
          (base_cost, cost_after_idx, 100 * cost_after_idx / base_cost))

    print("\n== 3. View advisor (budget: 50 MB) ==")
    views, cost_after_views = GreedyViewAdvisor().recommend(
        db, rewritten, space_budget_bytes=50_000_000
    )
    print("Materialized %d views; cost now %.3g (%.0f%% of base)" %
          (len(views), cost_after_views, 100 * cost_after_views / base_cost))

    print("\n== 4. Knob tuning (simulated server) ==")
    sim = KnobResponseSimulator(seed=7, noise=0.03)
    olap = standard_workloads()[1]
    default_tps = DefaultConfigTuner().tune(sim, olap, 1).best_throughput
    tuner = CDBTuneLite(seed=0)
    tuner.pretrain(sim, standard_workloads(), budget_per_workload=120,
                   rounds=2)
    result = tuner.tune(sim, olap, budget=50)
    print("Default config: %.0f tps -> tuned: %.0f tps (%.1fx)" %
          (default_tps, result.best_throughput,
           result.best_throughput / default_tps))

    print("\n== 5. Monitoring ==")
    series, __ = arrival_trace(n_hours=24 * 21, seed=2)
    forecaster = AutoregressiveForecaster().fit(series[:-24])
    forecast = forecaster.predict(series[:-24], horizon=24)
    print("Next-24h arrival forecast: mean %.0f qph (actual %.0f qph)" %
          (float(np.mean(forecast)), float(np.mean(series[-24:]))))
    X, labels = kpi_episodes(n_episodes=200, seed=3)
    diagnoser = ClusterDiagnoser(seed=0).fit(X[:150], lambda i: labels[i])
    incident = X[150]
    print("Incident diagnosed as: %s (truth: %s, DBA labels used: %d)" %
          (diagnoser.diagnose_batch(incident.reshape(1, -1))[0], labels[150],
           diagnoser.labels_used_))

    print("\nSelf-driving loop complete: cost %.3g -> %.3g, server %.0f -> "
          "%.0f tps." % (base_cost, cost_after_views, default_tps,
                         result.best_throughput))


if __name__ == "__main__":
    main()
