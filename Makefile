# Convenience entry points. All targets assume the baked-in python
# toolchain; nothing here installs packages.

PYTHONPATH := src
export PYTHONPATH

.PHONY: test test-session test-concurrency test-optimizer lint fuzz \
	bench bench-fusion bench-feedback bench-storage bench-snapshots \
	bench-server bench-plansel bench-json bench-summary

# Tier-1 suite (fast; slow-marked full-size benchmarks are deselected by
# the pytest addopts default). Lints first — a lint finding fails the run.
test: lint
	python -m pytest -x -q

# Static lint over the whole tree. Uses ruff/pyflakes when installed,
# otherwise the bundled dependency-free AST checker in tools/lint.py.
lint:
	python tools/lint.py src tests benchmarks tools

# Session-layer battery (slow variants included): the safety-gated
# session API (policy/audit/dry-run/rollback across all mode×fusion
# configs), the public-surface + error-hierarchy guards, and the
# agent-session fuzz arm racing random scripts under random policies
# against a serial oracle.
test-session:
	python -m pytest \
		tests/test_engine_session.py \
		tests/test_api_surface.py \
		tests/test_engine_fuzz_differential.py::test_fuzz_agent_session_rollback_matches_serial_oracle \
		-q -m ''

# The concurrency battery at full size (slow variants included): server
# admission properties, no-torn-reads races, plan-cache hammering, and
# the server-mode fuzzer. PYTHONFAULTHANDLER + the per-test watchdog
# (tests/conftest.py) make a deadlock dump stacks and fail instead of
# hanging CI.
test-concurrency:
	PYTHONFAULTHANDLER=1 REPRO_TEST_TIMEOUT=120 python -m pytest \
		tests/test_engine_server.py \
		tests/test_engine_server_concurrency.py \
		tests/test_engine_pipeline_concurrency.py \
		tests/test_engine_fuzz_differential.py -q -m ''

# Optimizer battery (slow variants included): plan selection (hint-set
# arms, UES bounds, bandit/pessimistic selectors, regret caps), the
# classic optimizer suite, cardinality feedback, and the selector-race
# fuzz arm (three selectors vs the cost oracle on random catalogs).
test-optimizer:
	python -m pytest \
		tests/test_engine_plan_selection.py \
		tests/test_engine_optimizer.py \
		tests/test_engine_feedback.py \
		tests/test_engine_fuzz_differential.py::test_fuzz_selector_race \
		-q -m ''

# Differential query fuzzer with a larger case budget than tier-1's ~200.
# Override the budget: make fuzz FUZZ_CASES=5000
FUZZ_CASES ?= 1000
fuzz:
	REPRO_FUZZ_CASES=$(FUZZ_CASES) python -m pytest \
		tests/test_engine_fuzz_differential.py -q -m ''

# Benchmark suite in fast mode (pytest-benchmark entry points).
bench:
	REPRO_BENCH_FAST=1 python -m pytest benchmarks -q -m 'not slow'

# Operator-fusion benchmark alone, including the slow ≥1.3x speedup gate.
bench-fusion:
	python -m pytest benchmarks/bench_p4_fusion.py -q -m ''

# Cardinality-feedback benchmark alone (q-error before/after feedback and
# the drift-driven join-order replan), regenerating BENCH_P5.json.
bench-feedback:
	python -m pytest benchmarks/bench_p5_feedback.py -q -m ''
	python benchmarks/bench_p5_feedback.py

# Segmented-storage benchmark alone, including the slow ≥2x scan/alloc
# gates, regenerating BENCH_P6.json.
bench-storage:
	python -m pytest benchmarks/bench_p6_storage.py -q -m ''
	python benchmarks/bench_p6_storage.py

# Per-table version-vector benchmark alone (warm-plan hit rate and
# latency, global epoch vs scoped tokens), regenerating BENCH_P7.json.
bench-snapshots:
	python -m pytest benchmarks/bench_p7_snapshots.py -q -m ''
	python benchmarks/bench_p7_snapshots.py

# Multi-tenant serving benchmark alone (snapshot isolation at 8+
# sessions, fair-share interference, Zipf traffic), regenerating
# BENCH_P8.json.
bench-server:
	python -m pytest benchmarks/bench_p8_server.py -q -m ''
	python benchmarks/bench_p8_server.py

# Plan-selection benchmark alone (four-strategy race over the skewed +
# correlated workload, slow full-size gates included), regenerating
# BENCH_P9.json.
bench-plansel:
	python -m pytest benchmarks/bench_p9_plansel.py -q -m ''
	python benchmarks/bench_p9_plansel.py

# One-table headline summary of the committed BENCH_P*.json artifacts.
bench-summary:
	python tools/bench_summary.py

# Regenerate the committed BENCH_P*.json artifacts at full size.
bench-json:
	python benchmarks/bench_p1_executor.py
	python benchmarks/bench_p2_pipeline.py
	python benchmarks/bench_p3_morsels.py
	python benchmarks/bench_p4_fusion.py
	python benchmarks/bench_p5_feedback.py
	python benchmarks/bench_p6_storage.py
	python benchmarks/bench_p7_snapshots.py
	python benchmarks/bench_p8_server.py
	python benchmarks/bench_p9_plansel.py
