"""repro: AI4DB + DB4AI — learned database components and in-database ML.

A laptop-scale, NumPy-only reproduction of the technique taxonomy surveyed
in *AI Meets Database: AI4DB and DB4AI* (Li, Zhou, Cao — SIGMOD 2021).

Subpackages
-----------
``repro.ml``
    Machine-learning substrate (linear/tree/MLP/GP models, RL agents, MCTS,
    bandits, graph networks) — no external ML frameworks.
``repro.engine``
    In-memory relational database substrate: SQL parser, catalog with
    statistics, cost-based optimizer, executor, indexes, knob simulator,
    transaction simulator, telemetry generator.
``repro.ai4db``
    AI-for-DB components: learned configuration (knobs/indexes/views/
    rewriting/partitioning), learned optimization (cardinality, cost, join
    order, end-to-end), learned design (learned indexes, KV design,
    transaction scheduling), learned monitoring, learned security.
``repro.db4ai``
    DB-for-AI components: declarative AISQL, data governance (discovery,
    cleaning, labeling, lineage), training optimization, in-database
    inference optimization.
``repro.harness``
    Experiment runner shared by the benchmark suite and EXPERIMENTS.md.
"""

__version__ = "1.0.0"
