"""Experiment registry and runner."""

from repro.common import ReproError


class ExperimentSpec:
    """Metadata + entry point for one experiment.

    Attributes:
        exp_id: short id ("E1", "F1", ...).
        title: human-readable title.
        claim: the qualitative shape expected (from DESIGN.md §5).
        func: callable ``(seed=..., fast=...) -> list[ResultTable]``.
    """

    def __init__(self, exp_id, title, claim, func):
        self.exp_id = exp_id
        self.title = title
        self.claim = claim
        self.func = func

    def run(self, seed=0, fast=False):
        """Run the experiment; returns a list of ResultTables."""
        tables = self.func(seed=seed, fast=fast)
        if not isinstance(tables, (list, tuple)):
            tables = [tables]
        return list(tables)

    def __repr__(self):
        return "ExperimentSpec(%s: %s)" % (self.exp_id, self.title)


_REGISTRY = {}


def register_experiment(exp_id, title, claim):
    """Decorator registering an experiment function under ``exp_id``."""

    def deco(func):
        key = exp_id.upper()
        if key in _REGISTRY:
            raise ReproError("experiment %s already registered" % exp_id)
        _REGISTRY[key] = ExperimentSpec(exp_id, title, claim, func)
        return func

    return deco


def get_experiment(exp_id):
    """Look up an experiment by id (case-insensitive)."""
    _load_all()
    key = exp_id.upper()
    if key not in _REGISTRY:
        raise ReproError(
            "no experiment %r (have: %s)" % (exp_id, ", ".join(sorted(_REGISTRY)))
        )
    return _REGISTRY[key]


def all_experiments():
    """All registered experiments, sorted by id."""
    _load_all()
    return [
        _REGISTRY[k]
        for k in sorted(_REGISTRY, key=lambda s: (s[0], int(s[1:]) if s[1:].isdigit() else 0))
    ]


def run_experiment(exp_id, seed=0, fast=False, show=True):
    """Run one experiment and (optionally) print its tables."""
    spec = get_experiment(exp_id)
    tables = spec.run(seed=seed, fast=fast)
    if show:
        print("== %s: %s ==" % (spec.exp_id, spec.title))
        print("expected shape: %s" % spec.claim)
        for t in tables:
            t.show()
    return tables


def _load_all():
    """Import the experiment definitions module (registers everything)."""
    from repro.harness import experiments  # noqa: F401
