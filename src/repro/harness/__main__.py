"""Command-line experiment runner.

Usage::

    python -m repro.harness            # list experiments
    python -m repro.harness E6         # run one experiment
    python -m repro.harness all        # run everything (slow)
    python -m repro.harness E6 --fast  # CI-sized run
"""

import argparse

from repro.harness.registry import all_experiments, run_experiment


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run the AI4DB/DB4AI reproduction experiments.",
    )
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment id (E1..E16, F1), 'all', or "
                             "'report' (writes EXPERIMENTS.md)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="shrunken data/budgets for quick runs")
    parser.add_argument("--out", default="EXPERIMENTS.md",
                        help="output path for 'report'")
    args = parser.parse_args(argv)
    if args.experiment is None:
        print("Available experiments:")
        for spec in all_experiments():
            print("  %-4s %s" % (spec.exp_id, spec.title))
        return 0
    if args.experiment.lower() == "report":
        from repro.harness.report import write_report

        path = write_report(args.out, seed=args.seed, fast=args.fast)
        print("wrote %s" % path)
        return 0
    if args.experiment.lower() == "all":
        for spec in all_experiments():
            run_experiment(spec.exp_id, seed=args.seed, fast=args.fast)
        return 0
    run_experiment(args.experiment, seed=args.seed, fast=args.fast)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
