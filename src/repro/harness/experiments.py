"""Experiment definitions F1, E1–E17 (see DESIGN.md §5).

Each experiment is a registered function ``(seed, fast) -> [ResultTable]``.
``fast=True`` shrinks data/budget for CI-speed runs; the benchmark suite
uses the full settings. Everything is seeded, so tables are reproducible.
"""

import os

import numpy as np

from repro.common import ResultTable, ensure_rng
from repro.harness.registry import register_experiment


def _executor_mode():
    """Executor mode for experiment databases (env override, else default)."""
    return os.environ.get("REPRO_EXECUTOR_MODE") or None


# ----------------------------------------------------------------------
# F1 — the taxonomy (Figure 1)
# ----------------------------------------------------------------------
@register_experiment(
    "F1",
    "Figure 1 taxonomy coverage",
    "every box in the paper's Figure 1 maps to an implemented module",
)
def f1_taxonomy(seed=0, fast=False):
    """Experiment f1_taxonomy (see the register_experiment metadata above)."""
    import importlib

    boxes = [
        # (Figure-1 box, implementing module, key public symbol)
        ("Knob Tuning", "repro.ai4db.config.knob_tuning", "CDBTuneLite"),
        ("Index Advisor", "repro.ai4db.config.index_advisor", "RLIndexAdvisor"),
        ("View Advisor", "repro.ai4db.config.view_advisor", "RLViewAdvisor"),
        ("SQL Rewriter", "repro.ai4db.config.sql_rewriter", "LearnedRewriter"),
        ("Database Partition", "repro.ai4db.config.partitioner", "RLPartitioner"),
        ("Cardinality Estimation", "repro.ai4db.optimization.cardinality",
         "LearnedCardinalityEstimator"),
        ("Cost Estimation", "repro.ai4db.optimization.cost", "LearnedCostModel"),
        ("Join Order Selection", "repro.ai4db.optimization.join_order",
         "MCTSJoinOrderer"),
        ("End-to-end Optimizer", "repro.ai4db.optimization.end_to_end",
         "NeoLiteOptimizer"),
        ("Learned Indexes", "repro.ai4db.design.learned_index", "RMIIndex"),
        ("Learned Data Structures", "repro.ai4db.design.learned_kv",
         "DesignContinuumSearch"),
        ("Transaction Management", "repro.ai4db.design.txn_mgmt",
         "LearnedScheduler"),
        ("Health Monitor", "repro.ai4db.monitoring.root_cause",
         "ClusterDiagnoser"),
        ("Activity Monitor", "repro.ai4db.monitoring.activity_monitor",
         "BanditAuditPolicy"),
        ("Performance Prediction", "repro.ai4db.monitoring.perf_pred",
         "GraphEmbeddingPredictor"),
        ("Workload Forecasting", "repro.ai4db.monitoring.forecast",
         "EnsembleForecaster"),
        ("Data Discovery (security)", "repro.ai4db.security.discovery",
         "LearnedSensitiveDiscovery"),
        ("Access Control", "repro.ai4db.security.access_control",
         "LearnedAccessController"),
        ("SQL Injection", "repro.ai4db.security.sql_injection",
         "LearnedInjectionDetector"),
        ("Declarative Language Model", "repro.db4ai.declarative.aisql",
         "AISQLExtension"),
        ("Data Discovery (DB4AI)", "repro.db4ai.governance.discovery",
         "EnterpriseKnowledgeGraph"),
        ("Data Cleaning", "repro.db4ai.governance.cleaning",
         "ActiveCleanSession"),
        ("Data Labeling", "repro.db4ai.governance.labeling", "DawidSkene"),
        ("Data Lineage", "repro.db4ai.governance.lineage", "LineageTracker"),
        ("Feature Selection", "repro.db4ai.training.features",
         "FeatureComputeEngine"),
        ("Model Selection", "repro.db4ai.training.model_select",
         "successive_halving"),
        ("Model Management", "repro.db4ai.training.registry", "ModelRegistry"),
        ("Hardware Acceleration", "repro.db4ai.training.hardware",
         "crossover_table"),
        ("Operator Support", "repro.db4ai.inference.operators",
         "ModelScanOperator"),
        ("Operator Selection", "repro.db4ai.inference.operators",
         "select_operator"),
        ("Execution Acceleration", "repro.db4ai.inference.pushdown",
         "CascadeStrategy"),
    ]
    table = ResultTable(
        "F1: Figure-1 box -> module coverage",
        ["figure1_box", "module", "symbol", "present"],
    )
    for box, module, symbol in boxes:
        mod = importlib.import_module(module)
        table.add_row(box, module, symbol, hasattr(mod, symbol))
    return [table]


# ----------------------------------------------------------------------
# E1 — knob tuning
# ----------------------------------------------------------------------
@register_experiment(
    "E1",
    "Learned knob tuning vs. search baselines (CDBTune/QTune/OtterTune)",
    "pretrained RL tuners and BO beat grid/random within the online budget; "
    "all beat the vendor default",
)
def e1_knob_tuning(seed=0, fast=False):
    """Experiment e1_knob_tuning (see the register_experiment metadata above)."""
    from repro.ai4db.config.knob_tuning import (
        BayesianOptimizationTuner,
        CDBTuneLite,
        DefaultConfigTuner,
        GridSearchTuner,
        QTuneLite,
        RandomSearchTuner,
        run_tuning_session,
    )
    from repro.engine.knobs import KnobResponseSimulator, standard_workloads

    budget = 30 if fast else 60
    pretrain_budget = 60 if fast else 200
    rounds = 1 if fast else 3
    workloads = standard_workloads()
    sim = KnobResponseSimulator(seed=7, noise=0.03)
    cdb = CDBTuneLite(seed=seed)
    cdb.pretrain(sim, workloads, budget_per_workload=pretrain_budget,
                 rounds=rounds)
    qt = QTuneLite(seed=seed)
    qt.pretrain(sim, workloads, budget_per_workload=pretrain_budget,
                rounds=rounds)
    table = ResultTable(
        "E1: best throughput (tps) after %d online observations" % budget,
        ["workload", "default", "random", "grid", "bo", "cdbtune", "qtune"],
    )
    for wl in workloads:
        baselines = [
            DefaultConfigTuner(),
            RandomSearchTuner(seed=seed),
            GridSearchTuner(),
            BayesianOptimizationTuner(seed=seed),
        ]
        res = run_tuning_session(baselines, sim, wl, budget)
        res["cdbtune"] = cdb.tune(sim, wl, budget)
        res["qtune"] = qt.tune(sim, wl, budget)
        table.add_row(
            wl.name,
            res["default"].best_throughput,
            res["random"].best_throughput,
            res["grid"].best_throughput,
            res["bo"].best_throughput,
            res["cdbtune"].best_throughput,
            res["qtune"].best_throughput,
        )
    return [table]


# ----------------------------------------------------------------------
# E2 — index advisor
# ----------------------------------------------------------------------
def _star_db(seed, fast):
    from repro.engine.database import Database
    from repro.engine import datagen

    db = Database(executor_mode=_executor_mode())
    scale = 0.4 if fast else 1.0
    datagen.make_star_schema(
        db.catalog,
        n_customers=int(1000 * scale),
        n_products=int(200 * scale),
        n_dates=120,
        n_sales=int(15000 * scale),
        seed=seed,
    )
    return db


@register_experiment(
    "E2",
    "Index advisors: greedy what-if vs. RL vs. classifier",
    "all advisors recover most of the achievable cost reduction; the "
    "classifier needs no what-if calls at recommendation time",
)
def e2_index_advisor(seed=0, fast=False):
    """Experiment e2_index_advisor (see the register_experiment metadata above)."""
    from repro.ai4db.config.index_advisor import (
        ClassifierIndexAdvisor,
        GreedyIndexAdvisor,
        RLIndexAdvisor,
        workload_cost,
    )
    from repro.engine import datagen

    db = _star_db(seed, fast)
    workload = datagen.star_workload(n_queries=15 if fast else 30, seed=seed + 1)
    base = workload_cost(db.catalog, workload)
    budget = 3
    table = ResultTable(
        "E2: workload cost under a %d-index budget" % budget,
        ["advisor", "workload_cost", "cost_vs_base", "indexes"],
    )
    table.add_row("none", base, 1.0, "-")
    g_picks, g_cost = GreedyIndexAdvisor().recommend(db.catalog, workload, budget)
    table.add_row("greedy-whatif", g_cost, g_cost / base,
                  ", ".join("%s.%s" % c.key() for c in g_picks))
    r_picks, r_cost = RLIndexAdvisor(
        episodes=30 if fast else 120, seed=seed
    ).recommend(db.catalog, workload, budget)
    table.add_row("rl", r_cost, r_cost / base,
                  ", ".join("%s.%s" % c.key() for c in r_picks))
    train = [
        datagen.star_workload(n_queries=10 if fast else 20, seed=seed + s)
        for s in (2, 3)
    ]
    clf = ClassifierIndexAdvisor(seed=seed).fit(db.catalog, train)
    c_picks, c_cost = clf.recommend(db.catalog, workload, budget)
    table.add_row("classifier", c_cost, c_cost / base,
                  ", ".join("%s.%s" % c.key() for c in c_picks))
    return [table]


# ----------------------------------------------------------------------
# E3 — view advisor
# ----------------------------------------------------------------------
@register_experiment(
    "E3",
    "Materialized-view advisors under a space budget",
    "both advisors cut workload cost substantially vs. no views; greedy "
    "benefit-per-byte is a strong static baseline",
)
def e3_view_advisor(seed=0, fast=False):
    """Experiment e3_view_advisor (see the register_experiment metadata above)."""
    from repro.ai4db.config.view_advisor import (
        GreedyViewAdvisor,
        RLViewAdvisor,
        workload_cost_with_views,
    )
    from repro.engine import datagen

    table = ResultTable(
        "E3: workload cost under a 50 MB view budget",
        ["advisor", "workload_cost", "cost_vs_base", "views_chosen"],
    )
    budget_bytes = 50_000_000

    db = _star_db(seed, fast)
    workload = datagen.star_workload(n_queries=15 if fast else 30, seed=seed + 1)
    base = workload_cost_with_views(db, workload, [])
    table.add_row("none", base, 1.0, 0)
    gv, g_cost = GreedyViewAdvisor().recommend(db, workload, budget_bytes)
    table.add_row("greedy", g_cost, g_cost / base, len(gv))

    db2 = _star_db(seed, fast)
    rv, r_cost = RLViewAdvisor(
        episodes=30 if fast else 120, seed=seed
    ).recommend(db2, workload, budget_bytes)
    table.add_row("rl", r_cost, r_cost / base, len(rv))
    return [table]


# ----------------------------------------------------------------------
# E4 — SQL rewriter
# ----------------------------------------------------------------------
@register_experiment(
    "E4",
    "SQL rewriting: learned rule ordering vs. fixed order vs. none",
    "learned ordering >= fixed order >= none on final plan cost, with "
    "fewer rule applications",
)
def e4_sql_rewriter(seed=0, fast=False):
    """Experiment e4_sql_rewriter (see the register_experiment metadata above)."""
    from repro.ai4db.config.sql_rewriter import (
        FixedOrderRewriter,
        LearnedRewriter,
        make_rewrite_corpus,
        plan_cost,
    )
    from repro.engine import datagen
    from repro.engine.database import Database

    db = Database(executor_mode=_executor_mode())
    names, edges = datagen.make_join_graph_schema(
        db.catalog, "star", n_tables=4,
        rows_per_table=800 if fast else 2000, seed=seed,
    )
    # Hub is names[0]; corpus filters the spokes and joins back to the hub.
    corpus = make_rewrite_corpus(
        db.catalog, names[1], [(names[0], "fk", "id")], None,
        n_queries=10 if fast else 25, n_values=200, seed=seed + 1,
    )
    fixed = FixedOrderRewriter()
    learned = LearnedRewriter(n_iterations=25 if fast else 60, seed=seed)
    rows = {"none": [], "fixed": [], "learned": []}
    apps = {"fixed": 0, "learned": 0}
    for q in corpus:
        rows["none"].append(plan_cost(db.catalog, q))
        qf, af = fixed.rewrite(q, db.catalog)
        rows["fixed"].append(plan_cost(db.catalog, qf))
        apps["fixed"] += len(af)
        ql, al = learned.rewrite(q, db.catalog)
        rows["learned"].append(plan_cost(db.catalog, ql))
        apps["learned"] += len(al)
    table = ResultTable(
        "E4: mean plan cost after rewriting (%d queries)" % len(corpus),
        ["rewriter", "mean_plan_cost", "cost_vs_none", "rule_applications"],
    )
    base = float(np.mean(rows["none"]))
    table.add_row("none", base, 1.0, 0)
    table.add_row("fixed-order", float(np.mean(rows["fixed"])),
                  float(np.mean(rows["fixed"])) / base, apps["fixed"])
    table.add_row("learned-mcts", float(np.mean(rows["learned"])),
                  float(np.mean(rows["learned"])) / base, apps["learned"])
    return [table]


# ----------------------------------------------------------------------
# E5 — partitioning
# ----------------------------------------------------------------------
@register_experiment(
    "E5",
    "Partition-key advisor: RL vs. most-filtered-column heuristic",
    "RL discovers co-partitioning on join keys and beats the heuristic "
    "when shuffles dominate",
)
def e5_partitioner(seed=0, fast=False):
    """Experiment e5_partitioner (see the register_experiment metadata above)."""
    from repro.ai4db.config.partitioner import (
        HeuristicPartitioner,
        PartitioningCostModel,
        RLPartitioner,
    )
    from repro.engine import datagen

    db = _star_db(seed, fast)
    workload = datagen.star_workload(n_queries=10 if fast else 20, seed=seed + 4)
    tables = ["sales", "customer", "product", "dates"]
    cost_model = PartitioningCostModel(db.catalog, n_nodes=4)
    table = ResultTable(
        "E5: distributed workload cost, 4 nodes",
        ["method", "workload_cost", "cost_vs_heuristic", "assignment"],
    )
    hp, hp_cost = HeuristicPartitioner().recommend(cost_model, tables, workload)
    table.add_row("heuristic", hp_cost, 1.0,
                  ", ".join("%s->%s" % kv for kv in sorted(hp.items())))
    rp, rp_cost = RLPartitioner(
        episodes=80 if fast else 300, seed=seed
    ).recommend(cost_model, tables, workload)
    table.add_row("rl", rp_cost, rp_cost / hp_cost,
                  ", ".join("%s->%s" % kv for kv in sorted(rp.items())))
    return [table]


# ----------------------------------------------------------------------
# E6 — cardinality estimation
# ----------------------------------------------------------------------
@register_experiment(
    "E6",
    "Cardinality estimation on correlated data (MSCN-lite)",
    "learned tail q-error (q95/q99/max) is far below the histogram "
    "estimator's on correlated columns; sampling sits in between",
)
def e6_cardinality(seed=0, fast=False):
    """Experiment e6_cardinality (see the register_experiment metadata above)."""
    from repro.ai4db.optimization.cardinality import (
        LearnedCardinalityEstimator,
        QueryFeaturizer,
        generate_training_queries,
    )
    from repro.engine import datagen
    from repro.engine.catalog import Catalog
    from repro.engine.optimizer.cardinality import (
        SamplingEstimator,
        TraditionalEstimator,
    )
    from repro.ml import q_error_summary

    catalog = Catalog()
    n_rows = 4000 if fast else 10000
    datagen.make_correlated_table(
        catalog, "facts", n_rows=n_rows, n_values=50, correlation=0.9,
        seed=seed,
    )
    n_q = 250 if fast else 600
    queries, cards = generate_training_queries(
        catalog, "facts", ["a", "b", "c"], n_queries=n_q, n_values=50,
        seed=seed + 1, max_predicates=3,
    )
    split = int(n_q * 0.8)
    featurizer = QueryFeaturizer(catalog, ["facts"], [])
    learned = LearnedCardinalityEstimator(
        featurizer, hidden=(64, 32), epochs=60 if fast else 150, seed=seed
    )
    learned.fit(queries[:split], cards[:split])
    test_q, test_c = queries[split:], cards[split:]
    estimators = {
        "histogram": TraditionalEstimator(catalog),
        "sampling": SamplingEstimator(catalog, sample_size=500, seed=seed),
    }
    table = ResultTable(
        "E6: q-error on held-out queries (correlation = 0.9)",
        ["estimator", "q50", "q90", "q95", "q99", "max"],
    )
    for name, est in estimators.items():
        preds = [est.estimate_subset(q, q.tables) for q in test_q]
        s = q_error_summary(test_c, preds)
        table.add_row(name, s["q50"], s["q90"], s["q95"], s["q99"], s["max"])
    s = q_error_summary(test_c, learned.predict(test_q))
    table.add_row("learned-mscn", s["q50"], s["q90"], s["q95"], s["q99"],
                  s["max"])

    # Ablation: correlation sweep for the histogram estimator's q95.
    sweep = ResultTable(
        "E6b: histogram q95 vs. column correlation (ablation)",
        ["correlation", "histogram_q95", "learned_q95"],
    )
    for corr in (0.0, 0.5, 0.9):
        cat2 = Catalog()
        datagen.make_correlated_table(
            cat2, "facts", n_rows=n_rows // 2, n_values=50,
            correlation=corr, seed=seed + 2,
        )
        qs, cs = generate_training_queries(
            cat2, "facts", ["a", "b", "c"], n_queries=120 if fast else 300,
            n_values=50, seed=seed + 3, max_predicates=3,
        )
        sp = int(len(qs) * 0.8)
        feat2 = QueryFeaturizer(cat2, ["facts"], [])
        le2 = LearnedCardinalityEstimator(
            feat2, hidden=(64, 32), epochs=50 if fast else 120, seed=seed
        ).fit(qs[:sp], cs[:sp])
        tr = TraditionalEstimator(cat2)
        tp = [tr.estimate_subset(q, q.tables) for q in qs[sp:]]
        sweep.add_row(
            corr,
            q_error_summary(cs[sp:], tp)["q95"],
            q_error_summary(cs[sp:], le2.predict(qs[sp:]))["q95"],
        )
    return [table, sweep]


# ----------------------------------------------------------------------
# E7 — join ordering
# ----------------------------------------------------------------------
@register_experiment(
    "E7",
    "Join ordering: DP vs. greedy vs. random vs. MCTS vs. DQN",
    "DP is optimal but enumeration time explodes with table count; "
    "MCTS/DQN stay near DP cost at bounded optimization time",
)
def e7_join_order(seed=0, fast=False):
    """Experiment e7_join_order (see the register_experiment metadata above)."""
    from repro.ai4db.optimization.join_order import (
        DQNJoinOrderer,
        compare_orderers,
    )
    from repro.engine import datagen
    from repro.engine.catalog import Catalog
    from repro.engine.optimizer.cardinality import TraditionalEstimator
    from repro.engine.optimizer.cost import CostModel

    sizes = (5, 7) if fast else (5, 8, 11)
    tables = []
    main = ResultTable(
        "E7: mean plan cost (relative to DP) and optimization time",
        ["n_tables", "method", "cost_vs_dp", "mean_opt_time_s"],
    )
    for n in sizes:
        catalog = Catalog()
        names, edges = datagen.make_join_graph_schema(
            catalog, "clique", n_tables=n,
            rows_per_table=500 if fast else 800,
            seed=seed, prefix="c%d_" % n,
        )
        queries = datagen.join_graph_workload(
            names, edges, n_queries=4 if fast else 8, seed=seed + 1,
            min_tables=n,
        )
        estimator = TraditionalEstimator(catalog)
        cost_model = CostModel()
        dqn = DQNJoinOrderer(
            names, estimator, cost_model,
            episodes_per_query=4 if fast else 8,
            epochs=2 if fast else 6, seed=seed,
        )
        dqn.fit(queries)
        results = compare_orderers(
            queries, estimator, cost_model,
            mcts_iterations=100 if fast else 300, dqn=dqn, seed=seed,
        )
        dp_cost = np.mean(results["dp"]["cost"])
        for method in ("dp", "greedy", "random", "mcts", "dqn"):
            main.add_row(
                n,
                method,
                float(np.mean(results[method]["cost"]) / dp_cost),
                float(np.mean(results[method]["time"])),
            )
    tables.append(main)

    # Ablation: MCTS exploration constant (DESIGN.md §4).
    from repro.ai4db.optimization.join_order import MCTSJoinOrderer
    from repro.engine.optimizer.join_enum import dp_left_deep

    catalog = Catalog()
    names, edges = datagen.make_join_graph_schema(
        catalog, "clique", n_tables=6, rows_per_table=400, seed=seed + 7,
        prefix="uct_",
    )
    queries = datagen.join_graph_workload(
        names, edges, n_queries=3 if fast else 6, seed=seed + 8, min_tables=6
    )
    estimator = TraditionalEstimator(catalog)
    cost_model = CostModel()
    dp_costs = [dp_left_deep(q, estimator, cost_model)[1] for q in queries]
    ablation = ResultTable(
        "E7b: MCTS exploration-constant sweep (ablation, 6-table clique)",
        ["c_uct", "cost_vs_dp"],
    )
    for c_uct in (0.1, 0.7, 1.4, 3.0):
        orderer = MCTSJoinOrderer(
            estimator, cost_model, n_iterations=80 if fast else 200,
            c_uct=c_uct, seed=seed,
        )
        ratios = [
            orderer.order(q)[1] / dp for q, dp in zip(queries, dp_costs)
        ]
        ablation.add_row(c_uct, float(np.mean(ratios)))
    tables.append(ablation)
    return tables


# ----------------------------------------------------------------------
# E8 — end-to-end optimizer
# ----------------------------------------------------------------------
@register_experiment(
    "E8",
    "End-to-end learned optimizer (NEO-lite) on executed work",
    "NEO-lite's executed work approaches the true-cardinality optimum and "
    "beats the misestimating analytic optimizer on correlated schemas",
)
def e8_end_to_end(seed=0, fast=False):
    """Experiment e8_end_to_end (see the register_experiment metadata above)."""
    from repro.ai4db.optimization.end_to_end import NeoLiteOptimizer
    from repro.engine import datagen
    from repro.engine.database import Database
    from repro.engine.optimizer.join_enum import dp_left_deep
    from repro.engine.optimizer.cardinality import TrueCardinalityEstimator
    from repro.engine.executor import count_join_rows

    db = Database(executor_mode=_executor_mode())
    names, edges = datagen.make_join_graph_schema(
        db.catalog, "clique", n_tables=5,
        rows_per_table=400 if fast else 600, seed=seed + 3, prefix="n",
        correlated=True,
    )
    workload = datagen.join_graph_workload(
        names, edges, n_queries=12 if fast else 18, seed=seed + 4,
        min_tables=4,
    )
    train, test = workload[: len(workload) // 2], workload[len(workload) // 2:]
    neo = NeoLiteOptimizer(db, names, epochs=60 if fast else 150,
                           seed=seed)
    neo.bootstrap(train, extra_random_orders=1 if fast else 2).train()

    oracle = TrueCardinalityEstimator(
        lambda q, ts: count_join_rows(db.catalog, q, ts),
        catalog=db.catalog,
    )
    rows = {"analytic": [], "neo": [], "oracle-dp": []}
    for q in test:
        plan = db.planner.plan(q)
        rows["analytic"].append(db.executor.execute(plan).work)
        result, __ = neo.execute(q, learn=False)
        rows["neo"].append(result.work)
        order, __cost = dp_left_deep(q, oracle, db.cost_model)
        rows["oracle-dp"].append(db.run_query_object(q, order=order).work)
    table = ResultTable(
        "E8: mean executed work on held-out queries",
        ["optimizer", "mean_work", "vs_oracle"],
    )
    oracle_mean = float(np.mean(rows["oracle-dp"]))
    for name in ("analytic", "neo", "oracle-dp"):
        mean = float(np.mean(rows[name]))
        table.add_row(name, mean, mean / oracle_mean)

    # Pipeline phase split: replay the held-out workload cold vs. warm
    # through the staged pipeline. The warm pass hits the plan cache
    # (keyed on query signature + catalog epoch), so its planning phase
    # collapses while execution work stays identical.
    split = ResultTable(
        "E8b: pipeline planning-vs-execution split (plan cache cold/warm)",
        ["pass", "planning_s", "execution_s", "cache_hits", "cache_misses",
         "total_work"],
    )
    db.pipeline.invalidate()
    for phase in ("cold", "warm"):
        db.pipeline.reset_stats()
        work = sum(db.run_query_object(q).work for q in test)
        s = db.pipeline.stats()
        split.add_row(phase, s["planning_seconds"], s["execution_seconds"],
                      s["plan_cache"]["hits"], s["plan_cache"]["misses"],
                      work)
    return [table, split]


# ----------------------------------------------------------------------
# E9 — learned index
# ----------------------------------------------------------------------
@register_experiment(
    "E9",
    "Learned indexes vs. B+Tree / binary search",
    "learned indexes are 10-1000x smaller than the B+Tree at comparable "
    "or better probe cost; ALEX-lite additionally supports inserts",
)
def e9_learned_index(seed=0, fast=False):
    """Experiment e9_learned_index (see the register_experiment metadata above)."""
    from repro.ai4db.design.learned_index import (
        ALEXLiteIndex,
        BinarySearchIndex,
        PGMIndex,
        RMIIndex,
        evaluate_index,
    )
    from repro.engine.indexes import BPlusTree

    rng = ensure_rng(seed)
    n_keys = 20000 if fast else 100000
    distributions = {
        "uniform": np.unique(rng.uniform(0, 1e9, n_keys)),
        "lognormal": np.unique(rng.lognormal(10, 1.5, n_keys)),
    }
    tables = []
    for dist_name, keys in distributions.items():
        probe = keys[rng.choice(len(keys), 2000, replace=False)]
        gaps = keys[:-1] + np.diff(keys) / 2
        absent = gaps[rng.choice(len(gaps), 2000, replace=False)]
        table = ResultTable(
            "E9: probe cost and size, %s keys (n=%d)" % (dist_name, len(keys)),
            ["index", "mean_comparisons", "max_comparisons", "size_bytes",
             "hit_accuracy"],
        )
        indexes = [
            BinarySearchIndex(keys),
            RMIIndex(keys, n_models=max(64, len(keys) // 200)),
            PGMIndex(keys, epsilon=32),
            ALEXLiteIndex(keys),
        ]
        for idx in indexes:
            m = evaluate_index(idx, probe, absent)
            table.add_row(idx.name, m["mean_hit_comparisons"],
                          m["max_hit_comparisons"], m["size_bytes"],
                          m["hit_accuracy"])
        btree = BPlusTree.bulk_load(
            [(float(k), i) for i, k in enumerate(keys)]
        )
        # B+Tree probe cost: height * log2(order) comparisons per level.
        btree_comps = btree.height * int(np.ceil(np.log2(btree.order)))
        table.add_row("b+tree", float(btree_comps), btree_comps,
                      btree.size_bytes(), 1.0)
        tables.append(table)

    # Ablation: RMI second-stage model count.
    ablation = ResultTable(
        "E9b: RMI size/speed trade (lognormal keys)",
        ["n_models", "mean_comparisons", "size_bytes", "max_error"],
    )
    keys = distributions["lognormal"]
    probe = keys[rng.choice(len(keys), 1000, replace=False)]
    for n_models in (16, 64, 256, 1024):
        rmi = RMIIndex(keys, n_models=n_models)
        m = evaluate_index(rmi, probe, probe[:10])
        ablation.add_row(n_models, m["mean_hit_comparisons"], m["size_bytes"],
                         rmi.max_error())
    return tables + [ablation]


# ----------------------------------------------------------------------
# E10 — learned KV design
# ----------------------------------------------------------------------
@register_experiment(
    "E10",
    "KV-store design continuum search (data-structure alchemy)",
    "the searched design beats every fixed classic design on each "
    "workload mix; the best fixed design changes with the mix",
)
def e10_learned_kv(seed=0, fast=False):
    """Experiment e10_learned_kv (see the register_experiment metadata above)."""
    from repro.ai4db.design.learned_kv import (
        DesignContinuumSearch,
        KVCostModel,
        KVWorkload,
        classic_designs,
    )

    workloads = [
        KVWorkload("read-heavy", 0.85, 0.10, 0.05),
        KVWorkload("write-heavy", 0.15, 0.80, 0.05),
        KVWorkload("scan-heavy", 0.25, 0.15, 0.60),
        KVWorkload("balanced", 0.45, 0.45, 0.10),
    ]
    cost_model = KVCostModel()
    search = DesignContinuumSearch(cost_model)
    fixed = classic_designs()
    table = ResultTable(
        "E10: workload cost (I/O units/op) per design",
        ["workload", "btree-like", "lsm-leveling", "lsm-tiering",
         "searched", "searched_vs_best_fixed"],
    )
    for wl in workloads:
        fixed_costs = {
            name: cost_model.total_cost(d, wl) for name, d in fixed.items()
        }
        best_design, cost, __ = search.search(wl)
        table.add_row(
            wl.name,
            fixed_costs["btree-like"],
            fixed_costs["lsm-leveling"],
            fixed_costs["lsm-tiering"],
            cost,
            cost / min(fixed_costs.values()),
        )
    return [table]


# ----------------------------------------------------------------------
# E11 — transaction scheduling
# ----------------------------------------------------------------------
@register_experiment(
    "E11",
    "Learned transaction scheduling vs. FIFO / cost-ordered",
    "conflict-aware scheduling lowers makespan, lock waits, and aborts on "
    "hotspot workloads",
)
def e11_txn_scheduling(seed=0, fast=False):
    """Experiment e11_txn_scheduling (see the register_experiment metadata above)."""
    from repro.ai4db.design.txn_mgmt import (
        ConflictClassifier,
        evaluate_schedulers,
    )
    from repro.engine.txn import hotspot_workload

    n_txns = 120 if fast else 300
    train = hotspot_workload(n_txns=n_txns, hot_fraction=0.7, seed=seed + 1)
    classifier = ConflictClassifier(seed=seed).fit(
        train, n_pairs=800 if fast else 2000, seed=seed + 2
    )
    acc = classifier.accuracy(train, n_pairs=500, seed=seed + 3)
    table = ResultTable(
        "E11: hotspot batch, 4 workers (conflict-classifier acc %.2f)" % acc,
        ["scheduler", "makespan_ms", "total_wait_ms", "aborts",
         "avg_latency_ms"],
    )
    txns = hotspot_workload(n_txns=n_txns, hot_fraction=0.7, seed=seed)
    results = evaluate_schedulers(txns, n_workers=4, classifier=classifier)
    for name in ("fifo", "cost-ordered", "learned"):
        r = results[name]
        table.add_row(name, r.makespan, r.total_wait, r.aborts, r.avg_latency)
    return [table]


# ----------------------------------------------------------------------
# E12 — monitoring
# ----------------------------------------------------------------------
@register_experiment(
    "E12",
    "Learned monitoring: forecasting, perf prediction, root cause, auditing",
    "AR forecasting beats persistence; graph embedding beats plan-only "
    "under concurrency; clustering + few labels beats KPI rules; bandit "
    "auditing captures near-oracle risk",
)
def e12_monitoring(seed=0, fast=False):
    """Experiment e12_monitoring (see the register_experiment metadata above)."""
    from repro.ai4db.monitoring.forecast import (
        AutoregressiveForecaster,
        EnsembleForecaster,
        MovingAverageForecaster,
        NaiveForecaster,
        SeasonalNaiveForecaster,
        evaluate_forecasters,
    )
    from repro.ai4db.monitoring.perf_pred import (
        ConcurrentWorkloadGenerator,
        GraphEmbeddingPredictor,
        PlanOnlyPredictor,
    )
    from repro.ai4db.monitoring.root_cause import (
        ClusterDiagnoser,
        RuleBasedDiagnoser,
    )
    from repro.ai4db.monitoring.activity_monitor import (
        BanditAuditPolicy,
        RandomAuditPolicy,
        RoundRobinAuditPolicy,
        run_audit_simulation,
    )
    from repro.engine.telemetry import ACTIVITY_TYPES, arrival_trace, kpi_episodes
    from repro.ml import accuracy, mean_absolute_error

    tables = []
    # (a) forecasting
    series, __ = arrival_trace(n_hours=24 * (21 if fast else 28), seed=seed)
    fc_results = evaluate_forecasters(
        series,
        [NaiveForecaster(), SeasonalNaiveForecaster(),
         MovingAverageForecaster(), AutoregressiveForecaster(),
         EnsembleForecaster()],
    )
    t1 = ResultTable("E12a: arrival-rate forecasting (1h horizon)",
                     ["forecaster", "mae", "mape"])
    for name, metrics in fc_results.items():
        t1.add_row(name, metrics["mae"], metrics["mape"])
    tables.append(t1)

    # (b) concurrent performance prediction
    gen = ConcurrentWorkloadGenerator(seed=seed + 1, memory_budget=2.0)
    data = gen.generate_dataset(n_mixes=60 if fast else 140)
    split = int(len(data) * 0.8)
    plan_only = PlanOnlyPredictor(epochs=60 if fast else 120, seed=seed)
    plan_only.fit(data[:split])
    graph = GraphEmbeddingPredictor(epochs=80 if fast else 200, seed=seed)
    graph.fit(data[:split])
    t2 = ResultTable("E12b: concurrent-query latency prediction",
                     ["predictor", "mae"])
    for model in (plan_only, graph):
        errs = [
            mean_absolute_error(y, model.predict(g, f))
            for g, f, y in data[split:]
        ]
        t2.add_row(model.name, float(np.mean(errs)))
    tables.append(t2)

    # (c) root-cause diagnosis
    X, labels = kpi_episodes(n_episodes=150 if fast else 300, seed=seed + 2)
    split = int(len(X) * 0.66)
    rules = RuleBasedDiagnoser()
    cluster = ClusterDiagnoser(seed=seed).fit(
        X[:split], lambda i: labels[i]
    )
    t3 = ResultTable("E12c: root-cause diagnosis accuracy",
                     ["diagnoser", "accuracy", "dba_labels_used"])
    y_true = np.array(labels[split:], dtype=object)
    t3.add_row("kpi-rules",
               accuracy(y_true, np.array(rules.diagnose_batch(X[split:]),
                                         dtype=object)), 0)
    t3.add_row("cluster+label",
               accuracy(y_true, np.array(cluster.diagnose_batch(X[split:]),
                                         dtype=object)),
               cluster.labels_used_)
    tables.append(t3)

    # (d) bandit activity auditing
    means = np.array([m for __, m in ACTIVITY_TYPES])
    n_steps = 600 if fast else 2000
    t4 = ResultTable("E12d: audit-budget risk capture (%d audits)" % n_steps,
                     ["policy", "risk_captured", "regret_vs_oracle"])
    for policy in (RandomAuditPolicy(seed=seed), RoundRobinAuditPolicy(),
                   BanditAuditPolicy("ucb"),
                   BanditAuditPolicy("thompson", seed=seed)):
        r = run_audit_simulation(policy, means, n_steps=n_steps, seed=seed + 3)
        t4.add_row(policy.name, r["captured"], r["regret"])
    tables.append(t4)
    return tables


# ----------------------------------------------------------------------
# E13 — security
# ----------------------------------------------------------------------
@register_experiment(
    "E13",
    "Learned security: injection detection, sensitive discovery, access "
    "control",
    "learned detectors keep precision while recovering the recall rules "
    "lose on obfuscated/neutral-named/context-dependent cases",
)
def e13_security(seed=0, fast=False):
    """Experiment e13_security (see the register_experiment metadata above)."""
    from repro.ai4db.security.sql_injection import (
        InjectionCorpusGenerator,
        LearnedInjectionDetector,
        SignatureRuleDetector,
        evaluate_detector,
    )
    from repro.ai4db.security.discovery import (
        LearnedSensitiveDiscovery,
        RegexRuleDiscovery,
        SensitiveColumnGenerator,
        discovery_f1,
    )
    from repro.ai4db.security.access_control import (
        AccessRequestGenerator,
        LearnedAccessController,
        StaticACLBaseline,
        false_permit_rate,
    )
    from repro.ml import accuracy

    tables = []
    # (a) SQL injection
    gen = InjectionCorpusGenerator(seed=seed)
    train_x, train_y, __ = gen.generate(300 if fast else 600,
                                        150 if fast else 300)
    test_x, test_y, test_f = gen.generate(200 if fast else 400,
                                          100 if fast else 200)
    t1 = ResultTable("E13a: SQL-injection detection",
                     ["detector", "precision", "recall", "f1",
                      "obfuscated_recall"])
    detectors = [
        SignatureRuleDetector(),
        LearnedInjectionDetector("tree", seed=seed).fit(train_x, train_y),
        LearnedInjectionDetector("logistic", seed=seed).fit(train_x, train_y),
    ]
    for det in detectors:
        r = evaluate_detector(det, test_x, test_y, test_f)
        obf = [v for k, v in r["family_recall"].items() if k.endswith("+obf")]
        t1.add_row(det.name, r["precision"], r["recall"], r["f1"],
                   float(np.mean(obf)) if obf else 0.0)
    tables.append(t1)

    # (b) sensitive-data discovery
    sgen = SensitiveColumnGenerator(seed=seed)
    n1, v1, l1, __ = sgen.generate(80 if fast else 150)
    n2, v2, l2, __ = sgen.generate(60 if fast else 100)
    t2 = ResultTable("E13b: sensitive-column discovery",
                     ["method", "precision", "recall", "f1"])
    p, r, f1 = discovery_f1(RegexRuleDiscovery(), n2, v2, l2)
    t2.add_row("name-rules", p, r, f1)
    learned = LearnedSensitiveDiscovery(seed=seed).fit(n1, v1, l1)
    p, r, f1 = discovery_f1(learned, n2, v2, l2)
    t2.add_row("learned", p, r, f1)
    tables.append(t2)

    # (c) access control
    agen = AccessRequestGenerator(seed=seed)
    req_tr, y_tr = agen.generate(800 if fast else 2000)
    req_te, y_te = agen.generate(400 if fast else 800)
    t3 = ResultTable("E13c: purpose-based access control",
                     ["method", "accuracy", "false_permit_rate"])
    for method in (StaticACLBaseline(), LearnedAccessController(seed=seed)):
        method.fit(req_tr, y_tr)
        preds = method.predict(req_te)
        t3.add_row(method.name, accuracy(y_te, preds),
                   false_permit_rate(y_te, preds))
    tables.append(t3)
    return tables


# ----------------------------------------------------------------------
# E14 — governance
# ----------------------------------------------------------------------
@register_experiment(
    "E14",
    "Data governance: discovery EKG, ActiveClean, truth inference",
    "the EKG recovers true FK joins; ActiveClean reaches target accuracy "
    "with far fewer cleaned records; Dawid-Skene beats majority vote at "
    "every redundancy",
)
def e14_governance(seed=0, fast=False):
    """Experiment e14_governance (see the register_experiment metadata above)."""
    from repro.db4ai.governance.cleaning import (
        ActiveCleanSession,
        CorruptedDataset,
        RandomCleanSession,
        cleaning_curve,
    )
    from repro.db4ai.governance.discovery import EnterpriseKnowledgeGraph
    from repro.db4ai.governance.labeling import (
        DawidSkene,
        SimulatedCrowd,
        majority_vote,
    )
    from repro.engine import datagen
    from repro.engine.catalog import Catalog

    tables = []
    # (a) discovery: does the EKG find the star schema's FK joins?
    catalog = Catalog()
    datagen.make_star_schema(
        catalog, n_customers=500, n_products=120, n_dates=90,
        n_sales=2000 if fast else 5000, seed=seed,
    )
    ekg = EnterpriseKnowledgeGraph().build(catalog)
    truth = {
        ("sales.s_customer", "customer.c_id"),
        ("sales.s_product", "product.p_id"),
        ("sales.s_date", "dates.d_id"),
    }
    t1 = ResultTable("E14a: EKG joinable-column discovery (top-1 per FK)",
                     ["fk_column", "top_match", "overlap", "correct"])
    for fk, key in sorted(truth):
        table_name, col = fk.split(".")
        matches = ekg.joinable_columns(table_name, col)
        top, overlap = (matches[0] if matches else ("-", 0.0))
        t1.add_row(fk, top, overlap, top == key)
    tables.append(t1)

    # (b) ActiveClean
    dataset = CorruptedDataset(seed=seed)
    n_batches = 5 if fast else 10
    counts, acc_active = cleaning_curve(
        ActiveCleanSession, dataset, n_batches=n_batches, seed=seed
    )
    __, acc_random = cleaning_curve(
        RandomCleanSession, dataset, n_batches=n_batches, seed=seed
    )
    __, acc_residual = cleaning_curve(
        ActiveCleanSession, dataset, n_batches=n_batches, seed=seed,
        weighting="residual",
    )
    t2 = ResultTable(
        "E14b: model accuracy vs. cleaned records (+ weighting ablation)",
        ["records_cleaned", "activeclean", "residual_only", "random"],
    )
    for c, a, l, r in zip(counts, acc_active, acc_residual, acc_random):
        t2.add_row(int(c), float(a), float(l), float(r))
    tables.append(t2)

    # (c) truth inference
    crowd = SimulatedCrowd(seed=seed)
    rng = ensure_rng(seed + 1)
    truths = rng.integers(0, 3, 200 if fast else 500)
    t3 = ResultTable("E14c: truth-inference accuracy vs. redundancy",
                     ["votes_per_item", "majority_vote", "dawid_skene"])
    for redundancy in (3, 5, 7):
        votes = crowd.collect(truths, redundancy=redundancy)
        mv = majority_vote(votes, 3, seed=seed)
        ds = DawidSkene(3).fit(votes, crowd.n_workers)
        t3.add_row(
            redundancy,
            float(np.mean(mv == truths)),
            float(np.mean(ds.predict() == truths)),
        )
    tables.append(t3)
    return tables


# ----------------------------------------------------------------------
# E15 — training acceleration
# ----------------------------------------------------------------------
@register_experiment(
    "E15",
    "Training optimization: materialization, parallel search, offload",
    "materialization cuts feature-selection compute several-fold; task "
    "parallelism beats BSP under stragglers; halving finds the best "
    "config under budget; accelerator offload wins past the crossover",
)
def e15_training(seed=0, fast=False):
    """Experiment e15_training (see the register_experiment metadata above)."""
    from repro.db4ai.training.features import (
        FeatureComputeEngine,
        default_feature_library,
        greedy_forward_selection,
        make_regression_data,
    )
    from repro.db4ai.training.model_select import (
        grid_under_budget,
        make_search_space,
        simulate_parallel_search,
        successive_halving,
    )
    from repro.db4ai.training.hardware import best_device, training_time

    tables = []
    # (a) feature-selection materialization
    cols, y = make_regression_data(n_rows=1500 if fast else 3000, seed=seed)
    specs = default_feature_library()
    t1 = ResultTable("E15a: feature selection compute (greedy, k=4)",
                     ["policy", "compute_cost", "evaluations", "final_r2"])
    for materialize in (False, True):
        engine = FeatureComputeEngine(cols, y, specs, materialize=materialize)
        __, trajectory = greedy_forward_selection(engine, k=4)
        t1.add_row("materialize" if materialize else "recompute",
                   engine.compute_cost, engine.evaluations,
                   trajectory[-1] if trajectory else 0.0)
    tables.append(t1)

    # (b) parallel model search
    jobs = make_search_space(32 if fast else 64, seed=seed)
    t2 = ResultTable("E15b: model-search throughput, 8 workers, stragglers",
                     ["strategy", "makespan_s", "configs_per_hour",
                      "worker_utilization"])
    for strategy in ("task", "bsp", "ps"):
        r = simulate_parallel_search(jobs, n_workers=8, strategy=strategy,
                                     seed=seed + 1)
        t2.add_row(strategy, r["makespan"], r["throughput"], r["worker_busy"])
    tables.append(t2)

    # (c) budgeted search
    budget = 600 if fast else 1000
    t3 = ResultTable("E15c: best config quality under a %ds budget" % budget,
                     ["method", "best_quality", "configs_touched"])
    h = successive_halving(jobs, budget)
    g = grid_under_budget(jobs, budget)
    t3.add_row("grid-until-budget", g["best_quality"], g["configs_touched"])
    t3.add_row("successive-halving", h["best_quality"], h["configs_touched"])
    tables.append(t3)

    # (d) hardware offload crossover
    t4 = ResultTable("E15d: training time by device/layout (seconds)",
                     ["n_rows", "cpu_row", "cpu_col", "fpga_col", "gpu_col",
                      "best"])
    for n_rows in (10_000, 1_000_000, 100_000_000):
        cpu_row = training_time("cpu", n_rows, 6, layout="row")["total"]
        cpu_col = training_time("cpu", n_rows, 6, layout="column")["total"]
        fpga = training_time("fpga", n_rows, 6, layout="column")["total"]
        gpu = training_time("gpu", n_rows, 6, layout="column")["total"]
        best, __ = best_device(n_rows)
        t4.add_row(n_rows, cpu_row, cpu_col, fpga, gpu, best)
    tables.append(t4)
    return tables


# ----------------------------------------------------------------------
# E16 — inference + declarative
# ----------------------------------------------------------------------
@register_experiment(
    "E16",
    "In-database inference: operators, pushdown, cascades, AISQL",
    "vectorized operators beat per-row UDFs by orders of magnitude; "
    "pushdown + cascade cut expensive-model invocations with near-perfect "
    "answer quality",
)
def e16_inference(seed=0, fast=False):
    """Experiment e16_inference (see the register_experiment metadata above)."""
    from repro.db4ai.inference.operators import (
        udf_per_row_inference,
        vectorized_inference,
    )
    from repro.db4ai.inference.pushdown import (
        CascadeStrategy,
        HybridQuery,
        NaiveStrategy,
        PushdownStrategy,
        make_patients_database,
        run_hybrid_query,
        train_stay_models,
    )
    from repro.engine.query import Predicate
    from repro.ml import MLPRegressor

    tables = []
    # (a) operator support: UDF vs vectorized
    rng = ensure_rng(seed)
    model = MLPRegressor(hidden=(32,), epochs=20, seed=seed)
    model.fit(rng.random((300, 5)), rng.random(300))
    X = rng.random((2000 if fast else 10000, 5))
    __, t_udf = udf_per_row_inference(model, X)
    __, t_vec = vectorized_inference(model, X)
    t1 = ResultTable("E16a: inference operator execution (%d rows)" % len(X),
                     ["operator", "seconds", "speedup_vs_udf"])
    t1.add_row("udf-per-row", t_udf, 1.0)
    t1.add_row("vectorized", t_vec, t_udf / max(t_vec, 1e-9))
    tables.append(t1)

    # (b) the paper's hybrid "patients staying > 3 days" query
    db, features = make_patients_database(
        6000 if fast else 20000, seed=seed
    )
    models = train_stay_models(db, features,
                               n_train=1500 if fast else 4000, seed=seed)
    hybrid = HybridQuery(
        "patients", [Predicate("patients", "age", ">", 60)], features,
        threshold=5.0,
    )
    results = run_hybrid_query(
        db, models, hybrid,
        strategies=[NaiveStrategy(), PushdownStrategy(),
                    CascadeStrategy(low=0.1, high=0.9)],
    )
    t2 = ResultTable(
        'E16b: hybrid query "patients with predicted stay > 5 days, age > 60"',
        ["strategy", "expensive_model_rows", "seconds", "precision",
         "recall"],
    )
    for row in results:
        t2.add_row(row["strategy"], row["expensive_rows"], row["seconds"],
                   row["precision"], row["recall"])
    tables.append(t2)

    # (c) cascade threshold ablation
    t3 = ResultTable("E16c: cascade threshold sweep (ablation)",
                     ["low", "high", "expensive_model_rows", "precision",
                      "recall"])
    for low, high in ((0.02, 0.98), (0.1, 0.9), (0.3, 0.7)):
        r = run_hybrid_query(
            db, models, hybrid, strategies=[CascadeStrategy(low, high)]
        )[0]
        t3.add_row(low, high, r["expensive_rows"], r["precision"],
                   r["recall"])
    tables.append(t3)

    # (d) declarative AISQL end to end on the same database.
    from repro.db4ai.declarative import AISQLExtension

    ext = AISQLExtension().install(db)
    status = db.execute(
        "CREATE MODEL stay_aisql KIND regressor ON patients TARGET true_stay "
        "FEATURES (age, severity, comorbidities, emergency, ward) "
        "WITH (epochs = %d)" % (40 if fast else 100)
    )
    metrics = db.execute("EVALUATE stay_aisql ON patients")
    pred = db.execute("PREDICT stay_aisql ON patients WHERE age > 80 LIMIT 100")
    t4 = ResultTable(
        "E16d: AISQL end to end (train/evaluate/predict in the database)",
        ["statement", "result"],
    )
    t4.add_row("CREATE MODEL ... FEATURES (5 cols)", status)
    t4.add_row("EVALUATE stay_aisql ON patients",
               "r2 = %.4f" % metrics["r2"])
    t4.add_row("PREDICT ... WHERE age > 80 LIMIT 100",
               "%d rows, mean predicted stay %.2f days"
               % (len(pred.rows),
                  float(np.mean([r[-1] for r in pred.rows]))))
    tables.append(t4)
    return tables


# ----------------------------------------------------------------------
# E17 — the paper's §2.3 challenges, made concrete
# ----------------------------------------------------------------------
@register_experiment(
    "E17",
    "Challenges (paper §2.3): validation, convergence, drift, fault "
    "tolerance",
    "the validation gate only deploys a learned estimator when it wins; "
    "the convergence guard rescues a stalled learner; drift detection "
    "flags updated columns; checkpointed training resumes bit-exactly",
)
def e17_challenges(seed=0, fast=False):
    """Experiment e17_challenges (see the register_experiment metadata above)."""
    from repro.ai4db.optimization.cardinality import (
        LearnedCardinalityEstimator,
        QueryFeaturizer,
        generate_training_queries,
    )
    from repro.ai4db.validation import (
        ConvergenceGuard,
        DriftDetector,
        ValidatedEstimator,
    )
    from repro.ai4db.config.knob_tuning import (
        GridSearchTuner,
        TuningResult,
    )
    from repro.db4ai.training.fault_tolerance import (
        CheckpointableMLPTrainer,
        CheckpointedTrainer,
        SimulatedCrash,
    )
    from repro.engine import datagen
    from repro.engine.catalog import Catalog
    from repro.engine.knobs import KnobResponseSimulator, standard_workloads
    from repro.engine.optimizer.cardinality import TraditionalEstimator

    tables = []
    # (a) model validation: gate a good and a deliberately broken model.
    catalog = Catalog()
    n_rows = 2000 if fast else 6000
    datagen.make_correlated_table(catalog, "facts", n_rows=n_rows,
                                  n_values=40, correlation=0.9, seed=seed)
    queries, cards = generate_training_queries(
        catalog, "facts", ["a", "b", "c"],
        n_queries=200 if fast else 400, n_values=40, seed=seed + 1,
    )
    split = int(len(queries) * 0.75)
    featurizer = QueryFeaturizer(catalog, ["facts"], [])
    good = LearnedCardinalityEstimator(
        featurizer, epochs=50 if fast else 120, seed=seed
    ).fit(queries[:split], cards[:split])
    broken = LearnedCardinalityEstimator(
        featurizer, epochs=1, seed=seed
    ).fit(queries[:4], cards[:4])  # undertrained on 4 samples
    fallback = TraditionalEstimator(catalog)
    t1 = ResultTable(
        "E17a: validation gate (deploy only when the model wins)",
        ["candidate", "learned_q95", "fallback_q95", "deployed"],
    )
    for name, model in (("well-trained", good), ("undertrained", broken)):
        gate = ValidatedEstimator(model, fallback)
        report = gate.validate(queries[split:], cards[split:])
        t1.add_row(name, report["learned_q95"], report["fallback_q95"],
                   report["deployed"])
    tables.append(t1)

    # (b) convergence guard: a stalled learner vs. a healthy baseline.
    sim = KnobResponseSimulator(seed=7, noise=0.0)
    workload = standard_workloads()[0]

    class _StuckTuner:
        """A learner that never leaves the default config (diverged)."""

        name = "stuck-learner"

        def tune(self, simulator, wl, budget):
            x = simulator.default_vector()
            history = [simulator.throughput(x, wl) for __ in range(budget)]
            return TuningResult(x, max(history), history)

    budget = 40 if fast else 80
    stuck = _StuckTuner().tune(sim, workload, budget)
    guard = ConvergenceGuard(_StuckTuner(), GridSearchTuner(), patience=10)
    guarded = guard.tune(sim, workload, budget)
    t2 = ResultTable(
        "E17b: convergence guard on a diverged tuner",
        ["policy", "best_tps", "fell_back"],
    )
    t2.add_row("stuck learner alone", stuck.best_throughput, False)
    t2.add_row("guard(stuck, grid)", guarded.best_throughput,
               bool(guard.fell_back_))
    tables.append(t2)

    # (c) drift detection across data updates.
    detector = DriftDetector(threshold=0.5).fit(catalog, ["facts"])
    before = len(detector.check(catalog))
    table = catalog.table("facts")
    table.replace_column("a", table.column_array("a") + 200)  # simulated update
    after = detector.check(catalog)
    t3 = ResultTable(
        "E17c: drift detection across a data update",
        ["stage", "drifted_columns", "max_shift"],
    )
    t3.add_row("before update", before, 0.0)
    t3.add_row("after shifting facts.a", len(after),
               max(after.values()) if after else 0.0)
    tables.append(t3)

    # (d) fault-tolerant training: crash vs. no crash, identical models.
    rng = ensure_rng(seed)
    X = rng.normal(size=(300, 3))
    y = X[:, 0] - 0.5 * X[:, 1]
    steps = 120 if fast else 240
    clean = CheckpointableMLPTrainer(X, y, seed=seed)
    CheckpointedTrainer(clean, checkpoint_every=40).train(steps)
    crashed = CheckpointableMLPTrainer(X, y, seed=seed)
    harness = CheckpointedTrainer(crashed, checkpoint_every=40)
    try:
        harness.train(steps, crash_at=steps // 2 + 10)
    except SimulatedCrash:
        harness.recover_and_resume(steps)
    identical = bool(np.allclose(clean.predict(X), crashed.predict(X)))
    t4 = ResultTable(
        "E17d: checkpointed training under a mid-run crash",
        ["run", "steps", "recoveries", "model_identical_to_clean_run"],
    )
    t4.add_row("uninterrupted", steps, 0, True)
    t4.add_row("crash + resume", steps, harness.recoveries, identical)
    tables.append(t4)
    return tables
