"""Experiment harness shared by the benchmark suite and EXPERIMENTS.md.

Every experiment (E1–E16, F1 in DESIGN.md §5) registers a function that
returns one or more :class:`~repro.common.ResultTable`; the benchmark files
call into the registry, and ``python -m repro.harness <exp-id>`` runs one
from the command line.
"""

from repro.common import ResultTable
from repro.harness.registry import (
    ExperimentSpec,
    register_experiment,
    get_experiment,
    all_experiments,
    run_experiment,
)

__all__ = [
    "ResultTable",
    "ExperimentSpec",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "run_experiment",
]
