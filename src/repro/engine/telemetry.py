"""Telemetry generator: workload traces and KPI episodes with ground truth.

Substrate for the monitoring experiments (E12):

* :func:`arrival_trace` — a query-arrival time series with diurnal shape,
  weekly structure, trend and bursts (what QueryBot5000-style forecasters
  [49] consume).
* :func:`kpi_episodes` — labeled KPI snapshots of slow-query incidents,
  each generated from a root-cause archetype (what iSQUAD-style diagnosis
  [51] consumes).
* :func:`activity_stream` — a stream of database activities with hidden
  risk levels (what the bandit-based activity monitor [19] consumes).

It also hosts :class:`ExecutionTelemetry`, the per-operator batch/row/time
counters the executor fills in while running a plan.
"""

import threading

import numpy as np

from repro.common import ensure_rng


def q_error(est_rows, actual_rows):
    """The q-error of one cardinality estimate (symmetric ratio, >= 1).

    ``max(est/actual, actual/est)`` with both sides floored at one row so
    empty results and zero estimates stay finite — the standard metric of
    the learned-cardinality literature. Returns ``None`` when either side
    is unknown.
    """
    if est_rows is None or actual_rows is None:
        return None
    est = max(float(est_rows), 1.0)
    actual = max(float(actual_rows), 1.0)
    return max(est / actual, actual / est)


class ExecutionTelemetry:
    """Per-operator execution counters for one plan run.

    Attributes:
        mode: executor mode the plan ran under
            (``"vectorized"``/``"row"``/``"parallel"``).
        operators: ``{op_name: {"batches": int, "rows": int,
            "seconds": float, "morsels": int}}`` — one entry per operator
            type; ``batches`` counts operator invocations (one batch per
            invocation in this engine), ``rows`` sums output rows,
            ``seconds`` sums self-time (child operator time excluded), and
            ``morsels`` counts morsels dispatched to the worker pool (0
            outside parallel mode / below the split threshold).
        workers: ``{worker_id: {"morsels": int, "steals": int,
            "seconds": float}}`` — per-worker totals across every parallel
            operator in the run (empty unless morsels were dispatched).
        fused_ops: how many pipeline stages the executor's fusion pass
            collapsed into a single ``FusedPipelineOp`` for this run (0
            when fusion is disabled or the plan tail did not match).
        node_stats: per-plan-node cardinality records in plan preorder —
            ``[{"op", "est_rows", "actual_rows", "q_error"}]`` — attributed
            to the *original* (pre-fusion) plan's nodes. This is the
            est-vs-actual view EXPLAIN ANALYZE renders and the signal the
            optimizer's cardinality-feedback loop ingests.
        segments_total: column-storage row groups the run's scans
            considered (0 when no base-table scan ran).
        segments_pruned: of those, how many a zone map proved irrelevant
            to the pushed-down predicates — skipped without decoding.
        bytes_decoded: modeled encoded bytes of the segments the scans
            actually decoded (late materialization counts only the
            columns read, only for surviving segments).
        catalog_versions: ``{table: version}`` of the catalog state the
            run read — the live catalog's current versions, or the pinned
            vector when the run executed against a
            :class:`~repro.engine.catalog.CatalogSnapshot`.
        total_work: the run's exact deterministic work measurement (the
            same number as ``ExecutionResult.work``) — the currency the
            serving layer's admission control settles quota charges in.
        total_seconds: wall-clock time for the whole plan.
    """

    __slots__ = ("mode", "operators", "workers", "fused_ops",
                 "node_stats", "segments_total", "segments_pruned",
                 "bytes_decoded", "catalog_versions", "total_work",
                 "total_seconds")

    def __init__(self, mode):
        self.mode = mode
        self.operators = {}
        self.workers = {}
        self.fused_ops = 0
        self.node_stats = []
        self.segments_total = 0
        self.segments_pruned = 0
        self.bytes_decoded = 0
        self.catalog_versions = {}
        self.total_work = 0.0
        self.total_seconds = 0.0

    def record(self, op_name, rows, seconds):
        """Accumulate one operator invocation."""
        entry = self.operators.setdefault(
            op_name, {"batches": 0, "rows": 0, "seconds": 0.0, "morsels": 0}
        )
        entry["batches"] += 1
        entry["rows"] += rows
        entry["seconds"] += seconds

    def record_parallel(self, op_name, n_morsels, worker_stats):
        """Accumulate one morsel-parallel dispatch for ``op_name``.

        Args:
            op_name: operator the morsels belong to.
            n_morsels: how many morsels were dispatched.
            worker_stats: iterable of
                :class:`repro.engine.morsels.WorkerStats`.
        """
        entry = self.operators.setdefault(
            op_name, {"batches": 0, "rows": 0, "seconds": 0.0, "morsels": 0}
        )
        entry["morsels"] += n_morsels
        for stats in worker_stats:
            w = self.workers.setdefault(
                stats.worker_id, {"morsels": 0, "steals": 0, "seconds": 0.0}
            )
            w["morsels"] += stats.morsels
            w["steals"] += stats.steals
            w["seconds"] += stats.seconds

    def record_segments(self, total, pruned, bytes_decoded):
        """Accumulate one scan's segment counters (pruning telemetry)."""
        self.segments_total += int(total)
        self.segments_pruned += int(pruned)
        self.bytes_decoded += int(bytes_decoded)

    def set_node_stats(self, stats):
        """Attach the per-node est-vs-actual records (plan preorder)."""
        self.node_stats = list(stats)

    def actual_rows_by_operator(self):
        """``{op_name: total actual output rows}`` over the node stats."""
        totals = {}
        for entry in self.node_stats:
            if entry["actual_rows"] is None:
                continue
            op = entry["op"]
            totals[op] = totals.get(op, 0) + entry["actual_rows"]
        return totals

    def max_q_error(self):
        """Worst per-node q-error of the run (``None`` if unmeasured)."""
        errors = [e["q_error"] for e in self.node_stats
                  if e["q_error"] is not None]
        return max(errors) if errors else None

    def brief(self):
        """A one-line dict digest for logs that keep one row per query.

        The session audit log stores this (mode, work, wall time, fused
        ops, worst q-error) instead of the full :meth:`summary`, which
        carries per-operator and per-node detail too wide for a log row.
        """
        return {
            "mode": self.mode,
            "total_work": self.total_work,
            "total_seconds": self.total_seconds,
            "fused_ops": self.fused_ops,
            "max_q_error": self.max_q_error(),
        }

    def summary(self):
        """A plain-dict snapshot (JSON-friendly)."""
        return {
            "mode": self.mode,
            "total_seconds": self.total_seconds,
            "fused_ops": self.fused_ops,
            "segments_total": self.segments_total,
            "segments_pruned": self.segments_pruned,
            "bytes_decoded": self.bytes_decoded,
            "catalog_versions": dict(self.catalog_versions),
            "total_work": self.total_work,
            "operators": {
                k: dict(v) for k, v in sorted(self.operators.items())
            },
            "workers": {
                k: dict(v) for k, v in sorted(self.workers.items())
            },
            "node_stats": [dict(e) for e in self.node_stats],
        }

    def __repr__(self):
        return "ExecutionTelemetry(mode=%r, operators=%d, total=%.6fs)" % (
            self.mode, len(self.operators), self.total_seconds,
        )


#: Pipeline stages counted as "planning" (everything before execution).
PLANNING_STAGES = ("parse", "lower", "rewrite", "plan")


class PipelineTelemetry:
    """Per-stage timings for one trip through the query pipeline.

    Extends the per-operator :class:`ExecutionTelemetry` with the
    stage-level view: how long each named pipeline stage (parse, lower,
    rewrite, plan, execute) took, whether the plan came from the plan
    cache, and — via :attr:`execution` — the operator counters of the run
    itself.

    Attributes:
        stages: ``{stage_name: seconds}`` for the stages that actually ran.
        cache_hit: ``True``/``False`` once the plan stage ran (``None`` for
            statements that never reach planning, e.g. DDL).
        cache_outcome: what the plan-cache lookup concluded — ``"hit"``,
            ``"miss"`` (never cached), or ``"invalidated"`` (a cached
            plan's version token went stale); ``None`` before planning.
        invalidation_cause: for ``"invalidated"`` only — which token
            component moved: ``"table:<name>"`` (that table's catalog
            version), ``"feedback:<name>"`` (cardinality drift on that
            table), or ``"token"`` (scope/shape change). ``None``
            otherwise.
        plan_versions: the catalog half of the token the plan stage keyed
            on — ``((table, version), ...)`` restricted to the query's
            tables (``None`` before planning).
        execution: the run's :class:`ExecutionTelemetry`, or ``None`` when
            nothing was executed (EXPLAIN, DDL).
        arm: the hint-set arm the plan selector chose for this run
            (``None`` under the default single-path cost selector, which
            never fans out candidates).
        arm_est_cost: the chosen candidate's cost estimate — the number
            the selector compared and the online trainer settles wins and
            strikes against (``None`` when no selection ran).
        ues_bound: the UES arm's pessimistic cost guarantee for this
            query, when a UES candidate was generated — the regret
            guard's anchor (``None`` otherwise).
        selection_features: the contextual feature vector the bandit
            selected (and later trains) on; ``None`` when no selection
            ran.
    """

    __slots__ = ("stages", "cache_hit", "cache_outcome",
                 "invalidation_cause", "plan_versions", "execution",
                 "arm", "arm_est_cost", "ues_bound", "selection_features")

    def __init__(self):
        self.stages = {}
        self.cache_hit = None
        self.cache_outcome = None
        self.invalidation_cause = None
        self.plan_versions = None
        self.execution = None
        self.arm = None
        self.arm_est_cost = None
        self.ues_bound = None
        self.selection_features = None

    def record_stage(self, stage, seconds):
        """Accumulate wall time for one pipeline stage."""
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    @property
    def planning_seconds(self):
        """Total time spent before execution (parse + lower + rewrite + plan)."""
        return sum(self.stages.get(s, 0.0) for s in PLANNING_STAGES)

    @property
    def execution_seconds(self):
        """Time spent in the execute stage."""
        return self.stages.get("execute", 0.0)

    def summary(self):
        """A plain-dict snapshot (JSON-friendly)."""
        return {
            "stages": dict(self.stages),
            "planning_seconds": self.planning_seconds,
            "execution_seconds": self.execution_seconds,
            "cache_hit": self.cache_hit,
            "cache_outcome": self.cache_outcome,
            "invalidation_cause": self.invalidation_cause,
            "plan_versions": None if self.plan_versions is None
            else [list(p) for p in self.plan_versions],
            "arm": self.arm,
            "arm_est_cost": self.arm_est_cost,
            "ues_bound": self.ues_bound,
            "execution": None if self.execution is None
            else self.execution.summary(),
        }

    def __repr__(self):
        return "PipelineTelemetry(planning=%.6fs, execution=%.6fs, hit=%r)" % (
            self.planning_seconds, self.execution_seconds, self.cache_hit,
        )


def percentile(values, q):
    """The ``q``-quantile (0..1) of ``values`` by nearest-rank on a copy.

    Deterministic and dependency-free — the latency-percentile helper the
    serving rollups and the server benchmarks share. Returns 0.0 for an
    empty input.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


class _RollupBucket:
    """One aggregation cell of a :class:`ServingRollup` (tenant or session)."""

    __slots__ = ("queries", "outcomes", "total_work", "total_seconds",
                 "queue_seconds", "latencies")

    def __init__(self):
        self.queries = 0
        self.outcomes = {}
        self.total_work = 0.0
        self.total_seconds = 0.0
        self.queue_seconds = 0.0
        self.latencies = []

    def observe(self, seconds, work, outcome, queue_wait):
        self.queries += 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        self.total_work += work
        self.total_seconds += seconds
        self.queue_seconds += queue_wait
        self.latencies.append(seconds)

    def summary(self):
        return {
            "queries": self.queries,
            "outcomes": dict(sorted(self.outcomes.items())),
            "total_work": self.total_work,
            "total_seconds": self.total_seconds,
            "queue_seconds": self.queue_seconds,
            "p50_seconds": percentile(self.latencies, 0.50),
            "p95_seconds": percentile(self.latencies, 0.95),
            "p99_seconds": percentile(self.latencies, 0.99),
        }


class ServingRollup:
    """Per-tenant and per-session aggregation of served queries.

    The serving layer (:class:`~repro.engine.server.QueryServer`) records
    every statement it completes here: which tenant and session issued
    it, how long it took end to end (admission wait included), how much
    deterministic ``work`` it charged, and what the admission verdict was
    (``"admitted"`` / ``"queued"`` / ``"shed"``). Thread-safe — sessions
    on many threads observe into one shared rollup.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._tenants = {}
        self._sessions = {}

    def observe(self, tenant, session_id, seconds, work, outcome,
                queue_wait=0.0):
        """Record one completed (or shed) statement."""
        with self._lock:
            self._tenants.setdefault(tenant, _RollupBucket()).observe(
                seconds, work, outcome, queue_wait
            )
            self._sessions.setdefault(session_id, _RollupBucket()).observe(
                seconds, work, outcome, queue_wait
            )

    def tenant_work(self, tenant):
        """Total settled work recorded for one tenant (0.0 if unseen)."""
        with self._lock:
            bucket = self._tenants.get(tenant)
            return 0.0 if bucket is None else bucket.total_work

    def tenant_latencies(self, tenant):
        """A copy of one tenant's per-statement latency samples."""
        with self._lock:
            bucket = self._tenants.get(tenant)
            return [] if bucket is None else list(bucket.latencies)

    def summary(self):
        """JSON-friendly per-tenant / per-session rollup snapshot."""
        with self._lock:
            return {
                "tenants": {
                    name: bucket.summary()
                    for name, bucket in sorted(self._tenants.items())
                },
                "sessions": {
                    name: bucket.summary()
                    for name, bucket in sorted(self._sessions.items())
                },
            }

    def __repr__(self):
        with self._lock:
            return "ServingRollup(tenants=%d, sessions=%d)" % (
                len(self._tenants), len(self._sessions),
            )


#: KPI dimensions reported per incident.
KPI_NAMES = [
    "cpu_util", "mem_util", "io_read", "io_write", "lock_waits",
    "active_sessions", "buffer_hit", "tps", "slow_queries", "temp_spill",
]

#: Root-cause archetypes: name -> mean KPI vector (the hidden signature).
ROOT_CAUSES = {
    "missing_index": [0.55, 0.4, 0.95, 0.1, 0.15, 0.4, 0.3, 0.35, 0.9, 0.2],
    "lock_contention": [0.35, 0.3, 0.2, 0.3, 0.95, 0.8, 0.8, 0.25, 0.7, 0.1],
    "cpu_overload": [0.97, 0.5, 0.3, 0.2, 0.3, 0.9, 0.75, 0.3, 0.6, 0.15],
    "memory_pressure": [0.5, 0.96, 0.4, 0.5, 0.25, 0.5, 0.35, 0.4, 0.55, 0.9],
    "slow_disk": [0.3, 0.35, 0.85, 0.9, 0.2, 0.45, 0.6, 0.3, 0.75, 0.4],
    "vacuum_storm": [0.6, 0.45, 0.7, 0.85, 0.4, 0.35, 0.5, 0.45, 0.5, 0.3],
}


def arrival_trace(n_hours=24 * 21, base_rate=400.0, trend_per_day=2.0,
                  burst_prob=0.02, seed=0):
    """Hourly query-arrival counts over ``n_hours``.

    Components: daily sinusoid (business-hours peak), weekly dip on
    weekends, slow linear trend, Poisson noise, and occasional bursts.

    Returns:
        ``(counts, is_burst)`` — float array of length ``n_hours`` and a
        boolean ground-truth burst indicator.
    """
    rng = ensure_rng(seed)
    hours = np.arange(n_hours)
    day_phase = 2 * np.pi * (hours % 24) / 24.0
    daily = 0.6 + 0.4 * np.sin(day_phase - np.pi / 2)
    weekday = (hours // 24) % 7
    weekly = np.where(weekday >= 5, 0.55, 1.0)
    trend = 1.0 + trend_per_day * (hours / 24.0) / 100.0
    rate = base_rate * daily * weekly * trend
    is_burst = rng.random(n_hours) < burst_prob
    rate = rate * np.where(is_burst, rng.uniform(2.0, 4.0, n_hours), 1.0)
    counts = rng.poisson(np.maximum(rate, 1.0)).astype(float)
    return counts, is_burst


def kpi_episodes(n_episodes=240, noise=0.07, seed=0, causes=None):
    """Labeled slow-query incidents drawn from the root-cause archetypes.

    Returns:
        ``(X, labels)`` — KPI matrix ``(n_episodes, len(KPI_NAMES))`` and a
        list of root-cause name strings.
    """
    rng = ensure_rng(seed)
    cause_names = sorted(causes or ROOT_CAUSES)
    X = np.zeros((n_episodes, len(KPI_NAMES)))
    labels = []
    for i in range(n_episodes):
        cause = cause_names[int(rng.integers(0, len(cause_names)))]
        mean = np.asarray(ROOT_CAUSES[cause])
        X[i] = np.clip(mean + rng.normal(0.0, noise, size=mean.shape), 0.0, 1.0)
        labels.append(cause)
    return X, labels


#: Activity types an auditor can record, with their true mean risk in [0,1].
ACTIVITY_TYPES = [
    ("select_public", 0.02),
    ("select_sensitive", 0.25),
    ("bulk_export", 0.55),
    ("create_account", 0.35),
    ("grant_privilege", 0.6),
    ("drop_table", 0.7),
    ("login_failure", 0.45),
    ("schema_change", 0.3),
]


def activity_stream(n_events=5000, seed=0):
    """A stream of (activity_type_index, realized_risk) pairs.

    Realized risk is a noisy draw around the type's true mean, clipped to
    [0, 1] — the bandit's reward when it chooses to audit that activity.

    Returns:
        ``(type_indices, risks)`` arrays plus the true means (for regret).
    """
    rng = ensure_rng(seed)
    means = np.array([m for __, m in ACTIVITY_TYPES])
    # Frequencies: mundane activities dominate the stream.
    freq = np.array([0.55, 0.12, 0.04, 0.06, 0.03, 0.02, 0.08, 0.10])
    freq = freq / freq.sum()
    types = rng.choice(len(ACTIVITY_TYPES), size=n_events, p=freq)
    risks = np.clip(rng.normal(means[types], 0.12), 0.0, 1.0)
    return types, risks, means
