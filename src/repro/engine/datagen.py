"""Synthetic data and workload generators.

These replace the TPC-H/JOB/IMDB substrates of the cited systems (see
DESIGN.md §2). The key properties the learned components exploit are
controllable here: **skew** (Zipfian value distributions), **correlation**
(between filter columns, which breaks the independence assumption), and
**join fan-out** (chain/star/clique join graphs with referential
integrity).
"""

import numpy as np

from repro.common import ensure_rng
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate
from repro.engine.storage import Table
from repro.engine.types import ColumnSchema, DataType, TableSchema

# ----------------------------------------------------------------------
# Column-level generators
# ----------------------------------------------------------------------

def zipf_integers(n, n_values, skew=1.1, seed=None):
    """``n`` integers in ``[0, n_values)`` with a Zipfian rank distribution.

    ``skew`` ~1.0 is mild, ~2.0 is heavy; skew=0 degenerates to uniform.
    """
    rng = ensure_rng(seed)
    if skew <= 0:
        return rng.integers(0, n_values, size=n)
    ranks = np.arange(1, n_values + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(n_values, size=n, p=weights)


def correlated_pair(n, n_values, correlation, seed=None):
    """Two integer columns with tunable correlation.

    With probability ``correlation`` the second value equals the first
    (``y = x``); otherwise it is uniform. ``correlation=1`` is a functional
    dependency, ``0`` is full independence — the axis the E6 cardinality
    experiment sweeps. Conjunctions like ``a < v AND b < v`` are exactly
    where the independence assumption collapses.
    """
    rng = ensure_rng(seed)
    x = rng.integers(0, n_values, size=n)
    y_dep = x
    y_rand = rng.integers(0, n_values, size=n)
    mask = rng.random(n) < correlation
    y = np.where(mask, y_dep, y_rand)
    return x, y


# ----------------------------------------------------------------------
# Schema-level generators
# ----------------------------------------------------------------------

def make_correlated_table(catalog, name="facts", n_rows=20000, n_values=100,
                          correlation=0.8, seed=0):
    """A single table with mutually correlated columns for estimation tests.

    Columns ``a``/``b``/``c`` are pairwise correlated with strength
    ``correlation`` (``b`` and ``c`` each equal ``a`` with that
    probability), so conjunctive predicates across them compound the
    independence assumption's error multiplicatively — the classic failure
    mode learned estimators fix. ``d`` is uniform and independent.
    """
    rng = ensure_rng(seed)
    a, b = correlated_pair(n_rows, n_values, correlation, seed=rng)
    c = np.where(rng.random(n_rows) < correlation, a,
                 rng.integers(0, n_values, size=n_rows))
    d = rng.integers(0, n_values, size=n_rows)
    schema = TableSchema(
        name,
        [
            ColumnSchema("a", DataType.INT),
            ColumnSchema("b", DataType.INT),
            ColumnSchema("c", DataType.INT),
            ColumnSchema("d", DataType.INT),
        ],
    )
    table = Table(schema, columns={"a": a, "b": b, "c": c, "d": d})
    catalog.register_table(table)
    catalog.analyze(name)
    return table


_SEGMENTS = ["consumer", "corporate", "home_office", "small_business"]
_REGIONS = ["north", "south", "east", "west", "central"]
_CATEGORIES = ["tools", "toys", "food", "books", "garden", "electronics"]


def make_star_schema(catalog, n_customers=2000, n_products=400, n_dates=365,
                     n_sales=30000, seed=0):
    """A star schema with referential integrity.

    Tables::

        customer(c_id, c_segment, c_region, c_age)
        product(p_id, p_category, p_price)
        dates(d_id, d_month, d_weekday)
        sales(s_id, s_customer, s_product, s_date, s_amount, s_quantity)

    Foreign keys in ``sales`` are Zipf-skewed (hot customers/products), and
    ``s_amount`` correlates with the product's price — realistic structure
    for the advisor and estimator experiments.

    Returns:
        dict of table name -> :class:`Table`.
    """
    rng = ensure_rng(seed)
    customer = Table(
        TableSchema(
            "customer",
            [
                ColumnSchema("c_id", DataType.INT),
                ColumnSchema("c_segment", DataType.TEXT),
                ColumnSchema("c_region", DataType.TEXT),
                ColumnSchema("c_age", DataType.INT),
            ],
        ),
        columns={
            "c_id": np.arange(n_customers),
            "c_segment": np.array(
                [ _SEGMENTS[i] for i in rng.integers(0, len(_SEGMENTS), n_customers)],
                dtype=object,
            ),
            "c_region": np.array(
                [_REGIONS[i] for i in rng.integers(0, len(_REGIONS), n_customers)],
                dtype=object,
            ),
            "c_age": rng.integers(18, 90, size=n_customers),
        },
    )
    prices = np.round(rng.lognormal(mean=3.0, sigma=0.8, size=n_products), 2)
    product = Table(
        TableSchema(
            "product",
            [
                ColumnSchema("p_id", DataType.INT),
                ColumnSchema("p_category", DataType.TEXT),
                ColumnSchema("p_price", DataType.FLOAT),
            ],
        ),
        columns={
            "p_id": np.arange(n_products),
            "p_category": np.array(
                [_CATEGORIES[i] for i in rng.integers(0, len(_CATEGORIES), n_products)],
                dtype=object,
            ),
            "p_price": prices,
        },
    )
    dates = Table(
        TableSchema(
            "dates",
            [
                ColumnSchema("d_id", DataType.INT),
                ColumnSchema("d_month", DataType.INT),
                ColumnSchema("d_weekday", DataType.INT),
            ],
        ),
        columns={
            "d_id": np.arange(n_dates),
            "d_month": (np.arange(n_dates) // 31) % 12 + 1,
            "d_weekday": np.arange(n_dates) % 7,
        },
    )
    s_customer = zipf_integers(n_sales, n_customers, skew=1.1, seed=rng)
    s_product = zipf_integers(n_sales, n_products, skew=1.2, seed=rng)
    s_date = rng.integers(0, n_dates, size=n_sales)
    base_price = prices[s_product]
    quantity = rng.integers(1, 10, size=n_sales)
    amount = np.round(base_price * quantity * rng.uniform(0.8, 1.2, n_sales), 2)
    sales = Table(
        TableSchema(
            "sales",
            [
                ColumnSchema("s_id", DataType.INT),
                ColumnSchema("s_customer", DataType.INT),
                ColumnSchema("s_product", DataType.INT),
                ColumnSchema("s_date", DataType.INT),
                ColumnSchema("s_amount", DataType.FLOAT),
                ColumnSchema("s_quantity", DataType.INT),
            ],
        ),
        columns={
            "s_id": np.arange(n_sales),
            "s_customer": s_customer,
            "s_product": s_product,
            "s_date": s_date,
            "s_amount": amount,
            "s_quantity": quantity,
        },
    )
    tables = {}
    for t in (customer, product, dates, sales):
        catalog.register_table(t)
        catalog.analyze(t.name)
        tables[t.name] = t
    return tables


#: Join edges of the star schema, reused by workload generators.
STAR_EDGES = {
    "customer": ("sales", "s_customer", "customer", "c_id"),
    "product": ("sales", "s_product", "product", "p_id"),
    "dates": ("sales", "s_date", "dates", "d_id"),
}


def make_join_graph_schema(catalog, topology="chain", n_tables=6,
                           rows_per_table=2000, n_values=200, seed=0,
                           prefix="t", correlated=False):
    """Tables wired into a chain, star, or clique join graph.

    Every table has ``id`` (0..rows-1, unique), ``fk`` (Zipf into the key
    domain), and ``val`` (the filter column). The returned edge list
    encodes the topology:

    * ``chain``: ``t0.id = t1.fk``, ``t1.id = t2.fk``, ...
    * ``star``: ``t0.id = ti.fk`` for all i >= 1 (t0 is the hub).
    * ``clique``: edges between all pairs on ``fk`` columns.

    With ``correlated=True``, each table's ``fk`` is a noisy monotone
    function of its ``val`` — a filter on ``val`` then concentrates the
    surviving foreign keys into a narrow range, so filtered-join
    cardinalities violate the independence assumption badly (the regime
    where latency-trained optimizers beat analytic ones).

    Returns:
        ``(table_names, join_edges)``.
    """
    rng = ensure_rng(seed)
    names = ["%s%d" % (prefix, i) for i in range(n_tables)]
    for i, name in enumerate(names):
        n = rows_per_table
        schema = TableSchema(
            name,
            [
                ColumnSchema("id", DataType.INT),
                ColumnSchema("fk", DataType.INT),
                ColumnSchema("val", DataType.INT),
            ],
        )
        val = rng.integers(0, n_values, size=n)
        if correlated:
            fk = (
                val.astype(float) / n_values * rows_per_table
                + rng.normal(0, rows_per_table * 0.02, size=n)
            )
            fk = np.clip(fk, 0, rows_per_table - 1).astype(np.int64)
        else:
            fk = zipf_integers(n, rows_per_table, skew=0.8, seed=rng)
        table = Table(
            schema,
            columns={"id": np.arange(n), "fk": fk, "val": val},
        )
        catalog.register_table(table)
        catalog.analyze(name)
    edges = []
    if topology == "chain":
        for i in range(n_tables - 1):
            edges.append(JoinEdge(names[i], "id", names[i + 1], "fk"))
    elif topology == "star":
        for i in range(1, n_tables):
            edges.append(JoinEdge(names[0], "id", names[i], "fk"))
    elif topology == "clique":
        for i in range(n_tables):
            for j in range(i + 1, n_tables):
                edges.append(JoinEdge(names[i], "fk", names[j], "fk"))
    else:
        raise ValueError("topology must be chain, star, or clique")
    return names, edges


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------

def star_workload(n_queries=40, seed=0, max_dims=3):
    """Analytical queries over the star schema of :func:`make_star_schema`.

    Each query joins ``sales`` with 1..max_dims dimension tables, filters on
    dimension attributes and fact measures, and aggregates. Query templates
    repeat (with different constants), giving view/index advisors reuse to
    exploit.

    Returns:
        list of :class:`ConjunctiveQuery`.
    """
    rng = ensure_rng(seed)
    queries = []
    dim_names = list(STAR_EDGES)
    for __ in range(n_queries):
        k = int(rng.integers(1, max_dims + 1))
        dims = list(rng.choice(dim_names, size=k, replace=False))
        tables = ["sales"] + dims
        edges = [JoinEdge(*STAR_EDGES[d]) for d in dims]
        predicates = []
        if "customer" in dims:
            if rng.random() < 0.6:
                predicates.append(
                    Predicate("customer", "c_region", "=",
                              _REGIONS[int(rng.integers(0, len(_REGIONS)))])
                )
            else:
                predicates.append(
                    Predicate("customer", "c_age", "<", int(rng.integers(30, 80)))
                )
        if "product" in dims and rng.random() < 0.7:
            predicates.append(
                Predicate("product", "p_category", "=",
                          _CATEGORIES[int(rng.integers(0, len(_CATEGORIES)))])
            )
        if "dates" in dims and rng.random() < 0.5:
            predicates.append(
                Predicate("dates", "d_month", "=", int(rng.integers(1, 13)))
            )
        if rng.random() < 0.4:
            predicates.append(
                Predicate("sales", "s_quantity", ">=", int(rng.integers(2, 8)))
            )
        queries.append(
            ConjunctiveQuery(
                tables=tables,
                join_edges=edges,
                predicates=predicates,
                aggregates=[Aggregate("count"), Aggregate("sum", "sales", "s_amount")],
            )
        )
    return queries


def join_graph_workload(names, edges, n_queries=20, n_values=200, seed=0,
                        min_tables=3):
    """Queries over a join-graph schema from :func:`make_join_graph_schema`.

    Each query picks a connected subset of tables and adds a range filter
    per table with probability 0.7.
    """
    rng = ensure_rng(seed)
    adjacency = {n: set() for n in names}
    for e in edges:
        adjacency[e.left_table].add(e.right_table)
        adjacency[e.right_table].add(e.left_table)
    queries = []
    for __ in range(n_queries):
        size = int(rng.integers(min_tables, len(names) + 1))
        start = names[int(rng.integers(0, len(names)))]
        subset = [start]
        frontier = set(adjacency[start])
        while len(subset) < size and frontier:
            nxt = sorted(frontier)[int(rng.integers(0, len(frontier)))]
            subset.append(nxt)
            frontier |= adjacency[nxt]
            frontier -= set(subset)
        sub_edges = [
            e
            for e in edges
            if e.left_table in subset and e.right_table in subset
        ]
        predicates = []
        for t in subset:
            if rng.random() < 0.7:
                lo = int(rng.integers(0, n_values // 2))
                predicates.append(Predicate(t, "val", "<", lo + n_values // 4))
        queries.append(
            ConjunctiveQuery(tables=subset, join_edges=sub_edges,
                             predicates=predicates,
                             aggregates=[Aggregate("count")])
        )
    return queries


def selection_workload(table, column, n_queries, n_values, seed=0, ops=("=", "<", ">")):
    """Single-table selection queries for the cardinality experiments."""
    rng = ensure_rng(seed)
    queries = []
    for __ in range(n_queries):
        n_preds = int(rng.integers(1, 3))
        cols = list(rng.choice(column, size=n_preds, replace=False)) if isinstance(
            column, (list, tuple)
        ) else [column] * n_preds
        predicates = []
        for c in cols:
            op = ops[int(rng.integers(0, len(ops)))]
            predicates.append(Predicate(table, c, op, int(rng.integers(0, n_values))))
        queries.append(
            ConjunctiveQuery(tables=[table], predicates=predicates,
                             aggregates=[Aggregate("count")])
        )
    return queries
