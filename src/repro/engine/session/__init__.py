"""The session layer: one gated surface over every engine entry point.

``repro.engine.session`` unifies the embedded (:class:`Database`),
snapshot (:meth:`Database.snapshot`), and served
(:class:`QueryServer`) calling conventions behind
:class:`SessionContext`, and adds the safety stack autonomous callers
need: declarative :class:`Policy` gates, an append-only
:class:`AuditLog`, script :meth:`~SessionContext.dry_run` planning, and
— via :class:`AgentSession` — transactional begin/commit/rollback built
on the catalog's physical restore points.
"""

from repro.engine.session.agent import AgentSession
from repro.engine.session.audit import AuditLog, AuditRecord
from repro.engine.session.context import (
    DryRunReport,
    LocalBackend,
    ServerBackend,
    SessionContext,
    SessionResult,
    SnapshotBackend,
    StatementInfo,
    StatementPreview,
    classify,
    sniff_kind,
    split_script,
)
from repro.engine.session.policy import (
    STATEMENT_KINDS,
    Policy,
    PolicyDecision,
)

__all__ = [
    "AgentSession",
    "AuditLog",
    "AuditRecord",
    "DryRunReport",
    "LocalBackend",
    "Policy",
    "PolicyDecision",
    "STATEMENT_KINDS",
    "ServerBackend",
    "SessionContext",
    "SessionResult",
    "SnapshotBackend",
    "StatementInfo",
    "StatementPreview",
    "classify",
    "sniff_kind",
    "split_script",
]
