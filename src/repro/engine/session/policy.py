"""Per-session safety policies: what a caller may touch, and how much.

The Baihe position paper (PAPERS.md) argues AI components must sit
*outside* the core engine behind narrow, guarded interfaces. A
:class:`Policy` is that guard for one session: statement-kind gates
("SELECT only", "no DDL"), table and column allow/deny lists, and
row / cost ceilings. Policies are declarative and engine-agnostic —
the :class:`~repro.engine.session.context.SessionContext` evaluates
them against the *lowered* statement (real tables and columns, not
text), so a denied column is caught wherever it appears: projection,
WHERE predicate, aggregate argument, grouping or ordering key, or an
AISQL feature list.

Every check returns a :class:`PolicyDecision` naming the rule that
fired, which is what the audit log records and what
:class:`~repro.engine.errors.PolicyError` carries.
"""

from repro.engine.errors import PolicyError

#: Statement kinds the session layer classifies (extension statements —
#: the AISQL heads — included so policies can gate them like native SQL).
STATEMENT_KINDS = (
    "SELECT",
    "INSERT",
    "CREATE TABLE",
    "CREATE INDEX",
    "ANALYZE",
    "CREATE MODEL",
    "PREDICT",
    "EVALUATE",
    "UNKNOWN",
)

#: Kinds that mutate catalog state (what ``read_only`` forbids).
WRITE_KINDS = frozenset({"INSERT", "CREATE TABLE", "CREATE INDEX",
                         "ANALYZE", "CREATE MODEL"})


class PolicyDecision:
    """The verdict of one policy check.

    Attributes:
        allowed: whether the statement may proceed.
        rule: short machine-readable name of the rule that decided —
            ``"default"`` for an unconditional allow, else e.g.
            ``"statement-kind"``, ``"table-deny"``, ``"column-deny"``,
            ``"row-limit"``, ``"cost-limit"``.
        reason: human-readable explanation (audit-log material).
    """

    __slots__ = ("allowed", "rule", "reason")

    ALLOW_RULE = "default"

    def __init__(self, allowed, rule=ALLOW_RULE, reason=""):
        self.allowed = bool(allowed)
        self.rule = rule
        self.reason = reason

    @classmethod
    def allow(cls, rule=ALLOW_RULE, reason=""):
        return cls(True, rule, reason)

    @classmethod
    def deny(cls, rule, reason):
        return cls(False, rule, reason)

    @property
    def verdict(self):
        """``"allow"`` or ``"deny"`` (the audit log's spelling)."""
        return "allow" if self.allowed else "deny"

    def raise_if_denied(self, sql=None):
        """Raise :class:`PolicyError` when denied; return self otherwise."""
        if not self.allowed:
            prefix = "policy denied statement"
            if sql:
                prefix += " %r" % (" ".join(sql.split())[:80],)
            raise PolicyError(
                "%s: %s (%s)" % (prefix, self.reason, self.rule),
                decision=self,
            )
        return self

    def __bool__(self):
        return self.allowed

    def __repr__(self):
        return "PolicyDecision(%s, rule=%r)" % (self.verdict, self.rule)


def _norm_tables(tables):
    return None if tables is None else {t.lower() for t in tables}


def _norm_columns(columns):
    """Column specs: bare ``"col"`` (any table) or ``"table.col"``."""
    return None if columns is None else {c.lower() for c in columns}


class Policy:
    """A declarative safety policy for one session.

    Args:
        statement_kinds: iterable of allowed kinds from
            :data:`STATEMENT_KINDS` (``None`` allows every kind). A
            statement whose kind cannot be classified is ``"UNKNOWN"`` —
            listing it explicitly is the only way to allow unclassifiable
            statements through a gated session.
        allow_tables: table allow-list (``None`` = all tables).
        deny_tables: table deny-list (checked before the allow-list).
        allow_columns: column allow-list (``None`` = all columns); specs
            are ``"column"`` or ``"table.column"``, case-insensitive.
        deny_columns: column deny-list (checked before the allow-list).
        max_rows: ceiling on a statement's row count — result rows for
            reads (enforced after execution), inserted rows for INSERT
            (enforced before).
        max_cost: ceiling on the planner's estimated cost for one
            statement (enforced before execution, when an estimate
            exists — SELECTs always, AISQL when its inspector is
            installed).

    Policies are immutable in spirit: build a new one per session rather
    than mutating a shared instance mid-flight.
    """

    __slots__ = ("statement_kinds", "allow_tables", "deny_tables",
                 "allow_columns", "deny_columns", "max_rows", "max_cost")

    def __init__(self, *, statement_kinds=None, allow_tables=None,
                 deny_tables=(), allow_columns=None, deny_columns=(),
                 max_rows=None, max_cost=None):
        if statement_kinds is not None:
            kinds = {k.upper() for k in statement_kinds}
            unknown = kinds - set(STATEMENT_KINDS)
            if unknown:
                raise PolicyError(
                    "unknown statement kinds in policy: %s (kinds: %s)"
                    % (", ".join(sorted(unknown)),
                       ", ".join(STATEMENT_KINDS))
                )
            self.statement_kinds = frozenset(kinds)
        else:
            self.statement_kinds = None
        self.allow_tables = _norm_tables(allow_tables)
        self.deny_tables = _norm_tables(deny_tables) or set()
        self.allow_columns = _norm_columns(allow_columns)
        self.deny_columns = _norm_columns(deny_columns) or set()
        if max_rows is not None and max_rows < 0:
            raise PolicyError("max_rows must be >= 0")
        if max_cost is not None and max_cost <= 0:
            raise PolicyError("max_cost must be > 0")
        self.max_rows = max_rows
        self.max_cost = max_cost

    # -- constructors ----------------------------------------------------
    @classmethod
    def read_only(cls, **kwargs):
        """A SELECT-only policy (plus any extra restrictions)."""
        kwargs.setdefault("statement_kinds", ("SELECT",))
        return cls(**kwargs)

    @classmethod
    def unrestricted(cls):
        """The allow-everything policy (useful as an explicit default)."""
        return cls()

    # -- checks ----------------------------------------------------------
    def _check_column(self, table, column):
        qualified = "%s.%s" % (table.lower(), column.lower())
        bare = column.lower()
        if qualified in self.deny_columns or bare in self.deny_columns:
            return PolicyDecision.deny(
                "column-deny", "column %s is denied" % qualified
            )
        if self.allow_columns is not None and (
            qualified not in self.allow_columns
            and bare not in self.allow_columns
        ):
            return PolicyDecision.deny(
                "column-allow", "column %s is not on the allow-list"
                % qualified
            )
        return None

    def check_statement(self, info):
        """Gate one classified statement (pre-execution).

        Args:
            info: a :class:`~repro.engine.session.context.StatementInfo`
                (kind + referenced tables/columns, as deep as
                classification could see).

        Returns:
            a :class:`PolicyDecision`.
        """
        kind = info.kind
        if self.statement_kinds is not None and kind not in \
                self.statement_kinds:
            return PolicyDecision.deny(
                "statement-kind",
                "statement kind %s is not allowed (allowed: %s)"
                % (kind, ", ".join(sorted(self.statement_kinds)))
            )
        for table in info.tables:
            key = table.lower()
            if key in self.deny_tables:
                return PolicyDecision.deny(
                    "table-deny", "table %s is denied" % key
                )
            if self.allow_tables is not None and key not in \
                    self.allow_tables:
                return PolicyDecision.deny(
                    "table-allow",
                    "table %s is not on the allow-list" % key
                )
        for table, column in info.columns:
            denied = self._check_column(table, column)
            if denied is not None:
                return denied
        if (self.max_rows is not None and kind == "INSERT"
                and info.row_estimate is not None
                and info.row_estimate > self.max_rows):
            return PolicyDecision.deny(
                "row-limit",
                "INSERT of %d rows exceeds the %d-row limit"
                % (info.row_estimate, self.max_rows)
            )
        return PolicyDecision.allow()

    def check_cost(self, est_cost):
        """Gate one statement's planner cost estimate (pre-execution)."""
        if (self.max_cost is not None and est_cost is not None
                and est_cost > self.max_cost):
            return PolicyDecision.deny(
                "cost-limit",
                "estimated cost %.1f exceeds the %.1f ceiling"
                % (est_cost, self.max_cost)
            )
        return PolicyDecision.allow()

    def check_result_rows(self, n_rows):
        """Gate a read's realized result size (post-execution)."""
        if self.max_rows is not None and n_rows > self.max_rows:
            return PolicyDecision.deny(
                "row-limit",
                "result of %d rows exceeds the %d-row limit"
                % (n_rows, self.max_rows)
            )
        return PolicyDecision.allow()

    def describe(self):
        """A JSON-friendly dict of the policy's rules (audit material)."""
        return {
            "statement_kinds": (
                None if self.statement_kinds is None
                else sorted(self.statement_kinds)
            ),
            "allow_tables": (None if self.allow_tables is None
                             else sorted(self.allow_tables)),
            "deny_tables": sorted(self.deny_tables),
            "allow_columns": (None if self.allow_columns is None
                              else sorted(self.allow_columns)),
            "deny_columns": sorted(self.deny_columns),
            "max_rows": self.max_rows,
            "max_cost": self.max_cost,
        }

    def __repr__(self):
        gates = []
        if self.statement_kinds is not None:
            gates.append("kinds=%s" % ",".join(sorted(self.statement_kinds)))
        if self.allow_tables is not None:
            gates.append("allow_tables=%d" % len(self.allow_tables))
        if self.deny_tables:
            gates.append("deny_tables=%d" % len(self.deny_tables))
        if self.allow_columns is not None:
            gates.append("allow_columns=%d" % len(self.allow_columns))
        if self.deny_columns:
            gates.append("deny_columns=%d" % len(self.deny_columns))
        if self.max_rows is not None:
            gates.append("max_rows=%d" % self.max_rows)
        if self.max_cost is not None:
            gates.append("max_cost=%.1f" % self.max_cost)
        return "Policy(%s)" % (", ".join(gates) or "unrestricted")
