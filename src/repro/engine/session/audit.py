"""Session audit log: every statement, its policy verdict, and its cost.

The AI4DB survey's governance thread (and the queryclaw-style agent
tooling it motivates) wants a *complete, queryable* trace of what an
agent did to the database: the SQL text, whether policy allowed it,
what the planner predicted it would cost, and what it actually cost.
:class:`AuditLog` is that trace. Records are appended for every
statement a gated session sees — including ones that were denied or
that failed mid-execution — and :meth:`AuditLog.attach` materializes
the log as an ordinary engine table so it can be queried with the
same SQL surface it audits.
"""

from repro.engine.storage import Table
from repro.engine.types import ColumnSchema, DataType, TableSchema

#: Statuses a record can carry.
AUDIT_STATUSES = ("ok", "error", "denied")


class AuditRecord:
    """One audited statement.

    Attributes:
        seq: position in the session's statement stream (1-based).
        sql: the raw statement text.
        kind: classified statement kind (``"SELECT"`` etc.).
        decision: ``"allow"`` or ``"deny"`` (the policy verdict).
        rule: the policy rule that decided (``"default"`` when no
            policy is installed).
        status: ``"ok"`` / ``"error"`` / ``"denied"``.
        error: the exception message when status is not ``"ok"``.
        est_cost: planner cost estimate, when one existed pre-execution.
        actual_work: realized ``ExecutionTelemetry.total_work``.
        n_rows: rows returned (reads) or ingested (writes).
        versions: the per-table version vector observed *after* the
            statement (dict, copied).
        telemetry: :meth:`ExecutionTelemetry.brief` dict, or ``None``.
    """

    __slots__ = ("seq", "sql", "kind", "decision", "rule", "status",
                 "error", "est_cost", "actual_work", "n_rows",
                 "versions", "telemetry")

    def __init__(self, seq, sql, kind, decision, rule, status,
                 error=None, est_cost=None, actual_work=None,
                 n_rows=None, versions=None, telemetry=None):
        self.seq = seq
        self.sql = sql
        self.kind = kind
        self.decision = decision
        self.rule = rule
        self.status = status
        self.error = error
        self.est_cost = est_cost
        self.actual_work = actual_work
        self.n_rows = n_rows
        self.versions = dict(versions) if versions else {}
        self.telemetry = telemetry

    def as_dict(self):
        return {
            "seq": self.seq,
            "sql": self.sql,
            "kind": self.kind,
            "decision": self.decision,
            "rule": self.rule,
            "status": self.status,
            "error": self.error,
            "est_cost": self.est_cost,
            "actual_work": self.actual_work,
            "n_rows": self.n_rows,
            "versions": dict(self.versions),
            "telemetry": self.telemetry,
        }

    def __repr__(self):
        return "AuditRecord(seq=%d, kind=%s, decision=%s, status=%s)" % (
            self.seq, self.kind, self.decision, self.status)


#: Column layout of the materialized audit table (versions are rendered
#: as a stable ``table=version`` comma string so the log stays queryable
#: with the engine's scalar types).
AUDIT_TABLE_COLUMNS = (
    ("seq", DataType.INT),
    ("kind", DataType.TEXT),
    ("decision", DataType.TEXT),
    ("rule", DataType.TEXT),
    ("status", DataType.TEXT),
    ("sql", DataType.TEXT),
    ("error", DataType.TEXT),
    ("est_cost", DataType.FLOAT),
    ("actual_work", DataType.FLOAT),
    ("n_rows", DataType.INT),
    ("versions", DataType.TEXT),
)


class AuditLog:
    """Append-only log of everything a session executed (or tried to).

    The log lives *outside* the catalog so a session rollback never
    erases the record of what was rolled back; :meth:`attach` snapshots
    it into a catalog table on demand.
    """

    def __init__(self):
        self._records = []

    # -- write side ------------------------------------------------------
    def append(self, record):
        self._records.append(record)
        return record

    def record(self, sql, kind, decision, rule, status, **fields):
        """Build + append an :class:`AuditRecord` with the next seq."""
        rec = AuditRecord(
            seq=len(self._records) + 1, sql=sql, kind=kind,
            decision=decision, rule=rule, status=status, **fields)
        return self.append(rec)

    # -- read side -------------------------------------------------------
    def records(self):
        """A snapshot list of all records, in statement order."""
        return list(self._records)

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(list(self._records))

    def __getitem__(self, idx):
        return self._records[idx]

    def tail(self, n=5):
        return self._records[-n:]

    def denied(self):
        return [r for r in self._records if r.decision == "deny"]

    def failed(self):
        return [r for r in self._records if r.status == "error"]

    # -- materialization -------------------------------------------------
    def to_table(self, name="session_audit"):
        """Materialize the log as an engine :class:`Table`.

        Numeric columns are NOT NULL (columnar storage holds dense
        int64/float64 arrays): unknown ``est_cost``/``actual_work``/
        ``n_rows`` materialize as ``-1``; a missing ``error`` as ``''``.
        """
        schema = TableSchema(name, [
            ColumnSchema(col, dtype) for col, dtype in AUDIT_TABLE_COLUMNS
        ])
        table = Table(schema)
        rows = []
        for r in self._records:
            versions = ",".join(
                "%s=%d" % (t, v) for t, v in sorted(r.versions.items()))
            rows.append((
                r.seq, r.kind, r.decision, r.rule, r.status, r.sql,
                r.error if r.error is not None else "",
                r.est_cost if r.est_cost is not None else -1.0,
                r.actual_work if r.actual_work is not None else -1.0,
                r.n_rows if r.n_rows is not None else -1,
                versions,
            ))
        if rows:
            table.insert_rows(rows)
        return table

    def attach(self, catalog, name="session_audit"):
        """Register (or refresh) the materialized log in a catalog.

        Replaces any previous attachment under the same name so the
        table always reflects the log at call time.
        """
        if catalog.has_table(name):
            catalog.drop_table(name)
        table = self.to_table(name)
        catalog.register_table(table)
        return table

    def __repr__(self):
        return "AuditLog(%d records, %d denied, %d failed)" % (
            len(self._records), len(self.denied()), len(self.failed()))
