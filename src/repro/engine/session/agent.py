"""AgentSession: the safety-gated handle for autonomous callers.

LLM agents (and any untrusted automation) need more than an API — they
need a *blast radius*. An :class:`AgentSession` wraps any engine entry
point (an embedded :class:`~repro.engine.database.Database` or a
:class:`~repro.engine.server.QueryServer`, duck-typed) with the full
session stack plus transactional undo:

* every statement is policy-gated and audit-logged (the
  :class:`~repro.engine.session.context.SessionContext` machinery);
* :meth:`dry_run` plans a whole script — AISQL included — without
  executing a byte;
* :meth:`begin` pins the catalog's physical state via restore points,
  :meth:`rollback` restores it **bit-identically** (rows, versions,
  stats, indexes, views), and :meth:`commit` keeps it.

Rollback restores catalog state only. Out-of-catalog side effects —
most notably models registered in an AISQL ``ModelRegistry`` — are not
undone (document-and-accept: the registry is an extension object the
engine cannot see). The plan caches are invalidated on rollback, since
restored versions can re-bump to numbers cached plans were keyed under
while the underlying data differs.

Server mode: :meth:`begin` takes the server's commit lock (an RLock —
per-statement writes inside the transaction re-enter it) and holds it
until :meth:`commit`/:meth:`rollback`, so the multi-statement mutation
is atomic with respect to every other session: readers pin snapshots
under that same lock and can never observe a half-applied transaction.
Rollback appends a commit-log entry carrying the restored vector, so
the post-rollback state is a committed state and the serving layer's
no-torn-reads invariant (every pinned snapshot equals a logged vector)
keeps holding.
"""

from repro.engine.errors import SessionError
from repro.engine.session.audit import AuditLog
from repro.engine.session.context import (
    LocalBackend,
    ServerBackend,
    SessionContext,
)


class AgentSession(SessionContext):
    """A gated, audited, rollback-capable session over db or server.

    Args:
        target: a :class:`~repro.engine.database.Database`, or anything
            server-shaped (``pin_snapshot``/``_run_read``/``_run_write``
            — a :class:`~repro.engine.server.QueryServer`).
        policy: optional :class:`~repro.engine.session.policy.Policy`.
        audit: the session's audit log (one is created when omitted —
            agent sessions always audit).
        tenant: admission tenant for server targets.

    Usable as a context manager: entering begins a transaction, a clean
    exit commits, an exception rolls back — so a misbehaving script is
    fully undone::

        with db.agent_session(policy=Policy.read_only()) as agent:
            agent.run_script(script)   # raises → every effect reverted
    """

    def __init__(self, target, policy=None, audit=None, tenant="agent"):
        self._server = None
        self._server_session = None
        if hasattr(target, "pin_snapshot"):
            self._server = target
            self._server_session = target.session(tenant=tenant)
            db = target.db
            backend = ServerBackend(target, self._server_session)
        else:
            db = target
            backend = LocalBackend(db)
        super().__init__(
            db, backend=backend, policy=policy,
            audit=audit if audit is not None else AuditLog(),
        )
        self._restore_point = None

    # -- transaction surface ---------------------------------------------
    @property
    def in_transaction(self):
        """Whether :meth:`begin` is active (uncommitted)."""
        return self._restore_point is not None

    def begin(self):
        """Pin the catalog's current physical state as the undo target.

        Server mode additionally takes the server's commit lock, holding
        it until :meth:`commit`/:meth:`rollback` — the transaction is
        one atomic unit in the commit history.
        """
        if self._restore_point is not None:
            raise SessionError(
                "a transaction is already active (nested begin() is not "
                "supported)")
        if self._server is not None:
            self._server._commit_lock.acquire()
        try:
            self._restore_point = self.db.catalog.restore_point()
        except BaseException:
            if self._server is not None:
                self._server._commit_lock.release()
            raise
        self._meta("BEGIN")
        return self

    def commit(self):
        """Keep everything since :meth:`begin`; discard the undo state."""
        self._require_transaction()
        self._restore_point = None
        self._meta("COMMIT")
        if self._server is not None:
            self._server._commit_lock.release()

    def rollback(self):
        """Restore the exact pre-:meth:`begin` state.

        Physically rewinds every table (rows, sealed groups, tail),
        catalog metadata (stats, indexes, views), and the per-table
        version vector — the one sanctioned case of versions moving
        backward — then invalidates the plan caches (restored versions
        can re-bump to numbers cached plans were keyed under while the
        data differs). In server mode the restored vector is appended
        to the commit log so the post-rollback state is a committed
        state, and the commit lock is released.
        """
        point = self._require_transaction()
        point.restore()
        self._restore_point = None
        self.db.pipeline.invalidate()
        self._meta("ROLLBACK")
        if self._server is not None:
            server = self._server
            server._commit_seq += 1
            server.commit_log.append(
                (server._commit_seq,
                 dict(self.db.catalog.version_vector())))
            server._commit_lock.release()

    def _require_transaction(self):
        if self._restore_point is None:
            raise SessionError(
                "no transaction is active (call begin() first)")
        return self._restore_point

    def _meta(self, kind):
        """Audit a transaction-control event alongside the statements."""
        if self.audit is not None:
            self.audit.record(
                kind, kind, "allow", "transaction", "ok",
                versions=self._versions())

    # -- lifecycle -------------------------------------------------------
    def close(self):
        """Roll back any open transaction and release server resources."""
        if self._restore_point is not None:
            self.rollback()
        if self._server_session is not None:
            self._server_session.close()

    def __enter__(self):
        self.begin()
        return self

    def __exit__(self, exc_type, exc, tb):
        try:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        finally:
            if self._server_session is not None:
                self._server_session.close()
        return False

    def __repr__(self):
        mode = "server" if self._server is not None else "db"
        return "AgentSession(%s%s%s)" % (
            mode,
            ", in_transaction" if self.in_transaction else "",
            (", %r" % self.policy) if self.policy is not None else "")
