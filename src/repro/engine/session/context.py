"""The unified session surface over every way of talking to the engine.

Before this layer, the repo had three parallel entry points —
``Database.execute`` (embedded), ``db.snapshot()`` (pinned reads), and
``QueryServer.session()`` (multi-tenant serving) — each with its own
calling conventions. :class:`SessionContext` is the one abstraction they
are all facades over: a *backend* strategy object supplies the three
primitive operations (raw statement, prepared read, write), and the
context layers classification, policy gates, audit logging, dry-run
planning, and a single :class:`SessionResult` envelope on top.

Layering: this module sits inside ``repro.engine`` and must not import
the serving layer (``repro.engine.server``) — the server imports *us*.
:class:`ServerBackend` therefore duck-types its target: anything with
``pin_snapshot`` / ``_run_read`` / ``_run_write`` works.

The fast path is preserved exactly: a session with no policy and no
audit log routes every statement through the backend's raw path — the
same code path (statement hooks first, warm SQL cache, direct DDL) the
legacy facades used — and only sniffs the statement head for the result
envelope. Gates and bookkeeping cost nothing until you ask for them.
"""

from repro.engine.errors import EngineError, ExecutionError
from repro.engine.session.audit import AuditLog  # noqa: F401 (re-export)
from repro.engine.session.policy import PolicyDecision
from repro.engine.sql.ast_nodes import (
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    InsertStmt,
    SelectStmt,
)
from repro.engine.sql.parser import parse_sql

#: Flat planning-cost stand-in for write statements (mirrors the serving
#: layer's ``DEFAULT_WRITE_COST`` — writes bypass the planner, so there
#: is no estimate to read).
WRITE_STATEMENT_COST = 64.0

#: Two-word statement heads the classifier must join before matching.
_TWO_WORD_KINDS = {
    ("CREATE", "TABLE"): "CREATE TABLE",
    ("CREATE", "INDEX"): "CREATE INDEX",
    ("CREATE", "HYPOTHETICAL"): "CREATE INDEX",
    ("CREATE", "MODEL"): "CREATE MODEL",
}

_ONE_WORD_KINDS = {
    "SELECT": "SELECT",
    "INSERT": "INSERT",
    "ANALYZE": "ANALYZE",
    "PREDICT": "PREDICT",
    "EVALUATE": "EVALUATE",
}


def split_script(text):
    """Split a multi-statement script on ``;`` outside quotes.

    Returns the non-empty statements with surrounding whitespace (and
    the terminating semicolon) stripped. Quote-aware so string literals
    containing semicolons survive intact.
    """
    statements = []
    buf = []
    quote = None
    for ch in text:
        if quote is not None:
            buf.append(ch)
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
            buf.append(ch)
        elif ch == ";":
            stmt = "".join(buf).strip()
            if stmt:
                statements.append(stmt)
            buf = []
        else:
            buf.append(ch)
    stmt = "".join(buf).strip()
    if stmt:
        statements.append(stmt)
    return statements


def sniff_kind(sql_text):
    """Classify a statement by its head token(s) — no parsing.

    Returns one of :data:`~repro.engine.session.policy.STATEMENT_KINDS`
    (``"UNKNOWN"`` when the head matches nothing).
    """
    tokens = sql_text.strip().split(None, 2)
    if not tokens:
        return "UNKNOWN"
    head = tokens[0].upper()
    if head == "CREATE" and len(tokens) > 1:
        return _TWO_WORD_KINDS.get((head, tokens[1].upper()), "UNKNOWN")
    return _ONE_WORD_KINDS.get(head, "UNKNOWN")


class StatementInfo:
    """What classification learned about one statement.

    Attributes:
        sql: the statement text.
        kind: a :data:`~repro.engine.session.policy.STATEMENT_KINDS`
            entry.
        tables: referenced table names (as deep as classification saw).
        columns: referenced ``(table, column)`` pairs — for a deep
            SELECT this covers projections (expanded to all columns for
            ``SELECT *``), predicates, join keys, aggregate arguments,
            grouping and ordering keys, so a policy deny-list catches a
            column *wherever* it appears in the statement.
        query: the lowered :class:`~repro.engine.query.ConjunctiveQuery`
            when one exists (deep SELECT, or an extension inspector's
            cost-estimable feature query).
        row_estimate: known row count before execution (INSERT only).
        source: how the info was obtained — ``"inspector"`` /
            ``"lowered"`` / ``"parsed"`` / ``"sniffed"``.
    """

    __slots__ = ("sql", "kind", "tables", "columns", "query",
                 "row_estimate", "source")

    def __init__(self, sql, kind, tables=(), columns=(), query=None,
                 row_estimate=None, source="sniffed"):
        self.sql = sql
        self.kind = kind
        self.tables = list(tables)
        self.columns = list(columns)
        self.query = query
        self.row_estimate = row_estimate
        self.source = source

    def __repr__(self):
        return "StatementInfo(%s, tables=%r, source=%s)" % (
            self.kind, self.tables, self.source)


def _dedupe(pairs):
    seen = set()
    out = []
    for t, c in pairs:
        key = (t.lower(), c.lower())
        if key not in seen:
            seen.add(key)
            out.append((t, c))
    return out


def _query_columns(db, query):
    """Every (table, column) a lowered query references, deduplicated."""
    cols = []
    if query.projections:
        cols.extend(query.projections)
    elif not query.aggregates:
        # SELECT * — expand to every column of every table so allow/deny
        # lists see exactly what the result would expose. Aggregate-only
        # queries (e.g. COUNT(*)) expose only their aggregate arguments,
        # collected below.
        for t in query.tables:
            for c in db.catalog.table(t).schema.column_names:
                cols.append((t, c))
    for p in query.predicates:
        cols.append((p.table, p.column))
    for e in query.join_edges:
        cols.append((e.left_table, e.left_column))
        cols.append((e.right_table, e.right_column))
    for a in query.aggregates:
        if a.column is not None:
            cols.append((a.table, a.column))
    cols.extend(query.group_by)
    if query.order_by is not None:
        cols.append(query.order_by[0])
    return _dedupe(cols)


def classify(db, sql_text, deep=False):
    """Classify one statement without executing it.

    Extension inspectors (``db.pipeline.statement_inspectors`` — the
    read-only companions to statement hooks) are consulted first, so
    hooked statements (AISQL) classify like native SQL. Otherwise the
    head tokens are sniffed; with ``deep=True`` native statements are
    additionally parsed (and SELECTs lowered through the warm SQL-text
    cache) to resolve the tables and columns they reference.

    Deep classification of a malformed or unresolvable statement raises
    the same :class:`~repro.common.ParseError` /
    :class:`~repro.common.CatalogError` executing it would.
    """
    for inspector in db.pipeline.statement_inspectors:
        desc = inspector(db, sql_text)
        if desc is not None:
            return StatementInfo(
                sql_text,
                desc.get("kind", "UNKNOWN"),
                tables=desc.get("tables", ()),
                columns=_dedupe(desc.get("columns", ())),
                query=desc.get("query"),
                row_estimate=desc.get("row_estimate"),
                source="inspector",
            )
    kind = sniff_kind(sql_text)
    if not deep:
        return StatementInfo(sql_text, kind)
    if kind == "SELECT":
        query = db.pipeline.lower_sql(sql_text)
        return StatementInfo(
            sql_text, kind, tables=list(query.tables),
            columns=_query_columns(db, query), query=query,
            source="lowered",
        )
    if kind in ("PREDICT", "EVALUATE", "CREATE MODEL", "UNKNOWN"):
        # Extension statement with no inspector installed (or noise):
        # the kind gate still applies, but there is nothing to resolve.
        return StatementInfo(sql_text, kind)
    stmt = parse_sql(sql_text)
    if isinstance(stmt, InsertStmt):
        if stmt.columns:
            columns = [(stmt.table, c) for c in stmt.columns]
        elif db.catalog.has_table(stmt.table):
            columns = [(stmt.table, c) for c in
                       db.catalog.table(stmt.table).schema.column_names]
        else:
            columns = []
        return StatementInfo(
            sql_text, "INSERT", tables=[stmt.table], columns=columns,
            row_estimate=len(stmt.rows), source="parsed",
        )
    if isinstance(stmt, CreateTableStmt):
        return StatementInfo(
            sql_text, "CREATE TABLE", tables=[stmt.name], source="parsed")
    if isinstance(stmt, CreateIndexStmt):
        return StatementInfo(
            sql_text, "CREATE INDEX", tables=[stmt.table],
            columns=[(stmt.table, stmt.column)], source="parsed",
        )
    if isinstance(stmt, AnalyzeStmt):
        tables = ([stmt.table] if stmt.table
                  else db.catalog.table_names())
        return StatementInfo(
            sql_text, "ANALYZE", tables=tables, source="parsed")
    if isinstance(stmt, SelectStmt):  # sniff missed (leading comment etc.)
        query = db.pipeline.lower_sql(sql_text)
        return StatementInfo(
            sql_text, "SELECT", tables=list(query.tables),
            columns=_query_columns(db, query), query=query,
            source="lowered",
        )
    return StatementInfo(sql_text, "UNKNOWN", source="parsed")


class SessionResult:
    """The single result envelope every session statement returns.

    Attributes:
        sql: the statement text.
        kind: classified statement kind.
        raw: the legacy return value — an
            :class:`~repro.engine.executor.ExecutionResult` for SELECT,
            a status string for DDL/DML/ANALYZE, or the hook result for
            extension statements. The facades (``Database.execute`` et
            al.) return exactly this, so existing callers never see the
            envelope.
        decision: the :class:`PolicyDecision` that admitted the
            statement (``None`` on the ungated fast path).
        est_cost: the planner's pre-execution cost estimate, when one
            existed.
        audit_record: the :class:`~repro.engine.session.audit.
            AuditRecord` written for this statement (``None`` when the
            session has no audit log).
    """

    __slots__ = ("sql", "kind", "raw", "decision", "est_cost",
                 "audit_record")

    def __init__(self, sql, kind, raw, decision=None, est_cost=None,
                 audit_record=None):
        self.sql = sql
        self.kind = kind
        self.raw = raw
        self.decision = decision
        self.est_cost = est_cost
        self.audit_record = audit_record

    @property
    def rows(self):
        """Result rows for reads; ``None`` for statements without rows."""
        return getattr(self.raw, "rows", None)

    @property
    def columns(self):
        """Result column labels for reads, else ``None``."""
        return getattr(self.raw, "columns", None)

    @property
    def telemetry(self):
        """The run's :class:`ExecutionTelemetry`, when the statement
        executed through the executor."""
        return getattr(self.raw, "telemetry", None)

    @property
    def actual_work(self):
        """Measured executor work (settles against ``est_cost``)."""
        telemetry = self.telemetry
        if telemetry is not None:
            return telemetry.total_work
        return None

    def __repr__(self):
        n = self.rows
        return "SessionResult(%s%s)" % (
            self.kind, "" if n is None else ", %d rows" % len(n))


class StatementPreview:
    """One statement's dry-run verdict: what *would* happen.

    Attributes:
        sql / kind / tables / columns: from classification.
        decision: the policy verdict (``None`` without a policy).
        est_cost: planner cost estimate (SELECT and inspectable
            extension statements), flat :data:`WRITE_STATEMENT_COST`
            for writes.
        est_rows: planner row estimate (reads) or literal row count
            (INSERT).
        error: classification/planning failure message (the statement
            would fail the same way if executed), else ``None``.
    """

    __slots__ = ("sql", "kind", "tables", "columns", "decision",
                 "est_cost", "est_rows", "error")

    def __init__(self, sql, kind, tables=(), columns=(), decision=None,
                 est_cost=None, est_rows=None, error=None):
        self.sql = sql
        self.kind = kind
        self.tables = list(tables)
        self.columns = list(columns)
        self.decision = decision
        self.est_cost = est_cost
        self.est_rows = est_rows
        self.error = error

    @property
    def ok(self):
        """Whether the statement would be admitted and plans cleanly."""
        if self.error is not None:
            return False
        return self.decision is None or self.decision.allowed

    def __repr__(self):
        return "StatementPreview(%s, ok=%r, est_cost=%r)" % (
            self.kind, self.ok, self.est_cost)


class DryRunReport:
    """A whole script's dry run: per-statement previews, nothing executed.

    Iterable/indexable over its :class:`StatementPreview` entries.
    """

    __slots__ = ("statements",)

    def __init__(self, statements):
        self.statements = list(statements)

    @property
    def ok(self):
        """Whether every statement would be admitted and plans cleanly."""
        return all(p.ok for p in self.statements)

    @property
    def total_est_cost(self):
        """Sum of the known per-statement cost estimates."""
        return sum(p.est_cost for p in self.statements
                   if p.est_cost is not None)

    def denied(self):
        return [p for p in self.statements
                if p.decision is not None and not p.decision.allowed]

    def errors(self):
        return [p for p in self.statements if p.error is not None]

    def __iter__(self):
        return iter(self.statements)

    def __len__(self):
        return len(self.statements)

    def __getitem__(self, idx):
        return self.statements[idx]

    def __repr__(self):
        return "DryRunReport(%d statements, ok=%r, est_cost=%.1f)" % (
            len(self.statements), self.ok, self.total_est_cost)


# ---------------------------------------------------------------------------
# Backends: the three primitive operations each entry point supplies.
# ---------------------------------------------------------------------------
class LocalBackend:
    """Direct embedded execution against a live :class:`Database`."""

    read_only = False

    def __init__(self, db):
        self.db = db

    def run_raw(self, sql_text):
        """The exact legacy path: hooks → warm SQL cache → execute."""
        return self.db.pipeline.run_sql(sql_text)

    def read(self, prepared):
        return self.db.pipeline.execute_prepared(prepared)

    def write(self, sql_text):
        return self.db.pipeline.run_sql(sql_text)


class SnapshotBackend:
    """Read-only execution pinned to a :class:`CatalogSnapshot`."""

    read_only = True

    def __init__(self, db, snapshot):
        self.db = db
        self.snapshot = snapshot

    def run_raw(self, sql_text):
        # run_sql itself rejects non-SELECT under a snapshot, keeping
        # the legacy read-only error text.
        return self.db.pipeline.run_sql(sql_text, snapshot=self.snapshot)

    def read(self, prepared):
        return self.db.pipeline.execute_prepared(
            prepared, snapshot=self.snapshot)

    def write(self, sql_text):
        raise ExecutionError(
            "snapshot sessions are read-only: only SELECT is allowed")


class ServerBackend:
    """Execution through a :class:`QueryServer`'s admission + commit paths.

    Duck-typed: ``server`` is anything exposing ``pin_snapshot``,
    ``_run_read(session, prepared)`` and ``_run_write(session, sql)``;
    ``session`` is that server's session handle. (This module must not
    import the serving layer — it imports us.)
    """

    read_only = False

    def __init__(self, server, session):
        self.server = server
        self.session = session
        self.db = server.db

    def run_raw(self, sql_text):
        if sniff_kind(sql_text) == "SELECT":
            prepared = self.db.pipeline.prepare_sql(sql_text)
            return self.server._run_read(self.session, prepared)
        return self.server._run_write(self.session, sql_text)

    def read(self, prepared):
        return self.server._run_read(self.session, prepared)

    def write(self, sql_text):
        return self.server._run_write(self.session, sql_text)


class SessionContext:
    """One caller's gated, audited view of the engine.

    Args:
        db: the underlying :class:`~repro.engine.database.Database`.
        backend: the execution strategy (defaults to a
            :class:`LocalBackend` over ``db``).
        policy: an optional :class:`Policy`; every statement is
            classified deeply and checked before (and reads after)
            execution.
        audit: an optional :class:`~repro.engine.session.audit.AuditLog`;
            every statement — allowed, denied, or failed — is appended.

    With neither policy nor audit the context is a zero-overhead facade:
    statements flow through the backend's raw path untouched.
    """

    def __init__(self, db, backend=None, policy=None, audit=None):
        self.db = db
        self.backend = backend if backend is not None else LocalBackend(db)
        self.policy = policy
        self.audit = audit

    @property
    def gated(self):
        """Whether statements go through classify/check/record."""
        return self.policy is not None or self.audit is not None

    # -- unified statement surface --------------------------------------
    def execute(self, sql_text):
        """Run one statement; returns a :class:`SessionResult`.

        Ungated sessions take the exact legacy path. Gated sessions
        classify the statement (deep — real tables and columns), check
        the policy, route SELECTs through prepare (so the audit log
        records estimated vs. actual cost), enforce row limits on the
        realized result, and audit the outcome — including denials and
        execution failures.
        """
        if not self.gated:
            raw = self.backend.run_raw(sql_text)
            return SessionResult(sql_text, sniff_kind(sql_text), raw)
        return self._execute_gated(sql_text)

    def query(self, sql_text):
        """Run one SELECT; returns just the rows."""
        return self.execute(sql_text).rows

    def explain(self, sql_text):
        """Plan a SELECT without executing (policy-checked when gated)."""
        if self.policy is not None:
            info = classify(self.db, sql_text, deep=True)
            self.policy.check_statement(info).raise_if_denied(sql_text)
        return self.db.pipeline.explain(sql_text)

    def prepare(self, sql_text):
        """Plan a SELECT through the warm caches without executing.

        Returns a :class:`~repro.engine.pipeline.PreparedQuery`; gated
        sessions check the policy (statement + cost gates) first.
        """
        if self.policy is not None:
            info = classify(self.db, sql_text, deep=True)
            self.policy.check_statement(info).raise_if_denied(sql_text)
        prepared = self.db.pipeline.prepare_sql(sql_text)
        if self.policy is not None:
            self.policy.check_cost(prepared.est_cost).raise_if_denied(
                sql_text)
        return prepared

    def run_script(self, script):
        """Execute a multi-statement script, statement by statement.

        Returns the list of :class:`SessionResult`; the first failure
        propagates (earlier statements stay applied — wrap the script in
        an :class:`~repro.engine.session.agent.AgentSession` transaction
        to make it all-or-nothing).
        """
        return [self.execute(stmt) for stmt in split_script(script)]

    # -- dry run ---------------------------------------------------------
    def dry_run(self, script):
        """Plan every statement of a script without executing anything.

        Each statement is classified, policy-checked, and — where a
        planner estimate exists (SELECT always; AISQL when its inspector
        is installed; INSERT from its literal rows) — costed. Returns a
        :class:`DryRunReport`. Per-statement failures are captured in
        the preview (``error``), never raised, so one bad statement
        doesn't hide the rest of the report.

        Planning runs against the *current* catalog: a statement that
        depends on earlier uncommitted DDL in the same script previews
        as an error, which is itself useful signal.
        """
        previews = []
        for sql_text in split_script(script):
            previews.append(self._preview(sql_text))
        return DryRunReport(previews)

    def _preview(self, sql_text):
        try:
            info = classify(self.db, sql_text, deep=True)
        except EngineError as exc:
            return StatementPreview(
                sql_text, sniff_kind(sql_text), error=str(exc))
        decision = (self.policy.check_statement(info)
                    if self.policy is not None else None)
        est_cost = None
        est_rows = None
        error = None
        try:
            if info.kind == "SELECT":
                prepared = self.db.pipeline.prepare_sql(sql_text)
                est_cost = prepared.est_cost
                est_rows = prepared.plan.est_rows
            elif info.query is not None:
                # Extension statement (AISQL) whose inspector exposed a
                # cost-estimable feature query: plan it.
                prepared = self.db.pipeline.prepare_query(info.query)
                est_cost = prepared.est_cost
                est_rows = prepared.plan.est_rows
            elif info.kind == "INSERT":
                est_cost = WRITE_STATEMENT_COST
                est_rows = info.row_estimate
            elif info.kind in ("CREATE TABLE", "CREATE INDEX", "ANALYZE",
                               "CREATE MODEL"):
                est_cost = WRITE_STATEMENT_COST
        except EngineError as exc:
            error = str(exc)
        if (decision is not None and decision.allowed
                and self.policy is not None):
            cost_decision = self.policy.check_cost(est_cost)
            if not cost_decision.allowed:
                decision = cost_decision
        return StatementPreview(
            sql_text, info.kind, tables=info.tables, columns=info.columns,
            decision=decision, est_cost=est_cost, est_rows=est_rows,
            error=error,
        )

    # -- gated execution -------------------------------------------------
    def _versions(self):
        return dict(self.db.catalog.version_vector())

    def _audit(self, sql_text, kind, decision, status, **fields):
        if self.audit is None:
            return None
        rule = decision.rule if decision is not None else "default"
        verdict = decision.verdict if decision is not None else "allow"
        return self.audit.record(
            sql_text, kind, verdict, rule, status,
            versions=self._versions(), **fields)

    def _execute_gated(self, sql_text):
        try:
            info = classify(self.db, sql_text, deep=True)
        except EngineError as exc:
            self._audit(sql_text, sniff_kind(sql_text), None, "error",
                        error=str(exc))
            raise
        decision = (self.policy.check_statement(info)
                    if self.policy is not None
                    else PolicyDecision.allow())
        if not decision.allowed:
            self._audit(sql_text, info.kind, decision, "denied",
                        error=decision.reason)
            decision.raise_if_denied(sql_text)
        if info.kind == "SELECT":
            return self._gated_read(sql_text, info, decision)
        return self._gated_raw(sql_text, info, decision)

    def _gated_read(self, sql_text, info, decision):
        """SELECT under gates: prepare → cost gate → execute → row gate."""
        try:
            prepared = self.db.pipeline.prepare_sql(sql_text)
        except EngineError as exc:
            self._audit(sql_text, info.kind, decision, "error",
                        error=str(exc))
            raise
        est_cost = prepared.est_cost
        if self.policy is not None:
            cost_decision = self.policy.check_cost(est_cost)
            if not cost_decision.allowed:
                self._audit(sql_text, info.kind, cost_decision, "denied",
                            error=cost_decision.reason, est_cost=est_cost)
                cost_decision.raise_if_denied(sql_text)
        try:
            raw = self.backend.read(prepared)
        except EngineError as exc:
            self._audit(sql_text, info.kind, decision, "error",
                        error=str(exc), est_cost=est_cost)
            raise
        n_rows = len(raw.rows)
        if self.policy is not None:
            row_decision = self.policy.check_result_rows(n_rows)
            if not row_decision.allowed:
                # The read already ran (limits on realized size can only
                # be checked after execution) — the result is withheld
                # and the overrun audited.
                self._audit(sql_text, info.kind, row_decision, "denied",
                            error=row_decision.reason, est_cost=est_cost,
                            actual_work=raw.telemetry.total_work,
                            n_rows=n_rows)
                row_decision.raise_if_denied(sql_text)
        record = self._audit(
            sql_text, info.kind, decision, "ok", est_cost=est_cost,
            actual_work=raw.telemetry.total_work, n_rows=n_rows,
            telemetry=raw.telemetry.brief(),
        )
        return SessionResult(sql_text, info.kind, raw, decision=decision,
                             est_cost=est_cost, audit_record=record)

    def _gated_raw(self, sql_text, info, decision):
        """Everything else under gates: cost gate → raw path → audit."""
        est_cost = None
        if info.query is not None:
            try:
                est_cost = self.db.pipeline.prepare_query(
                    info.query).est_cost
            except EngineError:
                est_cost = None
        elif info.kind in ("INSERT", "CREATE TABLE", "CREATE INDEX",
                           "ANALYZE", "CREATE MODEL"):
            est_cost = WRITE_STATEMENT_COST
        if self.policy is not None and est_cost is not None:
            cost_decision = self.policy.check_cost(est_cost)
            if not cost_decision.allowed:
                self._audit(sql_text, info.kind, cost_decision, "denied",
                            error=cost_decision.reason, est_cost=est_cost)
                cost_decision.raise_if_denied(sql_text)
        try:
            raw = self.backend.run_raw(sql_text)
        except EngineError as exc:
            self._audit(sql_text, info.kind, decision, "error",
                        error=str(exc), est_cost=est_cost)
            raise
        telemetry = getattr(raw, "telemetry", None)
        rows = getattr(raw, "rows", None)
        n_rows = len(rows) if rows is not None else info.row_estimate
        if (self.policy is not None and rows is not None):
            # Extension reads (AISQL PREDICT) return row-shaped results
            # outside the prepare path; the row gate still applies.
            row_decision = self.policy.check_result_rows(len(rows))
            if not row_decision.allowed:
                self._audit(sql_text, info.kind, row_decision, "denied",
                            error=row_decision.reason, est_cost=est_cost,
                            n_rows=len(rows))
                row_decision.raise_if_denied(sql_text)
        record = self._audit(
            sql_text, info.kind, decision, "ok", est_cost=est_cost,
            actual_work=(telemetry.total_work
                         if telemetry is not None else None),
            n_rows=n_rows,
            telemetry=(telemetry.brief()
                       if telemetry is not None else None),
        )
        return SessionResult(sql_text, info.kind, raw, decision=decision,
                             est_cost=est_cost, audit_record=record)

    def __repr__(self):
        gates = []
        if self.policy is not None:
            gates.append(repr(self.policy))
        if self.audit is not None:
            gates.append(repr(self.audit))
        return "SessionContext(%s%s)" % (
            type(self.backend).__name__,
            (", " + ", ".join(gates)) if gates else "")
