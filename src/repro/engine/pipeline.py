"""The staged query pipeline: parse → lower → rewrite → plan → execute.

The AI4DB thesis is that every stage of the query lifecycle is a pluggable
learning target. :class:`QueryPipeline` makes the lifecycle explicit: each
stage is named, timed into a
:class:`~repro.engine.telemetry.PipelineTelemetry` record, and carries a
hook list so learned components can observe or replace a stage's output
without subclassing the :class:`~repro.engine.database.Database` façade.

Between the rewrite and plan stages sits a **plan cache**: an LRU map from
``(query.signature(), explicit_order)`` to a physical plan, where every
entry also stores the invalidation token — the :attr:`Catalog.epoch
<repro.engine.catalog.Catalog.epoch>` paired with the feedback store's
drift version — it was planned under. Any catalog mutation (CREATE/DROP
TABLE, CREATE INDEX, INSERT, ANALYZE, view registration) advances the
epoch, and (with feedback enabled) any observed cardinality drift bumps
the feedback version, so a stale plan is never served — the entry is
dropped and the query is replanned. Repeated workload queries
(the experiment harness loops, the NEO-lite learning loop, AISQL
``PREDICT``) therefore skip join enumeration entirely; repeated *SQL text*
additionally skips parsing and lowering via a second epoch-guarded cache.

Cache-key / epoch invariants:

* the plan cache key is the **full** query signature (joins, predicates,
  projections, aggregates, grouping, ordering, limit, distinct) plus the
  explicit join order if one was supplied — queries differing in any of
  those never share an entry;
* keys are computed **after** the rewrite stage, so a changed rewriter
  maps queries to different signatures and can never revive a plan for a
  query it no longer produces;
* an entry hits only while ``entry.epoch == catalog.epoch``; planning
  re-reads the epoch after the planner runs, because planning itself may
  lazily ANALYZE a table (which bumps the epoch);
* registering a plan-stage hook or swapping the rewriter clears the cache
  outright (hooks may transform plans statefully). Swapping planner
  internals by hand (``db.planner.estimator = ...``) is the one mutation
  the epoch cannot see — call :meth:`QueryPipeline.invalidate` after it.
"""

import threading
import time
from collections import OrderedDict

from repro.common import ParseError, PlanError
from repro.engine.fusion import fuse_plan
from repro.engine.optimizer.feedback import ingest_execution
from repro.engine.plans import pretty_analyze
from repro.engine.sql.ast_nodes import (
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    InsertStmt,
    SelectStmt,
)
from repro.engine.sql.lowering import lower_select
from repro.engine.sql.parser import parse_sql
from repro.engine.telemetry import PipelineTelemetry

#: Pipeline stage names, in execution order.
PIPELINE_STAGES = ("parse", "lower", "rewrite", "plan", "execute")


class ExplainResult:
    """Structured EXPLAIN output.

    ``str()`` of an ExplainResult is exactly the classic indented plan
    text (and ``==`` / ``in`` defer to it), so callers that treated
    ``Database.explain`` as returning a string keep working unchanged.
    The structured fields are the supported surface for tools:

    Attributes:
        text: the plan rendered by ``plan.pretty()``.
        plan: the (unfused) :class:`~repro.engine.plans.PhysicalPlan`.
        fused_ops: how many tail stages the executor's fusion pass will
            collapse when this plan is executed (0 when fusion is off or
            the tail is not fusible).
        cache_hit: whether the plan came from the plan cache.
        node_stats: for EXPLAIN ANALYZE only — the per-node
            est-vs-actual records from the run's telemetry (plan
            preorder); ``None`` for a plain EXPLAIN.
        result: for EXPLAIN ANALYZE only — the
            :class:`~repro.engine.executor.ExecutionResult` of the run;
            ``None`` for a plain EXPLAIN.
        segments_total: EXPLAIN ANALYZE only — row groups the run's
            scans considered (0 for a plain EXPLAIN).
        segments_pruned: EXPLAIN ANALYZE only — row groups skipped
            entirely via zone maps.
        bytes_decoded: EXPLAIN ANALYZE only — modeled encoded bytes of
            the segments that were actually materialized.
    """

    __slots__ = ("text", "plan", "fused_ops", "cache_hit", "node_stats",
                 "result", "segments_total", "segments_pruned",
                 "bytes_decoded")

    def __init__(self, text, plan, fused_ops=0, cache_hit=False,
                 node_stats=None, result=None, segments_total=0,
                 segments_pruned=0, bytes_decoded=0):
        self.text = text
        self.plan = plan
        self.fused_ops = fused_ops
        self.cache_hit = cache_hit
        self.node_stats = node_stats
        self.result = result
        self.segments_total = segments_total
        self.segments_pruned = segments_pruned
        self.bytes_decoded = bytes_decoded

    def __str__(self):
        return self.text

    def __contains__(self, needle):
        return needle in self.text

    def __eq__(self, other):
        if isinstance(other, ExplainResult):
            return self.text == other.text
        if isinstance(other, str):
            return self.text == other
        return NotImplemented

    def __hash__(self):
        return hash(self.text)

    def __repr__(self):
        return "ExplainResult(cache_hit=%r, fused_ops=%d)" % (
            self.cache_hit, self.fused_ops,
        )


class _CacheEntry:
    __slots__ = ("value", "epoch", "hits")

    def __init__(self, value, epoch):
        self.value = value
        self.epoch = epoch
        self.hits = 0


class PlanCache:
    """An LRU cache whose entries are invalidated by catalog-epoch drift.

    Args:
        capacity: maximum number of live entries; least-recently-used
            entries are evicted beyond it.

    Counters (``hits``/``misses``/``invalidations``) are cumulative until
    :meth:`reset_counters`; entries survive counter resets and are dropped
    only by epoch drift, LRU eviction, or :meth:`clear`.

    Thread safety: every operation holds one internal lock, so concurrent
    ``execute()`` calls (and a mutator bumping the catalog epoch between
    them) see a consistent cache — lookup + stale-entry removal is atomic,
    and counters never drift from the entries they describe.
    """

    def __init__(self, capacity=256):
        if capacity < 1:
            raise PlanError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key, epoch):
        """The cached value for ``key`` at ``epoch``, or ``None``.

        An entry stored under a different epoch is stale: it is removed,
        counted as an invalidation, and the lookup is a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.epoch != epoch:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry.value

    def put(self, key, value, epoch):
        """Insert/replace ``key``, evicting the LRU entry if over capacity."""
        with self._lock:
            self._entries[key] = _CacheEntry(value, epoch)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self):
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def reset_counters(self):
        """Zero the hit/miss/invalidation counters (entries are kept)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    def stats(self):
        """A plain-dict counter snapshot (JSON-friendly)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def __repr__(self):
        return "PlanCache(size=%d/%d, hits=%d, misses=%d)" % (
            len(self._entries), self.capacity, self.hits, self.misses,
        )


class QueryPipeline:
    """The staged query lifecycle of one :class:`Database`.

    Args:
        database: the owning :class:`~repro.engine.database.Database`
            (supplies catalog, planner, executor).
        plan_cache_size: LRU capacity of the plan cache (and of the
            SQL-text → lowered-query cache).

    Extension points:

    * ``statement_hooks`` — callables ``(db, sql_text) -> result or None``
      that intercept raw SQL before parsing (the AISQL layer lives here).
    * ``rewriter`` — a single ``callable(query) -> query`` applied in the
      rewrite stage (the classic ``Database.rewriter`` attribute).
    * :meth:`add_stage_hook` — per-stage transform hooks
      ``callable(stage_output) -> replacement or None`` applied after the
      stage runs ("parse" sees the AST, "lower"/"rewrite" the structured
      query, "plan" the physical plan, "execute" the execution result).

    Every run is timed per stage; :meth:`stats` reports the cumulative
    planning-vs-execution split plus plan-cache hit/miss counters.
    """

    def __init__(self, database, plan_cache_size=256):
        self.db = database
        self.statement_hooks = []
        self.stage_hooks = {stage: [] for stage in PIPELINE_STAGES}
        self._rewriter = None
        self.plan_cache = PlanCache(plan_cache_size)
        self.query_cache = PlanCache(plan_cache_size)
        self._runs = 0
        self._stats_lock = threading.Lock()
        self._stage_totals = {
            stage: {"count": 0, "seconds": 0.0} for stage in PIPELINE_STAGES
        }

    # -- extension points --------------------------------------------------
    @property
    def rewriter(self):
        """The rewrite-stage callable (``None`` when not installed)."""
        return self._rewriter

    @rewriter.setter
    def rewriter(self, fn):
        self._rewriter = fn
        # Conservative: a different rewriter may map the same input query
        # to different plans; start from a cold cache.
        self.plan_cache.clear()

    def add_stage_hook(self, stage, hook):
        """Register a transform hook on one named stage.

        The hook receives the stage's output and may return a replacement
        (or ``None`` to leave it unchanged). Registering a hook clears the
        plan cache, since cached plans were produced without it.
        """
        if stage not in self.stage_hooks:
            raise PlanError(
                "unknown pipeline stage %r (stages: %s)"
                % (stage, ", ".join(PIPELINE_STAGES))
            )
        self.stage_hooks[stage].append(hook)
        self.plan_cache.clear()
        return hook

    def _apply_hooks(self, stage, value):
        for hook in self.stage_hooks[stage]:
            out = hook(value)
            if out is not None:
                value = out
        return value

    # -- entry points ------------------------------------------------------
    def run_sql(self, sql_text):
        """Run one SQL (or hooked AISQL) statement through the pipeline.

        Returns whatever the statement produces: an
        :class:`~repro.engine.executor.ExecutionResult` for SELECT, a
        status string for DDL/DML/ANALYZE, or the hook's result for
        intercepted statements.
        """
        for hook in self.statement_hooks:
            result = hook(self.db, sql_text)
            if result is not None:
                return result
        telemetry = PipelineTelemetry()
        # Warm SQL path: a previously lowered SELECT at the current epoch
        # skips parse + lower entirely.
        epoch = self.db.catalog.epoch
        t0 = time.perf_counter()
        query = self.query_cache.get(sql_text, epoch)
        if query is not None:
            telemetry.record_stage("lower", time.perf_counter() - t0)
            return self._run_query(query, telemetry)
        t0 = time.perf_counter()
        stmt = parse_sql(sql_text)
        telemetry.record_stage("parse", time.perf_counter() - t0)
        stmt = self._apply_hooks("parse", stmt)
        if isinstance(stmt, SelectStmt):
            t0 = time.perf_counter()
            query = lower_select(stmt, self.db.catalog)
            query = self._apply_hooks("lower", query)
            self.query_cache.put(sql_text, query, epoch)
            telemetry.record_stage("lower", time.perf_counter() - t0)
            return self._run_query(query, telemetry)
        result = self._run_statement(stmt, telemetry)
        self._accumulate(telemetry)
        return result

    def run_query(self, query, order=None):
        """Run a structured :class:`ConjunctiveQuery` (rewrite → plan →
        execute), optionally under an explicit left-deep join ``order``."""
        return self._run_query(query, PipelineTelemetry(), order=order)

    def explain(self, sql_text):
        """Plan a SELECT (through the cache) without executing it.

        Returns an :class:`ExplainResult`; its ``str()`` is the plan
        text, and ``fused_ops`` previews what the executor's fusion pass
        will collapse at execution time.
        """
        telemetry = PipelineTelemetry()
        t0 = time.perf_counter()
        stmt = parse_sql(sql_text)
        telemetry.record_stage("parse", time.perf_counter() - t0)
        if not isinstance(stmt, SelectStmt):
            raise ParseError("EXPLAIN supports only SELECT statements")
        t0 = time.perf_counter()
        query = lower_select(stmt, self.db.catalog)
        telemetry.record_stage("lower", time.perf_counter() - t0)
        query = self._rewrite(query, telemetry)
        plan = self._plan(query, telemetry, order=None)
        fused_ops = 0
        if self.db.executor.fusion_enabled:
            __, fused_ops = fuse_plan(plan)
        self._accumulate(telemetry)
        return ExplainResult(
            text=plan.pretty(),
            plan=plan,
            fused_ops=fused_ops,
            cache_hit=bool(telemetry.cache_hit),
        )

    def explain_analyze(self, sql_text):
        """Execute a SELECT and render est-vs-actual rows per plan node.

        The EXPLAIN-ANALYZE view: the query runs for real (through the
        plan cache, fusion, and — when enabled — feedback ingestion), and
        the returned :class:`ExplainResult` renders each node of the
        unfused plan with its estimated rows, executor-counted actual
        rows, and q-error. ``result`` carries the run's
        :class:`~repro.engine.executor.ExecutionResult` (rows included),
        ``node_stats`` the structured per-node records.
        """
        telemetry = PipelineTelemetry()
        t0 = time.perf_counter()
        stmt = parse_sql(sql_text)
        telemetry.record_stage("parse", time.perf_counter() - t0)
        if not isinstance(stmt, SelectStmt):
            raise ParseError("EXPLAIN ANALYZE supports only SELECT statements")
        t0 = time.perf_counter()
        query = lower_select(stmt, self.db.catalog)
        telemetry.record_stage("lower", time.perf_counter() - t0)
        query = self._rewrite(query, telemetry)
        plan = self._plan(query, telemetry, order=None)
        t0 = time.perf_counter()
        result = self.db.executor.execute(plan)
        telemetry.record_stage("execute", time.perf_counter() - t0)
        telemetry.execution = result.telemetry
        result.pipeline_telemetry = telemetry
        self._ingest_feedback(query, plan, result)
        self._accumulate(telemetry)
        node_stats = result.telemetry.node_stats
        run = result.telemetry
        text = pretty_analyze(plan, node_stats)
        if run.segments_total:
            text += "\nSegments: %d scanned, %d pruned (%d bytes decoded)" % (
                run.segments_total - run.segments_pruned,
                run.segments_pruned,
                run.bytes_decoded,
            )
        return ExplainResult(
            text=text,
            plan=plan,
            fused_ops=run.fused_ops,
            cache_hit=bool(telemetry.cache_hit),
            node_stats=node_stats,
            result=result,
            segments_total=run.segments_total,
            segments_pruned=run.segments_pruned,
            bytes_decoded=run.bytes_decoded,
        )

    # -- stages ------------------------------------------------------------
    def _rewrite(self, query, telemetry):
        t0 = time.perf_counter()
        if self._rewriter is not None:
            out = self._rewriter(query)
            if out is not None:
                query = out
        query = self._apply_hooks("rewrite", query)
        telemetry.record_stage("rewrite", time.perf_counter() - t0)
        return query

    def _plan_token(self):
        """The plan cache's invalidation token: catalog epoch paired with
        the feedback store's drift version. Either moving (schema/data
        change, or observed cardinality drift) drops cached plans so the
        query replans against current state."""
        return (self.db.catalog.epoch, getattr(self.db, "feedback_version", 0))

    def _plan(self, query, telemetry, order=None):
        t0 = time.perf_counter()
        key = (
            query.signature(),
            None if order is None else tuple(t.lower() for t in order),
        )
        plan = self.plan_cache.get(key, self._plan_token())
        telemetry.cache_hit = plan is not None
        if plan is None:
            plan = self.db.planner.plan(query, order=order)
            plan = self._apply_hooks("plan", plan)
            # Re-read the token: planning may lazily ANALYZE (epoch bump),
            # and the entry must match the state the plan was built from.
            self.plan_cache.put(key, plan, self._plan_token())
        telemetry.record_stage("plan", time.perf_counter() - t0)
        return plan

    def _run_query(self, query, telemetry, order=None):
        query = self._rewrite(query, telemetry)
        plan = self._plan(query, telemetry, order=order)
        t0 = time.perf_counter()
        result = self.db.executor.execute(plan)
        telemetry.record_stage("execute", time.perf_counter() - t0)
        result = self._apply_hooks("execute", result)
        telemetry.execution = result.telemetry
        result.pipeline_telemetry = telemetry
        self._ingest_feedback(query, plan, result)
        self._accumulate(telemetry)
        return result

    def _ingest_feedback(self, query, plan, result):
        """Close the cardinality loop: observed actuals → feedback store."""
        store = getattr(self.db, "feedback", None)
        if store is None or result.telemetry is None:
            return
        node_stats = result.telemetry.node_stats
        if node_stats:
            ingest_execution(store, query, plan, node_stats)

    def _run_statement(self, stmt, telemetry):
        """DDL/DML/ANALYZE: executed directly against the catalog."""
        t0 = time.perf_counter()
        try:
            if isinstance(stmt, CreateTableStmt):
                self.db.catalog.create_table(stmt.name, stmt.columns)
                return "CREATE TABLE"
            if isinstance(stmt, CreateIndexStmt):
                self.db.catalog.create_index(
                    stmt.name, stmt.table, stmt.column, kind=stmt.kind,
                    hypothetical=stmt.hypothetical,
                )
                return "CREATE INDEX"
            if isinstance(stmt, InsertStmt):
                return "INSERT %d" % self._insert(stmt)
            if isinstance(stmt, AnalyzeStmt):
                self.db.catalog.analyze(stmt.table)
                return "ANALYZE"
            raise ParseError("unhandled statement %r" % (stmt,))
        finally:
            telemetry.record_stage("execute", time.perf_counter() - t0)

    def _insert(self, stmt):
        table = self.db.catalog.table(stmt.table)
        rows = stmt.rows
        if stmt.columns:
            positions = [table.schema.column_index(c) for c in stmt.columns]
            width = len(table.schema.columns)
            reordered = []
            for r in rows:
                if len(r) != len(positions):
                    raise ParseError(
                        "INSERT row width %d != column list width %d"
                        % (len(r), len(positions))
                    )
                full = [None] * width
                for pos, v in zip(positions, r):
                    full[pos] = v
                reordered.append(full)
            rows = reordered
        return table.insert_rows(rows)

    # -- telemetry ---------------------------------------------------------
    def _accumulate(self, telemetry):
        with self._stats_lock:
            self._runs += 1
            for stage, seconds in telemetry.stages.items():
                entry = self._stage_totals[stage]
                entry["count"] += 1
                entry["seconds"] += seconds

    def stats(self):
        """Cumulative pipeline statistics since the last :meth:`reset_stats`.

        Returns a JSON-friendly dict with the run count, per-stage
        count/seconds, the planning-vs-execution wall-time split, and the
        plan/query cache counters.
        """
        planning = sum(
            self._stage_totals[s]["seconds"]
            for s in ("parse", "lower", "rewrite", "plan")
        )
        return {
            "runs": self._runs,
            "stages": {
                stage: dict(entry)
                for stage, entry in self._stage_totals.items()
                if entry["count"]
            },
            "planning_seconds": planning,
            "execution_seconds": self._stage_totals["execute"]["seconds"],
            "plan_cache": self.plan_cache.stats(),
            "query_cache": self.query_cache.stats(),
        }

    def reset_stats(self):
        """Zero stage timings and cache counters (cache entries are kept)."""
        self._runs = 0
        for entry in self._stage_totals.values():
            entry["count"] = 0
            entry["seconds"] = 0.0
        self.plan_cache.reset_counters()
        self.query_cache.reset_counters()

    def invalidate(self):
        """Drop every cached plan and lowered query.

        Needed only for mutations the catalog epoch cannot observe, such
        as swapping ``db.planner.estimator`` in place.
        """
        self.plan_cache.clear()
        self.query_cache.clear()

    def __repr__(self):
        return "QueryPipeline(runs=%d, %r)" % (self._runs, self.plan_cache)
