"""The staged query pipeline: parse → lower → rewrite → plan → execute.

The AI4DB thesis is that every stage of the query lifecycle is a pluggable
learning target. :class:`QueryPipeline` makes the lifecycle explicit: each
stage is named, timed into a
:class:`~repro.engine.telemetry.PipelineTelemetry` record, and carries a
hook list so learned components can observe or replace a stage's output
without subclassing the :class:`~repro.engine.database.Database` façade.

Between the rewrite and plan stages sits a **plan cache**: an LRU map from
``(query.signature(), explicit_order)`` to a physical plan, where every
entry also stores the invalidation token it was planned under. The token
is **scoped to the tables the query touches**: the catalog's
:meth:`~repro.engine.catalog.Catalog.version_vector` restricted to the
query's table set, paired with the feedback store's per-table drift
vector over the same set. A mutation (CREATE/DROP TABLE, CREATE INDEX,
INSERT, ANALYZE, view registration) bumps only the affected tables'
versions, so a hot writer on ``orders`` drops cached plans over
``orders`` while plans over ``customers`` keep hitting — under the
legacy ``cache_scope="global"`` config the token collapses to the single
derived epoch and any write anywhere invalidates everything. Repeated
workload queries (the experiment harness loops, the NEO-lite learning
loop, AISQL ``PREDICT``) therefore skip join enumeration entirely;
repeated *SQL text* additionally skips parsing and lowering via a second
cache guarded by the coarser :attr:`~repro.engine.catalog.Catalog.
schema_epoch` (lowering depends only on name resolution, so inserts and
ANALYZE leave warm SQL text warm).

Cache-key / token invariants:

* the plan cache key is the **full** query signature (joins, predicates,
  projections, aggregates, grouping, ordering, limit, distinct) plus the
  explicit join order if one was supplied — queries differing in any of
  those never share an entry; under a non-default plan selector the
  hint-set **arm name** joins the key too, so every arm caches its own
  candidate (scoped invalidation drops all of a query's arms together,
  since they share the same token);
* keys are computed **after** the rewrite stage, so a changed rewriter
  maps queries to different signatures and can never revive a plan for a
  query it no longer produces;
* an entry hits only while its stored token equals the current one;
  planning re-reads the token after the planner runs, because planning
  itself may lazily ANALYZE a table (which bumps that table's version);
* a stale entry's token is diffed against the current one to report the
  **invalidation cause** (``table:<name>`` / ``feedback:<name>``) in
  pipeline telemetry and EXPLAIN ANALYZE;
* registering a plan-stage hook or swapping the rewriter clears the cache
  outright (hooks may transform plans statefully). Swapping planner
  internals by hand (``db.planner.estimator = ...``) is the one mutation
  the token cannot see — call :meth:`QueryPipeline.invalidate` after it.

Snapshot reads: :meth:`run_sql`/:meth:`run_query` accept an immutable
:class:`~repro.engine.catalog.CatalogSnapshot`. Planning (and the warm
plan cache) stays shared with the live database, but execution is pinned
to the snapshot via the executor's per-run catalog override, feedback
ingestion is skipped (actuals reflect pinned data), and only SELECT is
allowed — the ``db.snapshot()`` read API.
"""

import threading
import time
from collections import OrderedDict
from dataclasses import replace

from repro.common import ExecutionError, ParseError, PlanError
from repro.engine.fusion import fuse_plan
from repro.engine.optimizer.feedback import ingest_execution
from repro.engine.optimizer.selection import plan_features
from repro.engine.plans import pretty_analyze
from repro.engine.sql.ast_nodes import (
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    InsertStmt,
    SelectStmt,
)
from repro.engine.sql.lowering import lower_select
from repro.engine.sql.parser import parse_sql
from repro.engine.telemetry import PipelineTelemetry

#: Pipeline stage names, in execution order.
PIPELINE_STAGES = ("parse", "lower", "rewrite", "plan", "execute")


def _invalidation_cause(stale, current):
    """Name the token component that invalidated a cached plan.

    Diffs a stale ``(catalog_pairs, feedback_pairs)`` token against the
    current one: a catalog-version mismatch reports ``"table:<name>"``
    (under the global scope, ``"table:*"``), a feedback-drift mismatch
    ``"feedback:<name>"``, and a shape change (e.g. the cache scope was
    reconfigured mid-flight) falls back to ``"token"``.
    """
    try:
        stale_cat, stale_fb = dict(stale[0]), dict(stale[1])
        cur_cat, cur_fb = dict(current[0]), dict(current[1])
    except (TypeError, ValueError, IndexError):
        return "token"
    for name in sorted(set(stale_cat) | set(cur_cat)):
        if stale_cat.get(name) != cur_cat.get(name):
            return "table:%s" % name
    for name in sorted(set(stale_fb) | set(cur_fb)):
        if stale_fb.get(name) != cur_fb.get(name):
            return "feedback:%s" % name
    return "token"


class ExplainResult:
    """Structured EXPLAIN output.

    ``str()`` of an ExplainResult is exactly the classic indented plan
    text (and ``==`` / ``in`` defer to it), so callers that treated
    ``Database.explain`` as returning a string keep working unchanged.
    The structured fields are the supported surface for tools:

    Attributes:
        text: the plan rendered by ``plan.pretty()``.
        plan: the (unfused) :class:`~repro.engine.plans.PhysicalPlan`.
        fused_ops: how many tail stages the executor's fusion pass will
            collapse when this plan is executed (0 when fusion is off or
            the tail is not fusible).
        cache_hit: whether the plan came from the plan cache.
        node_stats: for EXPLAIN ANALYZE only — the per-node
            est-vs-actual records from the run's telemetry (plan
            preorder); ``None`` for a plain EXPLAIN.
        result: for EXPLAIN ANALYZE only — the
            :class:`~repro.engine.executor.ExecutionResult` of the run;
            ``None`` for a plain EXPLAIN.
        segments_total: EXPLAIN ANALYZE only — row groups the run's
            scans considered (0 for a plain EXPLAIN).
        segments_pruned: EXPLAIN ANALYZE only — row groups skipped
            entirely via zone maps.
        bytes_decoded: EXPLAIN ANALYZE only — modeled encoded bytes of
            the segments that were actually materialized.
        version_vector: the per-table catalog versions the plan stage
            keyed on — ``((table, version), ...)`` restricted to the
            query's tables (``None`` when planning never ran).
        cache_outcome: the plan-cache lookup's verdict — ``"hit"``,
            ``"miss"``, or ``"invalidated"`` (``None`` when unknown).
        invalidation_cause: for ``"invalidated"`` — which token component
            moved (``"table:<name>"`` / ``"feedback:<name>"``), else
            ``None``.
        arm: the hint-set arm the plan selector chose (``None`` under
            the default single-path cost selector).
    """

    __slots__ = ("text", "plan", "fused_ops", "cache_hit", "node_stats",
                 "result", "segments_total", "segments_pruned",
                 "bytes_decoded", "version_vector", "cache_outcome",
                 "invalidation_cause", "arm")

    def __init__(self, text, plan, fused_ops=0, cache_hit=False,
                 node_stats=None, result=None, segments_total=0,
                 segments_pruned=0, bytes_decoded=0, version_vector=None,
                 cache_outcome=None, invalidation_cause=None, arm=None):
        self.text = text
        self.plan = plan
        self.fused_ops = fused_ops
        self.cache_hit = cache_hit
        self.node_stats = node_stats
        self.result = result
        self.segments_total = segments_total
        self.segments_pruned = segments_pruned
        self.bytes_decoded = bytes_decoded
        self.version_vector = version_vector
        self.cache_outcome = cache_outcome
        self.invalidation_cause = invalidation_cause
        self.arm = arm

    def __str__(self):
        return self.text

    def __contains__(self, needle):
        return needle in self.text

    def __eq__(self, other):
        if isinstance(other, ExplainResult):
            return self.text == other.text
        if isinstance(other, str):
            return self.text == other
        return NotImplemented

    def __hash__(self):
        return hash(self.text)

    def __repr__(self):
        return "ExplainResult(cache_hit=%r, fused_ops=%d)" % (
            self.cache_hit, self.fused_ops,
        )


class PreparedQuery:
    """A planned-but-not-executed SELECT: the admission-control handle.

    Produced by :meth:`QueryPipeline.prepare_sql` /
    :meth:`QueryPipeline.prepare_query`: parsing, lowering, rewriting and
    planning have run (through the shared SQL-text and plan caches), but
    nothing has executed. The serving layer plans first, charges the
    plan's cost estimate against the tenant's quota, and only then calls
    :meth:`QueryPipeline.execute_prepared` — pinned to the session's
    snapshot — without a second trip through the planner.

    Telemetry note: the embedded :class:`PipelineTelemetry` accumulates
    across executions, so treat a PreparedQuery as single-shot when you
    care about per-run stage timings (re-preparing is cheap — it hits the
    warm caches).
    """

    __slots__ = ("sql", "query", "plan", "telemetry", "hints")

    def __init__(self, sql, query, plan, telemetry, hints=None):
        self.sql = sql
        self.query = query
        self.plan = plan
        self.telemetry = telemetry
        # The chosen arm's HintSet under a non-default plan selector
        # (``None`` on the legacy single-path route) — execute_prepared
        # resolves fusion/parallel execution hints from it.
        self.hints = hints

    @property
    def est_cost(self):
        """The planner's cost estimate for the whole plan (floor 1.0).

        The admission currency: comparable to the executor's measured
        ``work`` by construction (same formulas, estimated vs. actual
        cardinalities), so quota charges settle against
        ``ExecutionTelemetry.total_work`` in the same unit.
        """
        root = self.plan
        for value in (root.est_cost, root.est_rows):
            if value is not None:
                return max(1.0, float(value))
        return 1.0

    def __repr__(self):
        return "PreparedQuery(est_cost=%.1f, cache_hit=%r)" % (
            self.est_cost, self.telemetry.cache_hit,
        )


class _CacheEntry:
    __slots__ = ("value", "epoch", "hits")

    def __init__(self, value, epoch):
        self.value = value
        self.epoch = epoch
        self.hits = 0


class PlanCache:
    """An LRU cache whose entries are invalidated by token drift.

    The token is an arbitrary hashable compared by equality — the
    pipeline stores per-table version vectors, the legacy global epoch
    works just as well (and the concurrency suite hammers it with plain
    integers).

    Args:
        capacity: maximum number of live entries; least-recently-used
            entries are evicted beyond it.

    Counters (``hits``/``misses``/``invalidations``) are cumulative until
    :meth:`reset_counters`; entries survive counter resets and are dropped
    only by epoch drift, LRU eviction, or :meth:`clear`.

    Thread safety: every operation holds one internal lock, so concurrent
    ``execute()`` calls (and a mutator bumping the catalog epoch between
    them) see a consistent cache — lookup + stale-entry removal is atomic,
    and counters never drift from the entries they describe.
    """

    def __init__(self, capacity=256):
        if capacity < 1:
            raise PlanError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key, epoch):
        """The cached value for ``key`` at token ``epoch``, or ``None``.

        An entry stored under a different token is stale: it is removed,
        counted as an invalidation, and the lookup is a miss.
        """
        return self.lookup(key, epoch)[0]

    def lookup(self, key, token):
        """Like :meth:`get`, but reports what happened and why.

        Returns ``(value, outcome, stale_token)``: ``outcome`` is
        ``"hit"``, ``"miss"`` (never cached), or ``"invalidated"`` (the
        entry's token drifted — it is dropped and counted); for
        ``"invalidated"`` the ``stale_token`` the dropped entry was
        stored under comes back so the caller can diff it against the
        current token and name the cause.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None, "miss", None
            if entry.epoch != token:
                stale = entry.epoch
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None, "invalidated", stale
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry.value, "hit", None

    def put(self, key, value, epoch):
        """Insert/replace ``key``, evicting the LRU entry if over capacity."""
        with self._lock:
            self._entries[key] = _CacheEntry(value, epoch)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self):
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def reset_counters(self):
        """Zero the hit/miss/invalidation counters (entries are kept)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    def stats(self):
        """A plain-dict counter snapshot (JSON-friendly)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def __repr__(self):
        return "PlanCache(size=%d/%d, hits=%d, misses=%d)" % (
            len(self._entries), self.capacity, self.hits, self.misses,
        )


class QueryPipeline:
    """The staged query lifecycle of one :class:`Database`.

    Args:
        database: the owning :class:`~repro.engine.database.Database`
            (supplies catalog, planner, executor).
        plan_cache_size: LRU capacity of the plan cache (and of the
            SQL-text → lowered-query cache).

    Extension points:

    * ``statement_hooks`` — callables ``(db, sql_text) -> result or None``
      that intercept raw SQL before parsing (the AISQL layer lives here).
    * ``rewriter`` — a single ``callable(query) -> query`` applied in the
      rewrite stage (the classic ``Database.rewriter`` attribute).
    * :meth:`add_stage_hook` — per-stage transform hooks
      ``callable(stage_output) -> replacement or None`` applied after the
      stage runs ("parse" sees the AST, "lower"/"rewrite" the structured
      query, "plan" the physical plan, "execute" the execution result).

    Every run is timed per stage; :meth:`stats` reports the cumulative
    planning-vs-execution split plus plan-cache hit/miss counters.
    """

    def __init__(self, database, plan_cache_size=256):
        self.db = database
        self.statement_hooks = []
        # Read-only companions to statement_hooks: callables
        # ``(db, sql_text) -> dict or None`` that *describe* a hooked
        # statement (kind, tables, columns, cost-estimable feature query)
        # without executing it. The session API's dry-run and policy
        # gates consult these so extension statements (AISQL) are
        # previewable and gateable like native SQL.
        self.statement_inspectors = []
        self.stage_hooks = {stage: [] for stage in PIPELINE_STAGES}
        self._rewriter = None
        self.plan_cache = PlanCache(plan_cache_size)
        self.query_cache = PlanCache(plan_cache_size)
        self._runs = 0
        self._stats_lock = threading.Lock()
        self._stage_totals = {
            stage: {"count": 0, "seconds": 0.0} for stage in PIPELINE_STAGES
        }

    # -- extension points --------------------------------------------------
    @property
    def rewriter(self):
        """The rewrite-stage callable (``None`` when not installed)."""
        return self._rewriter

    @rewriter.setter
    def rewriter(self, fn):
        self._rewriter = fn
        # Conservative: a different rewriter may map the same input query
        # to different plans; start from a cold cache.
        self.plan_cache.clear()

    def add_stage_hook(self, stage, hook):
        """Register a transform hook on one named stage.

        The hook receives the stage's output and may return a replacement
        (or ``None`` to leave it unchanged). Registering a hook clears the
        plan cache, since cached plans were produced without it.
        """
        if stage not in self.stage_hooks:
            raise PlanError(
                "unknown pipeline stage %r (stages: %s)"
                % (stage, ", ".join(PIPELINE_STAGES))
            )
        self.stage_hooks[stage].append(hook)
        self.plan_cache.clear()
        return hook

    def _apply_hooks(self, stage, value):
        for hook in self.stage_hooks[stage]:
            out = hook(value)
            if out is not None:
                value = out
        return value

    # -- entry points ------------------------------------------------------
    def run_sql(self, sql_text, snapshot=None):
        """Run one SQL (or hooked AISQL) statement through the pipeline.

        Returns whatever the statement produces: an
        :class:`~repro.engine.executor.ExecutionResult` for SELECT, a
        status string for DDL/DML/ANALYZE, or the hook's result for
        intercepted statements.

        With ``snapshot`` (a :class:`~repro.engine.catalog.
        CatalogSnapshot`), only SELECT is accepted, statement hooks are
        bypassed (they may mutate), and execution reads the pinned
        snapshot instead of the live catalog.
        """
        if snapshot is None:
            for hook in self.statement_hooks:
                result = hook(self.db, sql_text)
                if result is not None:
                    return result
        telemetry = PipelineTelemetry()
        # Warm SQL path: a previously lowered SELECT under the current
        # table set skips parse + lower entirely. The token is the coarse
        # schema_epoch, not the full version vector — lowering depends
        # only on name resolution, so inserts/ANALYZE keep this cache hot.
        schema_epoch = self.db.catalog.schema_epoch
        t0 = time.perf_counter()
        query = self.query_cache.get(sql_text, schema_epoch)
        if query is not None:
            telemetry.record_stage("lower", time.perf_counter() - t0)
            return self._run_query(query, telemetry, snapshot=snapshot)
        t0 = time.perf_counter()
        stmt = parse_sql(sql_text)
        telemetry.record_stage("parse", time.perf_counter() - t0)
        stmt = self._apply_hooks("parse", stmt)
        if isinstance(stmt, SelectStmt):
            t0 = time.perf_counter()
            query = lower_select(stmt, self.db.catalog)
            query = self._apply_hooks("lower", query)
            self.query_cache.put(sql_text, query, schema_epoch)
            telemetry.record_stage("lower", time.perf_counter() - t0)
            return self._run_query(query, telemetry, snapshot=snapshot)
        if snapshot is not None:
            raise ExecutionError(
                "snapshot sessions are read-only: only SELECT is allowed, "
                "got %r" % (sql_text.strip().split(None, 1)[0] if
                            sql_text.strip() else sql_text,)
            )
        result = self._run_statement(stmt, telemetry)
        self._accumulate(telemetry)
        return result

    def run_query(self, query, order=None, snapshot=None):
        """Run a structured :class:`ConjunctiveQuery` (rewrite → plan →
        execute), optionally under an explicit left-deep join ``order``
        and/or pinned to a ``snapshot``."""
        return self._run_query(
            query, PipelineTelemetry(), order=order, snapshot=snapshot
        )

    def prepare_sql(self, sql_text):
        """Plan a SELECT through the caches without executing it.

        Returns a :class:`PreparedQuery` carrying the lowered query, the
        physical plan, the planning telemetry, and the plan's cost
        estimate. Only SELECT is accepted — preparation exists for the
        serving layer's read path, where admission control must see the
        cost estimate *before* execution. Statement hooks are bypassed
        (they may mutate).
        """
        telemetry = PipelineTelemetry()
        schema_epoch = self.db.catalog.schema_epoch
        t0 = time.perf_counter()
        query = self.query_cache.get(sql_text, schema_epoch)
        if query is None:
            t0 = time.perf_counter()
            stmt = parse_sql(sql_text)
            telemetry.record_stage("parse", time.perf_counter() - t0)
            stmt = self._apply_hooks("parse", stmt)
            if not isinstance(stmt, SelectStmt):
                raise ExecutionError(
                    "prepare_sql supports only SELECT statements, got %r"
                    % (sql_text.strip().split(None, 1)[0]
                       if sql_text.strip() else sql_text,)
                )
            t0 = time.perf_counter()
            query = lower_select(stmt, self.db.catalog)
            query = self._apply_hooks("lower", query)
            self.query_cache.put(sql_text, query, schema_epoch)
        telemetry.record_stage("lower", time.perf_counter() - t0)
        return self._prepare(sql_text, query, telemetry)

    def lower_sql(self, sql_text):
        """Parse + lower a SELECT to its :class:`ConjunctiveQuery`.

        Shares the SQL-text cache with :meth:`run_sql` (same
        ``schema_epoch`` token), so classifying a statement and then
        executing it costs one parse, not two. Only SELECT lowers;
        anything else raises :class:`~repro.common.ParseError`.
        """
        schema_epoch = self.db.catalog.schema_epoch
        query = self.query_cache.get(sql_text, schema_epoch)
        if query is not None:
            return query
        stmt = parse_sql(sql_text)
        stmt = self._apply_hooks("parse", stmt)
        if not isinstance(stmt, SelectStmt):
            raise ParseError(
                "lower_sql supports only SELECT statements, got %r"
                % (sql_text.strip().split(None, 1)[0]
                   if sql_text.strip() else sql_text,)
            )
        query = lower_select(stmt, self.db.catalog)
        query = self._apply_hooks("lower", query)
        self.query_cache.put(sql_text, query, schema_epoch)
        return query

    def prepare_query(self, query, order=None):
        """Plan a structured :class:`ConjunctiveQuery` without executing.

        The query-object twin of :meth:`prepare_sql` (rewrite → plan via
        the shared plan cache); returns a :class:`PreparedQuery`.
        """
        return self._prepare(None, query, PipelineTelemetry(), order=order)

    def _prepare(self, sql_text, query, telemetry, order=None):
        query = self._rewrite(query, telemetry)
        plan, hints = self._plan_choice(query, telemetry, order=order)
        return PreparedQuery(sql_text, query, plan, telemetry, hints=hints)

    def execute_prepared(self, prepared, snapshot=None):
        """Execute a :class:`PreparedQuery`, optionally pinned to a
        :class:`~repro.engine.catalog.CatalogSnapshot`.

        The execution half of the serving layer's read path: the plan was
        already produced (and its cost estimate charged against a quota),
        so this runs exactly that plan — against the live catalog, or the
        pinned snapshot — with the same hook application, feedback
        ingestion (skipped for snapshot runs), and stats accumulation as
        :meth:`run_sql`.
        """
        telemetry = prepared.telemetry
        executor = (
            self.db.executor if prepared.hints is None
            else self.db.executor_for(prepared.hints)
        )
        t0 = time.perf_counter()
        result = executor.execute(prepared.plan, catalog=snapshot)
        telemetry.record_stage("execute", time.perf_counter() - t0)
        result = self._apply_hooks("execute", result)
        telemetry.execution = result.telemetry
        result.pipeline_telemetry = telemetry
        if snapshot is None:
            self._ingest_feedback(prepared.query, prepared.plan, result)
            self._observe_selection(telemetry, result)
        self._accumulate(telemetry)
        return result

    def explain(self, sql_text):
        """Plan a SELECT (through the cache) without executing it.

        Returns an :class:`ExplainResult`; its ``str()`` is the plan
        text, and ``fused_ops`` previews what the executor's fusion pass
        will collapse at execution time.
        """
        telemetry = PipelineTelemetry()
        t0 = time.perf_counter()
        stmt = parse_sql(sql_text)
        telemetry.record_stage("parse", time.perf_counter() - t0)
        if not isinstance(stmt, SelectStmt):
            raise ParseError("EXPLAIN supports only SELECT statements")
        t0 = time.perf_counter()
        query = lower_select(stmt, self.db.catalog)
        telemetry.record_stage("lower", time.perf_counter() - t0)
        query = self._rewrite(query, telemetry)
        plan, hints = self._plan_choice(query, telemetry, order=None)
        executor = (
            self.db.executor if hints is None else self.db.executor_for(hints)
        )
        fused_ops = 0
        if executor.fusion_enabled:
            __, fused_ops = fuse_plan(plan)
        self._accumulate(telemetry)
        text = plan.pretty()
        if telemetry.arm is not None:
            text += "\n" + self._arm_line(telemetry)
        return ExplainResult(
            text=text,
            plan=plan,
            fused_ops=fused_ops,
            cache_hit=bool(telemetry.cache_hit),
            version_vector=telemetry.plan_versions,
            cache_outcome=telemetry.cache_outcome,
            invalidation_cause=telemetry.invalidation_cause,
            arm=telemetry.arm,
        )

    def explain_analyze(self, sql_text):
        """Execute a SELECT and render est-vs-actual rows per plan node.

        The EXPLAIN-ANALYZE view: the query runs for real (through the
        plan cache, fusion, and — when enabled — feedback ingestion), and
        the returned :class:`ExplainResult` renders each node of the
        unfused plan with its estimated rows, executor-counted actual
        rows, and q-error. ``result`` carries the run's
        :class:`~repro.engine.executor.ExecutionResult` (rows included),
        ``node_stats`` the structured per-node records.
        """
        telemetry = PipelineTelemetry()
        t0 = time.perf_counter()
        stmt = parse_sql(sql_text)
        telemetry.record_stage("parse", time.perf_counter() - t0)
        if not isinstance(stmt, SelectStmt):
            raise ParseError("EXPLAIN ANALYZE supports only SELECT statements")
        t0 = time.perf_counter()
        query = lower_select(stmt, self.db.catalog)
        telemetry.record_stage("lower", time.perf_counter() - t0)
        query = self._rewrite(query, telemetry)
        plan, hints = self._plan_choice(query, telemetry, order=None)
        executor = (
            self.db.executor if hints is None else self.db.executor_for(hints)
        )
        t0 = time.perf_counter()
        result = executor.execute(plan)
        telemetry.record_stage("execute", time.perf_counter() - t0)
        telemetry.execution = result.telemetry
        result.pipeline_telemetry = telemetry
        self._ingest_feedback(query, plan, result)
        self._observe_selection(telemetry, result)
        self._accumulate(telemetry)
        node_stats = result.telemetry.node_stats
        run = result.telemetry
        text = pretty_analyze(plan, node_stats)
        if run.segments_total:
            text += "\nSegments: %d scanned, %d pruned (%d bytes decoded)" % (
                run.segments_total - run.segments_pruned,
                run.segments_pruned,
                run.bytes_decoded,
            )
        if telemetry.plan_versions:
            text += "\nVersions: " + ", ".join(
                "%s=%s" % pair for pair in telemetry.plan_versions
            )
        if telemetry.cache_outcome:
            text += "\nPlan cache: %s" % telemetry.cache_outcome
            if telemetry.invalidation_cause:
                text += " (%s)" % telemetry.invalidation_cause
        if telemetry.arm is not None:
            text += "\n" + self._arm_line(telemetry)
            wins = self._arm_wins_line()
            if wins:
                text += "\n" + wins
        return ExplainResult(
            text=text,
            plan=plan,
            fused_ops=run.fused_ops,
            cache_hit=bool(telemetry.cache_hit),
            node_stats=node_stats,
            result=result,
            segments_total=run.segments_total,
            segments_pruned=run.segments_pruned,
            bytes_decoded=run.bytes_decoded,
            version_vector=telemetry.plan_versions,
            cache_outcome=telemetry.cache_outcome,
            invalidation_cause=telemetry.invalidation_cause,
            arm=telemetry.arm,
        )

    @staticmethod
    def _arm_line(telemetry):
        """The one-line arm report EXPLAIN (ANALYZE) appends."""
        line = "Arm: %s (est_cost=%.1f" % (
            telemetry.arm, telemetry.arm_est_cost,
        )
        if telemetry.ues_bound is not None:
            line += ", ues_bound=%.1f" % telemetry.ues_bound
        return line + ")"

    def _arm_wins_line(self):
        """Per-arm ``wins/picks`` counters from the selector, one line."""
        selector = getattr(self.db, "plan_selector", None)
        if selector is None:
            return ""
        arms = selector.stats().get("arms", {})
        if not arms:
            return ""
        return "Arm wins: " + ", ".join(
            "%s=%d/%d" % (name, st.get("wins") or 0, st.get("picks") or 0)
            for name, st in sorted(arms.items())
        )

    # -- stages ------------------------------------------------------------
    def _rewrite(self, query, telemetry):
        t0 = time.perf_counter()
        if self._rewriter is not None:
            out = self._rewriter(query)
            if out is not None:
                query = out
        query = self._apply_hooks("rewrite", query)
        telemetry.record_stage("rewrite", time.perf_counter() - t0)
        return query

    def _plan_token(self, query):
        """The plan cache's invalidation token for ``query``.

        Scoped (the ``"table"`` cache scope, the default): the catalog's
        version vector restricted to the query's tables, paired with the
        feedback store's per-table drift vector over the same set — only
        a change touching one of *these* tables moves the token. Under
        the legacy ``"global"`` scope both halves collapse to single
        counters keyed ``"*"``, so any change anywhere moves it. Both
        shapes are ``(catalog_pairs, feedback_pairs)``, which is what
        lets :func:`_invalidation_cause` diff them uniformly.
        """
        catalog = self.db.catalog
        config = getattr(self.db, "config", None)
        if getattr(config, "cache_scope", "table") == "global":
            return (
                (("*", catalog.epoch),),
                (("*", getattr(self.db, "feedback_version", 0)),),
            )
        store = getattr(self.db, "feedback", None)
        feedback = () if store is None else store.version_vector(query.tables)
        return (catalog.version_vector(query.tables), feedback)

    def _plan(self, query, telemetry, order=None):
        t0 = time.perf_counter()
        key = (
            query.signature(),
            None if order is None else tuple(t.lower() for t in order),
        )
        token = self._plan_token(query)
        plan, outcome, stale = self.plan_cache.lookup(key, token)
        telemetry.cache_hit = plan is not None
        telemetry.cache_outcome = outcome
        telemetry.plan_versions = token[0]
        if outcome == "invalidated":
            telemetry.invalidation_cause = _invalidation_cause(stale, token)
        if plan is None:
            plan = self.db.planner.plan(query, order=order)
            plan = self._apply_hooks("plan", plan)
            # Re-read the token: planning may lazily ANALYZE (a version
            # bump), and the entry must match the state it was built from.
            self.plan_cache.put(key, plan, self._plan_token(query))
        telemetry.record_stage("plan", time.perf_counter() - t0)
        return plan

    def _plan_choice(self, query, telemetry, order=None):
        """The plan stage with selector dispatch: ``(plan, hints)``.

        The default cost selector takes the exact legacy single-path
        route through :meth:`_plan` (one planner call, the legacy cache
        key, no candidate fan-out) and reports ``hints=None`` — that
        short-circuit is what keeps the default config bit-identical to
        the pre-refactor pipeline. Any other selector goes through
        :meth:`_plan_selected`.
        """
        selector = getattr(self.db, "plan_selector", None)
        if selector is None or selector.name == "cost":
            return self._plan(query, telemetry, order=order), None
        return self._plan_selected(query, telemetry, selector, order=order)

    def _plan_selected(self, query, telemetry, selector, order=None):
        """Candidate generation + selection for a non-default selector.

        One plan-cache entry per arm — key ``(signature, order, arm)``,
        all sharing the query's scoped token — so repeated queries skip
        candidate generation entirely; only arms whose entries are cold
        or invalidated replan. Selection itself always runs (it is the
        learning step), and the chosen arm's cache outcome is what the
        telemetry reports.
        """
        t0 = time.perf_counter()
        sig = query.signature()
        order_t = None if order is None else tuple(t.lower() for t in order)
        token = self._plan_token(query)
        candidates, outcomes, missing = [], {}, []
        for hints in selector.arms(query):
            cand, outcome, stale = self.plan_cache.lookup(
                (sig, order_t, hints.name), token
            )
            outcomes[hints.name] = (outcome, stale)
            if cand is None:
                missing.append(hints)
            else:
                candidates.append(cand)
        if missing:
            fresh = self.db.planner.plan_candidates(
                query, missing, order=order
            )
            # Re-read the token: planning may lazily ANALYZE (a version
            # bump), and entries must match the state they were built from.
            put_token = self._plan_token(query)
            for cand in fresh:
                hooked = self._apply_hooks("plan", cand.plan)
                if hooked is not cand.plan:
                    cand = replace(cand, plan=hooked)
                self.plan_cache.put((sig, order_t, cand.arm), cand, put_token)
                candidates.append(cand)
        features = plan_features(query, self.db.planner.estimator)
        chosen = selector.select(candidates, query, features)
        outcome, stale = outcomes.get(chosen.arm, ("miss", None))
        telemetry.cache_hit = outcome == "hit"
        telemetry.cache_outcome = outcome
        telemetry.plan_versions = token[0]
        if outcome == "invalidated":
            telemetry.invalidation_cause = _invalidation_cause(stale, token)
        telemetry.arm = chosen.arm
        telemetry.arm_est_cost = chosen.est_cost
        telemetry.selection_features = features
        for cand in candidates:
            if cand.bound is not None:
                telemetry.ues_bound = cand.bound
        telemetry.record_stage("plan", time.perf_counter() - t0)
        return chosen.plan, chosen.hints

    def _observe_selection(self, telemetry, result):
        """Close the bandit loop: the run's measured work → the selector."""
        selector = getattr(self.db, "plan_selector", None)
        if (selector is None or telemetry.arm is None
                or result.telemetry is None):
            return
        selector.observe(
            telemetry.arm,
            telemetry.selection_features,
            telemetry.arm_est_cost,
            result.telemetry.total_work,
        )

    def _run_query(self, query, telemetry, order=None, snapshot=None):
        query = self._rewrite(query, telemetry)
        plan, hints = self._plan_choice(query, telemetry, order=order)
        executor = (
            self.db.executor if hints is None else self.db.executor_for(hints)
        )
        t0 = time.perf_counter()
        result = executor.execute(plan, catalog=snapshot)
        telemetry.record_stage("execute", time.perf_counter() - t0)
        result = self._apply_hooks("execute", result)
        telemetry.execution = result.telemetry
        result.pipeline_telemetry = telemetry
        if snapshot is None:
            # Snapshot runs skip feedback and bandit training: their
            # actuals describe pinned data and would poison estimates
            # (and rewards) for the live tables.
            self._ingest_feedback(query, plan, result)
            self._observe_selection(telemetry, result)
        self._accumulate(telemetry)
        return result

    def _ingest_feedback(self, query, plan, result):
        """Close the cardinality loop: observed actuals → feedback store."""
        store = getattr(self.db, "feedback", None)
        if store is None or result.telemetry is None:
            return
        node_stats = result.telemetry.node_stats
        if node_stats:
            ingest_execution(store, query, plan, node_stats)

    def _run_statement(self, stmt, telemetry):
        """DDL/DML/ANALYZE: executed directly against the catalog."""
        t0 = time.perf_counter()
        try:
            if isinstance(stmt, CreateTableStmt):
                self.db.catalog.create_table(stmt.name, stmt.columns)
                return "CREATE TABLE"
            if isinstance(stmt, CreateIndexStmt):
                self.db.catalog.create_index(
                    stmt.name, stmt.table, stmt.column, kind=stmt.kind,
                    hypothetical=stmt.hypothetical,
                )
                return "CREATE INDEX"
            if isinstance(stmt, InsertStmt):
                return "INSERT %d" % self._insert(stmt)
            if isinstance(stmt, AnalyzeStmt):
                self.db.catalog.analyze(stmt.table)
                return "ANALYZE"
            raise ParseError("unhandled statement %r" % (stmt,))
        finally:
            telemetry.record_stage("execute", time.perf_counter() - t0)

    def _insert(self, stmt):
        table = self.db.catalog.table(stmt.table)
        rows = stmt.rows
        if stmt.columns:
            positions = [table.schema.column_index(c) for c in stmt.columns]
            width = len(table.schema.columns)
            reordered = []
            for r in rows:
                if len(r) != len(positions):
                    raise ParseError(
                        "INSERT row width %d != column list width %d"
                        % (len(r), len(positions))
                    )
                full = [None] * width
                for pos, v in zip(positions, r):
                    full[pos] = v
                reordered.append(full)
            rows = reordered
        return table.insert_rows(rows)

    # -- telemetry ---------------------------------------------------------
    def _accumulate(self, telemetry):
        with self._stats_lock:
            self._runs += 1
            for stage, seconds in telemetry.stages.items():
                entry = self._stage_totals[stage]
                entry["count"] += 1
                entry["seconds"] += seconds

    def stats(self):
        """Cumulative pipeline statistics since the last :meth:`reset_stats`.

        Returns a JSON-friendly dict with the run count, per-stage
        count/seconds, the planning-vs-execution wall-time split, and the
        plan/query cache counters.
        """
        planning = sum(
            self._stage_totals[s]["seconds"]
            for s in ("parse", "lower", "rewrite", "plan")
        )
        return {
            "runs": self._runs,
            "stages": {
                stage: dict(entry)
                for stage, entry in self._stage_totals.items()
                if entry["count"]
            },
            "planning_seconds": planning,
            "execution_seconds": self._stage_totals["execute"]["seconds"],
            "plan_cache": self.plan_cache.stats(),
            "query_cache": self.query_cache.stats(),
        }

    def reset_stats(self):
        """Zero stage timings and cache counters (cache entries are kept)."""
        self._runs = 0
        for entry in self._stage_totals.values():
            entry["count"] = 0
            entry["seconds"] = 0.0
        self.plan_cache.reset_counters()
        self.query_cache.reset_counters()

    def invalidate(self):
        """Drop every cached plan and lowered query.

        Needed only for mutations the catalog epoch cannot observe, such
        as swapping ``db.planner.estimator`` in place.
        """
        self.plan_cache.clear()
        self.query_cache.clear()

    def __repr__(self):
        return "QueryPipeline(runs=%d, %r)" % (self._runs, self.plan_cache)
