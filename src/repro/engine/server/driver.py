"""Closed-loop traffic driver: many simulated clients, Zipfian skew.

The load generator for the serving layer's benchmarks: ``n_clients``
threads each open a session and run a closed loop (issue one statement,
wait for it to finish — shed counts as finished — then issue the next).
Clients map onto tenants with a Zipfian distribution, so a few tenants
carry most of the traffic, the shape real multi-tenant fleets show. A
seeded ``random.Random`` per client makes the statement sequence (though
of course not the thread interleaving) fully reproducible.

:func:`run_traffic` returns a :class:`TrafficReport` with overall
throughput, per-tenant latency percentiles (p50/p95/p99), admission
decisions, and the server's snapshot/commit statistics — what
``benchmarks/bench_p8_server.py`` records into ``BENCH_P8.json``.
"""

import random
import threading
import time

from repro.engine.server.admission import AdmissionError
from repro.engine.telemetry import percentile


def zipf_weights(n, s=1.2):
    """Unnormalized Zipf(s) weights over ranks ``1..n``."""
    if n < 1:
        raise ValueError("need at least one rank")
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


class TrafficReport:
    """Per-request records from one traffic run, plus aggregation."""

    def __init__(self, records, wall_seconds, server):
        self.records = records
        self.wall_seconds = wall_seconds
        self.server = server

    def tenants(self):
        return sorted({r["tenant"] for r in self.records})

    def summary(self):
        """JSON-friendly aggregate: throughput, per-tenant percentiles,
        admission decisions, commit count."""
        per_tenant = {}
        for tenant in self.tenants():
            recs = [r for r in self.records if r["tenant"] == tenant]
            lat = [r["seconds"] for r in recs if r["outcome"] != "shed"]
            outcomes = {}
            for r in recs:
                outcomes[r["outcome"]] = outcomes.get(r["outcome"], 0) + 1
            per_tenant[tenant] = {
                "requests": len(recs),
                "reads": sum(1 for r in recs if r["read"]),
                "writes": sum(1 for r in recs if not r["read"]),
                "outcomes": dict(sorted(outcomes.items())),
                "work": sum(r["work"] for r in recs),
                "p50_seconds": percentile(lat, 0.50),
                "p95_seconds": percentile(lat, 0.95),
                "p99_seconds": percentile(lat, 0.99),
            }
        completed = [r for r in self.records if r["outcome"] != "shed"]
        return {
            "requests": len(self.records),
            "completed": len(completed),
            "shed": len(self.records) - len(completed),
            "wall_seconds": self.wall_seconds,
            "throughput_qps": len(completed) / max(self.wall_seconds, 1e-9),
            "tenants": per_tenant,
            "admission": self.server.admission.stats(),
            "commits": self.server.commit_history()[-1][0],
        }

    def __repr__(self):
        return "TrafficReport(requests=%d, wall=%.2fs)" % (
            len(self.records), self.wall_seconds,
        )


def run_traffic(server, read_pool, write_pool=(), *, n_clients=16,
                requests_per_client=25, n_tenants=4, zipf_s=1.2,
                read_fraction=0.9, seed=None, isolation="statement"):
    """Drive ``server`` with a closed-loop multi-tenant workload.

    Args:
        server: the :class:`~repro.engine.server.QueryServer` under test.
        read_pool: SELECT statements clients sample from.
        write_pool: write statements (INSERT/ANALYZE) clients sample
            from; with an empty pool the workload is read-only
            regardless of ``read_fraction``.
        n_clients: concurrent client threads (each its own session).
        requests_per_client: statements per client (closed loop).
        n_tenants: tenant population; clients choose their tenant once,
            Zipf(``zipf_s``)-weighted, so load across tenants is skewed.
        read_fraction: probability a statement is a read.
        seed: base seed; client ``i`` uses ``Random(seed * 10007 + i)``.
            ``None`` (the default) inherits the engine's configured
            ``EngineConfig.seed``, so one ``REPRO_SEED`` reproduces the
            whole stack — plan selection, fuzzing, and traffic alike.
        isolation: session isolation for the clients.

    Returns:
        a :class:`TrafficReport`.
    """
    if seed is None:
        config = getattr(getattr(server, "db", None), "config", None)
        seed = getattr(config, "seed", 0)
    tenants = ["tenant%02d" % i for i in range(n_tenants)]
    weights = zipf_weights(n_tenants, zipf_s)
    barrier = threading.Barrier(n_clients)
    lock = threading.Lock()
    records = []
    errors = []

    def client(idx):
        rng = random.Random(seed * 10007 + idx)
        tenant = rng.choices(tenants, weights=weights)[0]
        try:
            with server.session(tenant=tenant, isolation=isolation) as sess:
                barrier.wait()
                local = []
                for __ in range(requests_per_client):
                    read = (not write_pool) or rng.random() < read_fraction
                    pool = read_pool if read else write_pool
                    sql = pool[rng.randrange(len(pool))]
                    t0 = time.perf_counter()
                    outcome, work = "shed", 0.0
                    try:
                        result = sess.execute(sql)
                        ticket = sess.last_admission
                        outcome = ticket.outcome if ticket else "admitted"
                        if hasattr(result, "telemetry"):
                            work = result.telemetry.total_work
                        elif ticket is not None:
                            work = ticket.cost
                    except AdmissionError:
                        pass
                    local.append({
                        "client": idx,
                        "tenant": tenant,
                        "read": read,
                        "seconds": time.perf_counter() - t0,
                        "outcome": outcome,
                        "work": work,
                    })
                with lock:
                    records.extend(local)
        except BaseException as exc:  # noqa: BLE001 - reported by caller
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(n_clients)]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_start
    if errors:
        raise errors[0]
    return TrafficReport(records, wall, server)
