"""The multi-tenant serving layer over the engine.

``repro.engine.server`` is the first layer that makes the engine a
multi-user *system* rather than a library: concurrent sessions, MVCC
snapshot reads against the PR 7 catalog snapshots, a single-writer
commit path with a version-vector commit log, per-tenant work-quota
admission control (fifo / fair-share / shed), and a closed-loop traffic
driver for benchmarking it all. See ``DESIGN.md`` ("Multi-tenant serving
& admission control") and ``README.md`` ("Serving layer").
"""

from repro.engine.server.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionTicket,
    TokenBucket,
)
from repro.engine.server.driver import TrafficReport, run_traffic, zipf_weights
from repro.engine.server.server import (
    DEFAULT_WRITE_COST,
    ISOLATION_LEVELS,
    QueryServer,
    Session,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionTicket",
    "TokenBucket",
    "TrafficReport",
    "run_traffic",
    "zipf_weights",
    "DEFAULT_WRITE_COST",
    "ISOLATION_LEVELS",
    "QueryServer",
    "Session",
]
