"""Admission control: per-tenant work quotas over a token bucket.

The serving layer's scheduler. Every tenant owns a :class:`TokenBucket`
denominated in the engine's deterministic ``work`` units (the same
quantity the executor measures and the cost model estimates — see
``PAPER.md``'s substitution table). A query is admitted by charging its
plan's **cost estimate** against its tenant's bucket; when execution
finishes, the charge is settled against ``ExecutionTelemetry.total_work``
(over-estimates are refunded, under-estimates charged extra), so over
time each tenant pays for exactly the work it consumed — the conservation
property the admission test suite asserts, and the "estimates as
admission currency, validated against actuals" loop that *Are We Ready
For Learned Cardinality Estimation?* (PAPERS.md) motivates.

Over-quota queries are handled per :data:`ADMISSION_POLICIES`:

* ``"fifo"`` — wait in strict arrival order across all tenants. Simple,
  but a broke tenant at the head blocks everyone (documented
  head-of-line hazard; the contrast fair-share exists to fix).
* ``"fair-share"`` — wait in a per-tenant queue; grants walk the tenants
  round-robin, skipping tenants whose bucket cannot pay yet, so one
  flooding tenant can neither starve the others nor block them behind
  its debt.
* ``"shed"`` — never wait: an over-quota query raises
  :class:`AdmissionError` immediately (load shedding).

Determinism: the controller takes an injectable ``clock`` so tests drive
refill with a manual clock and assert grant *order*, not wall time.
"""

import threading
import time
from collections import OrderedDict, deque

from repro.common import ExecutionError
from repro.engine.config import (
    ADMISSION_POLICIES,
    DEFAULT_ADMISSION_QUEUE_DEPTH,
    DEFAULT_QUOTA_REFILL,
    DEFAULT_TENANT_QUOTA,
)
from repro.engine.errors import AdmissionError

#: Fallback cost charged when a statement has no usable estimate.
MIN_CHARGE = 1.0

#: How often a waiter re-checks its bucket against a real-time clock, in
#: seconds. Purely a liveness bound — grants are normally triggered by
#: ``settle``/``cancel`` notifications, this tick only covers refill by
#: the passage of time.
_WAIT_TICK = 0.05


class TokenBucket:
    """One tenant's work quota: capacity, refill rate, current balance.

    The balance may go **negative**: a query whose actual work exceeded
    its estimate settles into debt, which future refill must pay off
    before the tenant is admitted again — mis-estimates are charged to
    the tenant that caused them, never to the others.
    """

    __slots__ = ("capacity", "refill_rate", "tokens", "_last")

    def __init__(self, capacity, refill_rate, now=0.0):
        if capacity <= 0:
            raise ExecutionError("token bucket capacity must be > 0")
        if refill_rate < 0:
            raise ExecutionError("token bucket refill rate must be >= 0")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.tokens = float(capacity)
        self._last = float(now)

    def refill(self, now):
        """Accrue tokens for the time since the last refill (capped)."""
        elapsed = max(0.0, float(now) - self._last)
        self._last = float(now)
        if elapsed and self.refill_rate:
            self.tokens = min(self.capacity, self.tokens
                              + elapsed * self.refill_rate)

    def can_pay(self, cost):
        """Whether a charge of ``cost`` is admissible right now.

        A query costing more than the whole capacity is admissible at a
        full bucket (it then drives the balance deep into debt) —
        otherwise it could never run at all.
        """
        return self.tokens >= min(float(cost), self.capacity)

    def charge(self, cost):
        """Deduct ``cost`` (the balance may go negative)."""
        self.tokens -= float(cost)

    def deposit(self, delta):
        """Settle a refund (or extra charge, when negative), capped at
        capacity."""
        self.tokens = min(self.capacity, self.tokens + float(delta))

    def __repr__(self):
        return "TokenBucket(%.1f/%.1f @ %.1f/s)" % (
            self.tokens, self.capacity, self.refill_rate,
        )


class AdmissionTicket:
    """The receipt for one admitted query; settle it when work lands."""

    __slots__ = ("tenant", "cost", "outcome", "queue_wait", "seq",
                 "settled")

    def __init__(self, tenant, cost, outcome, queue_wait, seq):
        self.tenant = tenant
        self.cost = cost
        self.outcome = outcome
        self.queue_wait = queue_wait
        self.seq = seq
        self.settled = False

    def __repr__(self):
        return "AdmissionTicket(%s, cost=%.1f, %s)" % (
            self.tenant, self.cost, self.outcome,
        )


class _Waiter:
    __slots__ = ("tenant", "cost", "seq", "granted", "abandoned")

    def __init__(self, tenant, cost, seq):
        self.tenant = tenant
        self.cost = cost
        self.seq = seq
        self.granted = False
        self.abandoned = False


class AdmissionController:
    """Grants, queues, or sheds queries against per-tenant work quotas.

    Args:
        policy: one of :data:`ADMISSION_POLICIES`.
        tenant_quota: token-bucket capacity per tenant, in work units.
        quota_refill_rate: bucket refill rate, work units per second.
        queue_depth: bound on waiters across all tenants; arrivals beyond
            it are shed even under queueing policies.
        timeout: max seconds a query may wait for admission (real time,
            measured on ``time.monotonic`` regardless of ``clock``).
        clock: the time source for bucket refill — injectable so tests
            are deterministic; defaults to ``time.monotonic``.

    Thread safety: one condition variable guards buckets, queues, and
    counters; ``settle``/``cancel`` notify waiters, and waiters also tick
    on a short timeout so pure time-based refill makes progress.
    """

    def __init__(self, policy=None, tenant_quota=None, quota_refill_rate=None,
                 queue_depth=None, timeout=30.0, clock=None):
        policy = ADMISSION_POLICIES[0] if policy is None else policy
        if policy not in ADMISSION_POLICIES:
            raise ExecutionError(
                "admission policy must be one of %r, got %r"
                % (ADMISSION_POLICIES, policy)
            )
        self.policy = policy
        self.tenant_quota = (
            DEFAULT_TENANT_QUOTA if tenant_quota is None
            else float(tenant_quota)
        )
        self.quota_refill_rate = (
            DEFAULT_QUOTA_REFILL if quota_refill_rate is None
            else float(quota_refill_rate)
        )
        self.queue_depth = (
            DEFAULT_ADMISSION_QUEUE_DEPTH if queue_depth is None
            else int(queue_depth)
        )
        self.timeout = float(timeout)
        self._clock = time.monotonic if clock is None else clock
        self._cond = threading.Condition()
        self._buckets = {}
        # fifo: one global arrival-order queue of _Waiter.
        self._fifo = deque()
        # fair-share: per-tenant queues, walked round-robin from _rr_pos.
        self._tenant_queues = OrderedDict()
        self._rr_order = []
        self._rr_pos = 0
        self._seq = 0
        self._counters = {}

    # -- internals (call with the condition held) -----------------------
    def _bucket(self, tenant):
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.tenant_quota, self.quota_refill_rate, now=self._clock()
            )
            self._buckets[tenant] = bucket
            self._rr_order.append(tenant)
            self._counters[tenant] = {
                "admitted": 0, "queued": 0, "shed": 0, "timed_out": 0,
                "charged": 0.0, "refunded": 0.0, "settled_work": 0.0,
            }
        return bucket

    def _refill_all(self):
        now = self._clock()
        for bucket in self._buckets.values():
            bucket.refill(now)

    def _queue_len(self):
        if self.policy == "fifo":
            return len(self._fifo)
        return sum(len(q) for q in self._tenant_queues.values())

    def _discard(self, waiter):
        """Eagerly remove a timed-out waiter from its queue, so abandoned
        entries never inflate the queue depth (a stale depth would shunt
        later arrivals onto the slow queued path for no reason)."""
        queue = (self._fifo if self.policy == "fifo"
                 else self._tenant_queues.get(waiter.tenant))
        if queue:
            try:
                queue.remove(waiter)
            except ValueError:
                pass  # already granted-and-popped concurrently

    def _grant_ready(self):
        """Grant every waiter that is now eligible, in policy order.

        Returns how many waiters were granted (callers notify the
        condition only when that is nonzero, so idle ticks never wake
        the whole herd).
        """
        self._refill_all()
        granted = 0
        if self.policy == "fifo":
            # Strict arrival order: only the head may be considered.
            while self._fifo:
                head = self._fifo[0]
                if head.abandoned:
                    self._fifo.popleft()
                    continue
                if not self._buckets[head.tenant].can_pay(head.cost):
                    break
                self._buckets[head.tenant].charge(head.cost)
                head.granted = True
                self._fifo.popleft()
                granted += 1
            return granted
        # fair-share: walk tenants round-robin from the pointer, granting
        # at most one query per tenant per lap, skipping tenants whose
        # bucket cannot pay yet (no cross-tenant head-of-line blocking).
        progress = True
        while progress:
            progress = False
            n = len(self._rr_order)
            for step in range(n):
                idx = (self._rr_pos + step) % n
                tenant = self._rr_order[idx]
                queue = self._tenant_queues.get(tenant)
                while queue and queue[0].abandoned:
                    queue.popleft()
                if not queue:
                    continue
                head = queue[0]
                if not self._buckets[tenant].can_pay(head.cost):
                    continue
                self._buckets[tenant].charge(head.cost)
                head.granted = True
                queue.popleft()
                self._rr_pos = (idx + 1) % n
                progress = True
                granted += 1
                break
        return granted

    # -- public API ------------------------------------------------------
    def admit(self, tenant, est_cost):
        """Admit one query for ``tenant`` at estimated cost ``est_cost``.

        Returns an :class:`AdmissionTicket` (outcome ``"admitted"`` or
        ``"queued"``); raises :class:`AdmissionError` when the query is
        shed (policy ``"shed"``, a full queue, or an admission timeout).
        Callers **must** pair every returned ticket with a
        :meth:`settle` (or :meth:`cancel` on execution failure), or the
        estimate's error is never refunded.
        """
        cost = max(MIN_CHARGE, float(est_cost or 0.0))
        with self._cond:
            bucket = self._bucket(tenant)
            bucket.refill(self._clock())
            counters = self._counters[tenant]
            # Work-conserving fast path. fifo: strict global arrival
            # order, so anyone queued anywhere blocks the shortcut (the
            # documented head-of-line hazard). fair-share: ordering is
            # per-tenant, so a payable tenant with no waiters of its own
            # is admitted immediately — exactly what its next round-robin
            # lap would do, without waking every parked waiter.
            if self.policy == "fifo":
                unobstructed = not self._fifo
            else:
                unobstructed = not self._tenant_queues.get(tenant)
            if unobstructed and bucket.can_pay(cost):
                bucket.charge(cost)
                counters["admitted"] += 1
                counters["charged"] += cost
                self._seq += 1
                return AdmissionTicket(tenant, cost, "admitted", 0.0,
                                       self._seq)
            if self.policy == "shed":
                counters["shed"] += 1
                raise AdmissionError(
                    "tenant %r over quota (%.1f tokens < %.1f cost); "
                    "policy 'shed' rejects rather than queues"
                    % (tenant, bucket.tokens, cost)
                )
            if self._queue_len() >= self.queue_depth:
                counters["shed"] += 1
                raise AdmissionError(
                    "admission queue full (%d waiting)" % self._queue_len()
                )
            self._seq += 1
            waiter = _Waiter(tenant, cost, self._seq)
            if self.policy == "fifo":
                self._fifo.append(waiter)
            else:
                self._tenant_queues.setdefault(tenant, deque()).append(waiter)
            counters["queued"] += 1
            t_wait0 = time.monotonic()
            deadline = t_wait0 + self.timeout
            if self._grant_ready():
                self._cond.notify_all()
            while not waiter.granted:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    waiter.abandoned = True
                    self._discard(waiter)
                    counters["timed_out"] += 1
                    counters["shed"] += 1
                    raise AdmissionError(
                        "tenant %r timed out after %.1fs waiting for "
                        "admission" % (tenant, self.timeout)
                    )
                self._cond.wait(timeout=min(_WAIT_TICK, remaining))
                if self._grant_ready():
                    self._cond.notify_all()
            counters["admitted"] += 1
            counters["charged"] += waiter.cost
            return AdmissionTicket(
                tenant, waiter.cost, "queued",
                time.monotonic() - t_wait0, waiter.seq,
            )

    def settle(self, ticket, actual_work):
        """Close one admission: refund/charge the estimate's error.

        ``actual_work`` is the executor's measured
        ``ExecutionTelemetry.total_work``; the tenant's net charge
        becomes exactly that (charge ``est`` up front, deposit
        ``est - actual`` here). Idempotent per ticket.
        """
        if ticket.settled:
            return
        ticket.settled = True
        actual = max(0.0, float(actual_work))
        with self._cond:
            bucket = self._bucket(ticket.tenant)
            delta = ticket.cost - actual
            bucket.deposit(delta)
            counters = self._counters[ticket.tenant]
            counters["refunded"] += delta
            counters["settled_work"] += actual
            if self._grant_ready():
                self._cond.notify_all()

    def cancel(self, ticket):
        """Refund an admitted query that never ran (execution raised)."""
        if ticket.settled:
            return
        ticket.settled = True
        with self._cond:
            self._bucket(ticket.tenant).deposit(ticket.cost)
            self._counters[ticket.tenant]["refunded"] += ticket.cost
            if self._grant_ready():
                self._cond.notify_all()

    def kick(self):
        """Re-evaluate waiters now (e.g. after advancing a manual clock)."""
        with self._cond:
            self._grant_ready()
            self._cond.notify_all()

    def balance(self, tenant):
        """Tenant's current token balance (refilled to now)."""
        with self._cond:
            bucket = self._bucket(tenant)
            bucket.refill(self._clock())
            return bucket.tokens

    def queue_depth_now(self):
        """How many queries are currently waiting for admission."""
        with self._cond:
            return self._queue_len()

    def stats(self):
        """Per-tenant counter snapshot (JSON-friendly).

        ``charged - refunded == settled_work`` for every tenant whose
        tickets were all settled — the quota-conservation invariant.
        """
        with self._cond:
            return {
                tenant: dict(counters)
                for tenant, counters in sorted(self._counters.items())
            }

    def __repr__(self):
        with self._cond:
            return "AdmissionController(%s, tenants=%d, waiting=%d)" % (
                self.policy, len(self._buckets), self._queue_len(),
            )
