"""The multi-tenant query server: sessions, snapshot reads, one writer.

:class:`QueryServer` turns a single :class:`~repro.engine.database.
Database` into a multi-user system:

* **Sessions** (:meth:`QueryServer.session`) are the caller surface —
  many may execute concurrently, each tagged with a tenant for
  accounting and admission.
* **Reads are MVCC snapshot reads.** Every SELECT executes against an
  immutable :class:`~repro.engine.catalog.CatalogSnapshot` — pinned per
  statement (default) or once per session (``isolation="session"``,
  repeatable-read style) — while *planning* flows through the shared
  pipeline and its warm plan cache. Snapshots are pinned under the
  commit lock, so every snapshot is a state that actually existed
  between two commits, never a torn mix.
* **Writes serialize through a single-writer commit path.** DDL / INSERT
  / ANALYZE take the server's commit lock, execute, and append the
  resulting per-table version vector to :attr:`QueryServer.commit_log`
  — the ground truth the concurrency suite checks read snapshots
  against.
* **Admission control** (:mod:`repro.engine.server.admission`) charges
  each query's cost estimate against its tenant's work-quota token
  bucket before execution and settles the estimate against the measured
  ``total_work`` afterwards; over-quota queries queue (fifo /
  fair-share) or shed, per
  :attr:`~repro.engine.config.EngineConfig.admission_policy`.

The NeurDB-style split (PAPERS.md): the engine stays a fast
single-caller library; this layer owns sessions, scheduling, and
tenancy.
"""

import itertools
import threading
import time

from repro.common import ExecutionError
from repro.engine.database import Database
from repro.engine.server.admission import AdmissionController
from repro.engine.session.agent import AgentSession
from repro.engine.session.context import ServerBackend, SessionContext
from repro.engine.telemetry import ServingRollup

#: Session isolation levels: pin a fresh snapshot per statement, or one
#: snapshot for the session's whole lifetime (repeatable read; read-only).
ISOLATION_LEVELS = ("statement", "session")

#: Flat work charge for one write statement (writes bypass the planner,
#: so there is no cost estimate to charge; overridable per server).
DEFAULT_WRITE_COST = 64.0


class Session:
    """One caller's handle on a :class:`QueryServer`.

    Sessions are cheap, thread-compatible handles (use one per thread;
    the server underneath is what's shared). Each carries a tenant name
    for admission accounting and an isolation level:

    * ``"statement"`` (default) — every SELECT pins a fresh snapshot, so
      reads observe each committed write exactly once it commits.
    * ``"session"`` — one snapshot pinned at open; every read sees that
      state forever (repeatable read). Writes are rejected, since the
      session could not read them back.
    """

    def __init__(self, server, tenant, isolation, session_id):
        if isolation not in ISOLATION_LEVELS:
            raise ExecutionError(
                "session isolation must be one of %r, got %r"
                % (ISOLATION_LEVELS, isolation)
            )
        self._server = server
        self.tenant = tenant
        self.isolation = isolation
        self.session_id = session_id
        self.last_admission = None
        self._pinned = (
            server.pin_snapshot() if isolation == "session" else None
        )
        self.closed = False
        # The ungated facade context execute() routes through: SELECTs
        # take admission + snapshot reads, everything else the
        # single-writer commit path — the classic behavior.
        self._context = SessionContext(
            server.db, backend=ServerBackend(server, self)
        )

    # -- statement surface ----------------------------------------------
    def execute(self, sql_text):
        """Run one SQL statement under this session's tenant.

        SELECTs go through admission control and execute against a
        snapshot; anything else serializes through the server's
        single-writer commit path. Returns what
        :meth:`Database.execute` would (an
        :class:`~repro.engine.executor.ExecutionResult` for SELECT, a
        status string otherwise).
        """
        self._check_open()
        return self._context.execute(sql_text).raw

    def session_context(self, policy=None, audit=None):
        """A gated :class:`SessionContext` over this session's tenant:
        statements flow through the same admission/commit paths, with
        per-statement policy checks and audit logging on top."""
        return SessionContext(
            self._server.db,
            backend=ServerBackend(self._server, self),
            policy=policy,
            audit=audit,
        )

    def query(self, sql_text):
        """Run one SELECT; returns just the rows."""
        result = self.execute(sql_text)
        return result.rows

    def run_query_object(self, query, order=None):
        """Run a structured :class:`ConjunctiveQuery` through admission
        and snapshot execution (the read path for query objects)."""
        self._check_open()
        prepared = self._server.db.pipeline.prepare_query(query, order=order)
        return self._server._run_read(self, prepared)

    def insert_rows(self, table, rows):
        """Bulk-append ``rows`` through the single-writer commit path.

        The programmatic write surface (the SQL INSERT literal syntax
        cannot express NULLs in bulk); charges the same write cost and
        logs the same commit as SQL writes. Returns the inserted count.
        """
        self._check_open()
        return self._server._run_write(self, None, table=table, rows=rows)

    def snapshot_versions(self):
        """The per-table version vector this session currently reads.

        For ``"session"`` isolation, the pinned vector; for
        ``"statement"``, the live catalog's current vector (what the
        next statement would pin).
        """
        source = (self._pinned if self._pinned is not None
                  else self._server.db.catalog)
        return source.version_vector()

    def close(self):
        """Release the session (idempotent)."""
        self.closed = True
        self._pinned = None

    def _check_open(self):
        if self.closed:
            raise ExecutionError(
                "session %r is closed" % (self.session_id,)
            )

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return "Session(%s, tenant=%r, isolation=%s%s)" % (
            self.session_id, self.tenant, self.isolation,
            ", closed" if self.closed else "",
        )


class QueryServer:
    """A concurrent, multi-tenant serving layer over one database.

    Args:
        db: the :class:`Database` to serve (one is built from ``config``
            when omitted).
        config: an :class:`~repro.engine.config.EngineConfig` — used to
            build ``db`` when none is given, and as the source of the
            admission knobs. Defaults to the database's own config.
        admission_policy / tenant_quota / quota_refill_rate /
        queue_depth: override the config's admission knobs.
        admission_timeout: max seconds a query waits for admission.
        write_cost: flat work charge per write statement.
        clock: injectable time source for quota refill (tests).

    Attributes:
        commit_log: ``[(seq, {table: version}), ...]`` — the per-table
            version vector after every commit through this server
            (entry 0 is the state at server construction). Because
            writes serialize through the commit lock and read snapshots
            are pinned under that same lock, **every** snapshot a
            session reads must equal one of these vectors — the
            no-torn-reads invariant the concurrency suite asserts.
        admission: the :class:`AdmissionController`.
        rollup: the :class:`~repro.engine.telemetry.ServingRollup` of
            per-tenant / per-session query accounting.
    """

    def __init__(self, db=None, config=None, *, admission_policy=None,
                 tenant_quota=None, quota_refill_rate=None, queue_depth=None,
                 admission_timeout=30.0, write_cost=DEFAULT_WRITE_COST,
                 clock=None):
        if db is None:
            db = Database(config=config)
        elif config is not None and config is not db.config:
            raise ExecutionError(
                "pass either an existing db or a config to build one, "
                "not both"
            )
        self.db = db
        config = db.config
        self.admission = AdmissionController(
            policy=(config.admission_policy if admission_policy is None
                    else admission_policy),
            tenant_quota=(config.tenant_quota if tenant_quota is None
                          else tenant_quota),
            quota_refill_rate=(
                config.quota_refill_rate if quota_refill_rate is None
                else quota_refill_rate
            ),
            queue_depth=(config.admission_queue_depth if queue_depth is None
                         else queue_depth),
            timeout=admission_timeout,
            clock=clock,
        )
        self.write_cost = float(write_cost)
        self.rollup = ServingRollup()
        self._commit_lock = threading.RLock()
        self._session_ids = itertools.count(1)
        self._commit_seq = 0
        self.commit_log = [(0, dict(db.catalog.version_vector()))]

    # -- session surface -------------------------------------------------
    def session(self, tenant="default", isolation="statement"):
        """Open a :class:`Session` for ``tenant``."""
        session_id = "s%d" % next(self._session_ids)
        return Session(self, tenant, isolation, session_id)

    def execute(self, sql_text, tenant="default"):
        """One-shot convenience: run ``sql_text`` in an ephemeral
        statement-isolation session for ``tenant``."""
        with self.session(tenant=tenant) as session:
            return session.execute(sql_text)

    def agent_session(self, policy=None, audit=None, tenant="agent"):
        """Open an :class:`~repro.engine.session.agent.AgentSession`
        over this server: always audited, optionally policy-gated, with
        ``begin()``/``commit()``/``rollback()`` holding the commit lock
        so the whole transaction is atomic against every other session.
        """
        return AgentSession(self, policy=policy, audit=audit,
                            tenant=tenant)

    # -- read path --------------------------------------------------------
    def pin_snapshot(self):
        """An immutable catalog snapshot pinned **between commits**.

        Taking the commit lock for the (microseconds-cheap) pin is what
        guarantees a snapshot never interleaves with a half-applied
        write — its version vector always equals a committed state.
        """
        with self._commit_lock:
            return self.db.catalog.snapshot()

    def _run_read(self, session, prepared):
        """Admission → snapshot-pinned execution → settlement."""
        t0 = time.perf_counter()
        ticket = None
        try:
            ticket = self.admission.admit(session.tenant, prepared.est_cost)
        except Exception:
            session.last_admission = None
            self.rollup.observe(
                session.tenant, session.session_id,
                time.perf_counter() - t0, 0.0, "shed",
            )
            raise
        session.last_admission = ticket
        snapshot = (
            session._pinned if session._pinned is not None
            else self.pin_snapshot()
        )
        try:
            result = self.db.pipeline.execute_prepared(
                prepared, snapshot=snapshot
            )
        except Exception:
            self.admission.cancel(ticket)
            raise
        actual = result.telemetry.total_work
        self.admission.settle(ticket, actual)
        result.admission = ticket
        self.rollup.observe(
            session.tenant, session.session_id,
            time.perf_counter() - t0, actual, ticket.outcome,
            queue_wait=ticket.queue_wait,
        )
        return result

    # -- write path --------------------------------------------------------
    def _run_write(self, session, sql_text, table=None, rows=None):
        """The single-writer commit path (SQL statement or bulk rows)."""
        if session.isolation == "session":
            raise ExecutionError(
                "session-isolation sessions are read-only (their pinned "
                "snapshot could never observe the write)"
            )
        t0 = time.perf_counter()
        ticket = self.admission.admit(session.tenant, self.write_cost)
        session.last_admission = ticket
        try:
            with self._commit_lock:
                if sql_text is not None:
                    result = self.db.execute(sql_text)
                else:
                    result = self.db.catalog.table(table).insert_rows(rows)
                self._commit_seq += 1
                self.commit_log.append(
                    (self._commit_seq,
                     dict(self.db.catalog.version_vector()))
                )
        except Exception:
            self.admission.cancel(ticket)
            raise
        # Writes settle at their flat charge (no execution telemetry).
        self.admission.settle(ticket, ticket.cost)
        self.rollup.observe(
            session.tenant, session.session_id,
            time.perf_counter() - t0, ticket.cost, ticket.outcome,
            queue_wait=ticket.queue_wait,
        )
        return result

    # -- introspection ----------------------------------------------------
    def commit_history(self):
        """A copy of the commit log: ``[(seq, {table: version}), ...]``."""
        with self._commit_lock:
            return [(seq, dict(vec)) for seq, vec in self.commit_log]

    def committed_vectors(self):
        """The set of committed version vectors, as hashable items."""
        with self._commit_lock:
            return {
                tuple(sorted(vec.items())) for __, vec in self.commit_log
            }

    def stats(self):
        """JSON-friendly server snapshot: admission counters, rollups,
        commit count, plan-cache stats."""
        return {
            "admission": self.admission.stats(),
            "rollup": self.rollup.summary(),
            "commits": self._commit_seq,
            "plan_cache": self.db.pipeline.plan_cache.stats(),
        }

    def __repr__(self):
        return "QueryServer(policy=%s, commits=%d)" % (
            self.admission.policy, self._commit_seq,
        )
