"""Physical plan trees.

A physical plan is a tree of operator nodes. Each node carries the
optimizer's estimates (``est_rows``, ``est_cost``) so learned components can
featurize plans, and the executor interprets the tree to produce rows and
an exact *work* measurement (tuples processed) that serves as the
deterministic ground-truth latency in experiments.
"""

from repro.common import PlanError


class PhysicalPlan:
    """Base class for physical operator nodes.

    Attributes:
        children: child plan nodes.
        est_rows: optimizer's output-cardinality estimate.
        est_cost: optimizer's cumulative cost estimate for the subtree.
    """

    #: Whether the parallel executor may split this operator's input into
    #: morsels. Order-sensitive operators (Sort, Limit, CrossJoin) and
    #: leaf shells keep it False and run single-threaded.
    morsel_parallel = False

    def __init__(self, children=()):
        self.children = list(children)
        self.est_rows = None
        self.est_cost = None

    @property
    def op_name(self):
        """Operator name used in plan rendering and featurization."""
        return type(self).__name__

    def walk(self):
        """Yield every node in the subtree, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def output_tables(self):
        """Set of base-table names contributing to this node's output."""
        out = set()
        for node in self.walk():
            if isinstance(node, (SeqScan, IndexScan)):
                out.add(node.table.lower())
            elif isinstance(node, ViewScan):
                out.update(t.lower() for t in node.view.query.tables)
        return out

    def pretty(self, indent=0):
        """Render the plan as an indented explain-style string."""
        pad = "  " * indent
        label = self.describe()
        est = ""
        if self.est_rows is not None:
            est = "  (rows=%s cost=%s)" % (
                format(self.est_rows, ".4g"),
                format(self.est_cost, ".4g") if self.est_cost is not None else "?",
            )
        lines = [pad + label + est]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self):
        """One-line node description (overridden by subclasses)."""
        return self.op_name

    def __repr__(self):
        return "<%s>" % self.describe()


class SeqScan(PhysicalPlan):
    """Full scan of a base table, applying pushed-down predicates."""

    morsel_parallel = True

    def __init__(self, table, predicates=()):
        super().__init__()
        self.table = table
        self.predicates = list(predicates)

    def describe(self):
        preds = " [%s]" % ", ".join(map(str, self.predicates)) if self.predicates else ""
        return "SeqScan(%s)%s" % (self.table, preds)


class IndexScan(PhysicalPlan):
    """Index lookup/range scan on one indexed predicate, plus residual filters."""

    morsel_parallel = True

    def __init__(self, table, index_name, predicate, residual=()):
        super().__init__()
        self.table = table
        self.index_name = index_name
        self.predicate = predicate
        self.residual = list(residual)

    def describe(self):
        res = " +%d residual" % len(self.residual) if self.residual else ""
        return "IndexScan(%s via %s on %s)%s" % (
            self.table, self.index_name, self.predicate, res
        )


class ViewScan(PhysicalPlan):
    """Scan of a materialized view with residual predicates."""

    morsel_parallel = True

    def __init__(self, view, residual=()):
        super().__init__()
        self.view = view
        self.residual = list(residual)

    def describe(self):
        return "ViewScan(%s, residual=%d)" % (self.view.name, len(self.residual))


class NestedLoopJoin(PhysicalPlan):
    """Tuple-at-a-time nested loops over the join edges (equi only)."""

    morsel_parallel = True  # probe side splits in parallel mode

    def __init__(self, left, right, edges):
        super().__init__([left, right])
        if not edges:
            raise PlanError("NestedLoopJoin requires at least one join edge")
        self.edges = list(edges)

    def describe(self):
        return "NestedLoopJoin(%s)" % ", ".join(map(str, self.edges))


class HashJoin(PhysicalPlan):
    """Hash join; the right child is the build side."""

    morsel_parallel = True  # probe side splits in parallel mode

    def __init__(self, left, right, edges):
        super().__init__([left, right])
        if not edges:
            raise PlanError("HashJoin requires at least one join edge")
        self.edges = list(edges)

    def describe(self):
        return "HashJoin(%s)" % ", ".join(map(str, self.edges))


class CrossJoin(PhysicalPlan):
    """Cartesian product (only produced for disconnected join graphs)."""

    def __init__(self, left, right):
        super().__init__([left, right])

    def describe(self):
        return "CrossJoin"


class Filter(PhysicalPlan):
    """Standalone filter (predicates that could not be pushed into a scan)."""

    morsel_parallel = True

    def __init__(self, child, predicates):
        super().__init__([child])
        self.predicates = list(predicates)

    def describe(self):
        return "Filter(%s)" % ", ".join(map(str, self.predicates))


class Project(PhysicalPlan):
    """Column projection (and implicit dedup when ``distinct``)."""

    morsel_parallel = True  # DISTINCT pre-dedup splits; the merge is serial

    def __init__(self, child, columns, distinct=False):
        super().__init__([child])
        self.columns = list(columns)  # list of (table, column)
        self.distinct = distinct

    def describe(self):
        cols = ", ".join("%s.%s" % tc for tc in self.columns)
        return "Project(%s)%s" % (cols, " DISTINCT" if self.distinct else "")


class HashAggregate(PhysicalPlan):
    """Group-by + aggregate evaluation via hashing."""

    morsel_parallel = True  # partial aggregates split; the merge is serial

    def __init__(self, child, group_by, aggregates):
        super().__init__([child])
        self.group_by = list(group_by)  # list of (table, column)
        self.aggregates = list(aggregates)

    def describe(self):
        return "HashAggregate(keys=%d, aggs=%s)" % (
            len(self.group_by),
            ", ".join(map(str, self.aggregates)),
        )


class Sort(PhysicalPlan):
    """Sort on one key."""

    def __init__(self, child, key, descending=False):
        super().__init__([child])
        self.key = key  # (table, column)
        self.descending = descending

    def describe(self):
        return "Sort(%s.%s %s)" % (
            self.key[0], self.key[1], "DESC" if self.descending else "ASC"
        )


class Limit(PhysicalPlan):
    """Truncate output to ``n`` rows."""

    def __init__(self, child, n):
        super().__init__([child])
        if n < 0:
            raise PlanError("LIMIT must be non-negative")
        self.n = n

    def describe(self):
        return "Limit(%d)" % self.n


class FusedPipelineOp(PhysicalPlan):
    """A fused Filter→Project/Aggregate(→Limit) plan tail.

    Produced by :func:`repro.engine.fusion.fuse_plan` at execution time —
    never by the planner, so cached plans and cost estimates stay in
    terms of the unfused operators. The executor evaluates predicate
    mask, projection/aggregation, and limit in one pass over the source's
    column arrays without materializing the intermediate filtered (or
    projected) relation.

    Exactly one of ``project_node``/``agg_node`` is set. ``predicates``
    is the *effective* predicate list: either lifted off the source scan
    or taken from an absorbed standalone ``Filter`` (``filter_node`` is
    then non-None so the executor can keep charging work under the
    ``Filter`` operator key). The fusion pass refuses tails that have
    both, so one mask stage always suffices.
    """

    morsel_parallel = True  # mask + partial aggregation split per-morsel

    def __init__(self, source, predicates=(), filter_node=None,
                 project_node=None, agg_node=None, limit_node=None):
        super().__init__([source])
        if (project_node is None) == (agg_node is None):
            raise PlanError(
                "FusedPipelineOp needs exactly one of project_node/agg_node"
            )
        if filter_node is not None and list(filter_node.predicates) != list(predicates):
            raise PlanError(
                "an absorbed Filter must supply the fused predicate list"
            )
        self.predicates = list(predicates)
        self.filter_node = filter_node
        self.project_node = project_node
        self.agg_node = agg_node
        self.limit_node = limit_node

    @property
    def stages(self):
        """Names of the absorbed pipeline stages, in evaluation order."""
        names = []
        if self.predicates:
            names.append("Filter")
        if self.agg_node is not None:
            names.append("Aggregate")
        if self.project_node is not None:
            names.append("Project")
            if self.project_node.distinct:
                names.append("Distinct")
        if self.limit_node is not None:
            names.append("Limit")
        return names

    @property
    def fused_ops(self):
        """How many pipeline stages this node absorbed."""
        return len(self.stages)

    def describe(self):
        return "FusedPipelineOp(%s)" % "→".join(self.stages)


class EmptyResult(PhysicalPlan):
    """Plan node producing no rows (e.g., contradictory predicates)."""

    def __init__(self, columns):
        super().__init__()
        self.columns = list(columns)

    def describe(self):
        return "EmptyResult"


def plan_signature(plan):
    """A hashable structural signature of a plan (for caching/featurizing)."""
    parts = []
    for node in plan.walk():
        parts.append(node.describe())
    return tuple(parts)


def pretty_analyze(plan, node_stats):
    """Render a plan EXPLAIN-ANALYZE-style: estimated vs actual rows.

    ``node_stats`` is the executor telemetry's per-node record list, in
    the same preorder as ``plan.walk()`` (each entry carries ``est_rows``,
    ``actual_rows`` and ``q_error``). Nodes the run never measured (e.g.
    a plan that was not executed) render ``actual=?``.
    """
    stats = list(node_stats)
    lines = []

    def fmt(entry):
        if entry is None:
            return ""
        est = entry.get("est_rows")
        actual = entry.get("actual_rows")
        q = entry.get("q_error")
        return "  (rows=%s actual=%s%s)" % (
            "?" if est is None else format(est, ".4g"),
            "?" if actual is None else actual,
            "" if q is None else " q=%s" % format(q, ".3g"),
        )

    def render(node, depth, it):
        entry = next(it, None)
        lines.append("  " * depth + node.describe() + fmt(entry))
        for child in node.children:
            render(child, depth + 1, it)

    render(plan, 0, iter(stats))
    return "\n".join(lines)


def parallel_operators(plan):
    """Sorted op names in ``plan`` eligible for morsel-parallel execution."""
    return sorted({
        node.op_name for node in plan.walk() if node.morsel_parallel
    })


def operator_counts(plan):
    """How many nodes of each operator type a plan contains.

    Returns ``{op_name: count}`` — handy for cross-checking executor
    telemetry (every node should contribute exactly one batch) and for
    plan-shape features.
    """
    counts = {}
    for node in plan.walk():
        counts[node.op_name] = counts.get(node.op_name, 0) + 1
    return counts
