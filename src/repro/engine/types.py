"""Core value types and schema objects for the relational substrate."""

from enum import Enum

import numpy as np

from repro.common import CatalogError


class DataType(Enum):
    """Supported column data types."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"

    @property
    def numpy_dtype(self):
        """The NumPy dtype used to store a column of this type."""
        if self is DataType.INT:
            return np.int64
        if self is DataType.FLOAT:
            return np.float64
        return object

    def coerce(self, value):
        """Coerce a Python value to this type (None passes through)."""
        if value is None:
            return None
        if self is DataType.INT:
            return int(value)
        if self is DataType.FLOAT:
            return float(value)
        return str(value)

    @classmethod
    def parse(cls, name):
        """Parse a SQL type name (``INT``/``INTEGER``/``FLOAT``/``REAL``/
        ``DOUBLE``/``TEXT``/``VARCHAR``/``STRING``) into a :class:`DataType`."""
        key = name.strip().upper()
        mapping = {
            "INT": cls.INT,
            "INTEGER": cls.INT,
            "BIGINT": cls.INT,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "STRING": cls.TEXT,
        }
        if key not in mapping:
            raise CatalogError("unknown SQL type %r" % (name,))
        return mapping[key]


class ColumnSchema:
    """Schema entry for one column.

    Attributes:
        name: column name (case-preserved, matched case-insensitively).
        dtype: the :class:`DataType`.
        sensitive: ground-truth flag used by the security experiments —
            whether the column holds sensitive data (SSNs, emails, ...).
    """

    __slots__ = ("name", "dtype", "sensitive")

    def __init__(self, name, dtype, sensitive=False):
        if not name:
            raise CatalogError("column name must be non-empty")
        self.name = name
        self.dtype = dtype if isinstance(dtype, DataType) else DataType.parse(dtype)
        self.sensitive = sensitive

    def __repr__(self):
        return "ColumnSchema(%r, %s)" % (self.name, self.dtype.value)

    def __eq__(self, other):
        return (
            isinstance(other, ColumnSchema)
            and self.name == other.name
            and self.dtype == other.dtype
        )

    def __hash__(self):
        return hash((self.name, self.dtype))


class TableSchema:
    """Ordered collection of :class:`ColumnSchema` with name lookup."""

    def __init__(self, name, columns):
        if not name:
            raise CatalogError("table name must be non-empty")
        self.name = name
        self.columns = list(columns)
        self._index = {}
        for i, col in enumerate(self.columns):
            key = col.name.lower()
            if key in self._index:
                raise CatalogError(
                    "duplicate column %r in table %r" % (col.name, name)
                )
            self._index[key] = i

    def column(self, name):
        """Return the :class:`ColumnSchema` for ``name`` (case-insensitive)."""
        try:
            return self.columns[self._index[name.lower()]]
        except KeyError:
            raise CatalogError(
                "table %r has no column %r" % (self.name, name)
            )

    def column_index(self, name):
        """Return the ordinal position of ``name``."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(
                "table %r has no column %r" % (self.name, name)
            )

    def has_column(self, name):
        """Whether a column with this name exists."""
        return name.lower() in self._index

    @property
    def column_names(self):
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def __len__(self):
        return len(self.columns)

    def __repr__(self):
        return "TableSchema(%r, %d columns)" % (self.name, len(self.columns))
