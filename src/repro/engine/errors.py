"""The engine's exception hierarchy, in one place.

Before the session API, callers had to know which layer raised what:
SQL-layer failures raised ``repro.common.ParseError``, the serving layer
raised ``repro.engine.server.AdmissionError``, and the two shared no base
below :class:`~repro.common.ReproError`. This module is the single import
point for everything the engine signals::

    EngineError
    ├── ParseError      SQL / AISQL text could not be parsed
    ├── CatalogError    missing or invalid table / column / index / view
    ├── PlanError       no valid plan (bad query shape, cache misuse)
    ├── ExecutionError  an operator failed while producing rows
    │   └── AdmissionError  refused by admission control (shed / timeout)
    ├── PolicyError     a session policy denied the statement
    └── SessionError    session lifecycle misuse (closed, no transaction)

Back-compat: the pre-existing classes are the *same objects* as their old
spellings (``repro.common.ParseError is repro.engine.errors.ParseError``;
``repro.engine.server.AdmissionError`` imports from here), so existing
``except`` clauses keep working unchanged. The class bodies of the shared
base classes live in :mod:`repro.common.errors` — below the engine — so
the common layer can expose them without importing the engine.
"""

from repro.common.errors import (
    CatalogError,
    EngineError,
    ExecutionError,
    ParseError,
    PlanError,
    ReproError,
)


class PolicyError(EngineError):
    """A session policy denied a statement (or its result).

    Attributes:
        decision: the :class:`~repro.engine.session.policy.PolicyDecision`
            that denied, when one is available (``None`` otherwise) — it
            carries the rule that fired and the human-readable reason.
    """

    def __init__(self, message, decision=None):
        super().__init__(message)
        self.decision = decision


class SessionError(EngineError):
    """A session was misused: closed handle, rollback with no open
    transaction, nested ``begin()``, write on a read-only session..."""


class AdmissionError(ExecutionError):
    """A query was refused admission (shed, queue full, or timed out).

    Derives from :class:`ExecutionError` (pre-session callers caught it
    there) and therefore from :class:`EngineError` like every other
    engine failure.
    """


__all__ = [
    "ReproError",
    "EngineError",
    "CatalogError",
    "ParseError",
    "PlanError",
    "ExecutionError",
    "AdmissionError",
    "PolicyError",
    "SessionError",
]
