"""The planner: access-path selection + join ordering + plan assembly.

``Planner`` is deliberately pluggable along the three axes the learned
components replace:

* the **cardinality estimator** (traditional / sampling / learned MSCN-lite),
* the **join enumerator** (``"dp"``, ``"greedy"``, ``"random"``, or an
  explicit order supplied by an RL/MCTS agent),
* the **cost model** (whose constants the knob tuner moves).

That pluggability is the point: every AI4DB optimization experiment is
"swap one axis, hold the rest fixed, measure executed work".
"""

from repro.common import CatalogError, PlanError
from repro.engine import plans as P
from repro.engine.optimizer.cardinality import TraditionalEstimator
from repro.engine.optimizer.cost import CostModel, _SinglePredicateView
from repro.engine.optimizer.hints import (
    EXHAUSTIVE_MAX_TABLES,
    PlanCandidate,
)
from repro.engine.optimizer.join_enum import dp_left_deep, greedy_order, random_order
from repro.engine.optimizer.ues import bound_cost, ues_order

_ENUMERATORS = {"dp": dp_left_deep, "greedy": greedy_order}


class Planner:
    """Builds physical plans for conjunctive queries.

    Args:
        catalog: the database catalog.
        estimator: cardinality estimator; defaults to the traditional
            histogram estimator.
        cost_model: a :class:`CostModel`; default constants unless knobs say
            otherwise.
        enumerator: ``"dp"``, ``"greedy"`` or ``"random"``.
        use_views: consider matching materialized views.
        use_indexes: consider index scans as access paths.
        include_hypothetical: treat what-if indexes as usable (for advisor
            costing only — executing such a plan raises).
        seed: seed for the random enumerator.
    """

    def __init__(
        self,
        catalog,
        estimator=None,
        cost_model=None,
        enumerator="dp",
        use_views=True,
        use_indexes=True,
        include_hypothetical=False,
        seed=0,
    ):
        self.catalog = catalog
        self.estimator = estimator or TraditionalEstimator(catalog)
        self.cost_model = cost_model or CostModel()
        if enumerator not in ("dp", "greedy", "random"):
            raise PlanError("enumerator must be dp, greedy, or random")
        self.enumerator = enumerator
        self.use_views = use_views
        self.use_indexes = use_indexes
        self.include_hypothetical = include_hypothetical
        self.seed = seed

    # ------------------------------------------------------------------
    def plan(self, query, order=None):
        """Produce an annotated physical plan for ``query``.

        Args:
            query: a :class:`~repro.engine.query.ConjunctiveQuery`.
            order: optional explicit left-deep join order (list of table
                names); when given, enumeration is skipped — this is the
                hook the learned join-order agents use.
        """
        if query.limit == 0:
            plan = P.EmptyResult(self._output_columns(query))
            self.cost_model.annotate(plan, self.estimator, query)
            return plan
        view_match = self.catalog.matching_view(query) if self.use_views else None
        if view_match is not None:
            view, residual = view_match
            plan = P.ViewScan(view, residual)
            plan = self._finalize(plan, query)
            self.cost_model.annotate(plan, self.estimator, query)
            return plan
        if order is None:
            if len(query.tables) == 1:
                order = [query.tables[0]]
            elif self.enumerator == "random":
                order, __ = random_order(
                    query, self.estimator, self.cost_model, seed=self.seed
                )
            else:
                order, __ = _ENUMERATORS[self.enumerator](
                    query, self.estimator, self.cost_model
                )
        else:
            if {t.lower() for t in order} != {t.lower() for t in query.tables}:
                raise PlanError("explicit order must cover the query's tables")
        return self._assemble(query, order)

    def plan_with_hints(self, query, hints, order=None):
        """Build a plan under a :class:`~repro.engine.optimizer.hints.
        HintSet` — the candidate-generation entry point.

        The hint set's ``join_order`` strategy picks the order
        (``"default"`` reproduces :meth:`plan` exactly) and
        ``use_indexes`` overrides access-path selection; execution-time
        hints (fusion/parallel) are carried by the hint set for the
        pipeline, not applied here. An explicit ``order`` beats the
        strategy, mirroring :meth:`plan`.
        """
        if query.limit == 0:
            plan = P.EmptyResult(self._output_columns(query))
            self.cost_model.annotate(plan, self.estimator, query)
            return plan
        view_match = self.catalog.matching_view(query) if self.use_views else None
        if view_match is not None:
            view, residual = view_match
            plan = P.ViewScan(view, residual)
            plan = self._finalize(plan, query)
            self.cost_model.annotate(plan, self.estimator, query)
            return plan
        if order is None:
            order = self._hint_order(query, hints)
        elif {t.lower() for t in order} != {t.lower() for t in query.tables}:
            raise PlanError("explicit order must cover the query's tables")
        return self._assemble(query, order, use_indexes=hints.use_indexes)

    def plan_candidates(self, query, arms, order=None):
        """One :class:`~repro.engine.optimizer.hints.PlanCandidate` per arm.

        Each candidate carries the arm's plan and the cost model's
        estimate for it; the UES arm additionally carries its pessimistic
        :func:`~repro.engine.optimizer.ues.bound_cost` guarantee (the
        regret guard's anchor). Unknown tables surface as
        :class:`~repro.common.CatalogError` — never a raw ``KeyError`` —
        so dropped-table races fail uniformly across all selectors.
        """
        candidates = []
        for hints in arms:
            try:
                plan = self.plan_with_hints(query, hints, order=order)
            except KeyError as exc:  # defensive: unify on CatalogError
                raise CatalogError(
                    "planning failed for arm %r: unknown catalog object %s"
                    % (hints.name, exc)
                )
            bound = None
            if hints.join_order == "ues" and len(query.tables) > 0:
                __, ___, bound = bound_cost(
                    self.catalog, query, self.cost_model
                )
            candidates.append(PlanCandidate(
                arm=hints.name,
                hints=hints,
                plan=plan,
                est_cost=self._plan_cost(plan),
                bound=bound,
            ))
        return candidates

    def _hint_order(self, query, hints):
        """The left-deep order a hint set's join-order strategy produces."""
        if len(query.tables) == 1:
            return [query.tables[0]]
        strategy = hints.join_order
        if strategy == "ues":
            order, __ = ues_order(self.catalog, query)
            return order
        if strategy == "greedy":
            order, __ = greedy_order(query, self.estimator, self.cost_model)
            return order
        if strategy == "exhaustive":
            if len(query.tables) <= EXHAUSTIVE_MAX_TABLES:
                order, __ = dp_left_deep(
                    query, self.estimator, self.cost_model
                )
            else:
                order, __ = greedy_order(
                    query, self.estimator, self.cost_model
                )
            return order
        # "default": whatever this planner is configured with.
        if self.enumerator == "random":
            order, __ = random_order(
                query, self.estimator, self.cost_model, seed=self.seed
            )
        else:
            order, __ = _ENUMERATORS[self.enumerator](
                query, self.estimator, self.cost_model
            )
        return order

    @staticmethod
    def _plan_cost(plan):
        """A plan's whole-tree cost estimate (floored at 1.0)."""
        for value in (plan.est_cost, plan.est_rows):
            if value is not None:
                return max(1.0, float(value))
        return 1.0

    def _assemble(self, query, order, use_indexes=None):
        """Access paths + left-deep joins + finalize + cost annotation.

        The shared back half of :meth:`plan` and :meth:`plan_with_hints`:
        identical inputs produce identical plans, which is what keeps the
        default selector bit-compatible with the legacy single-path
        planner. ``use_indexes=None`` inherits the planner's setting.
        """
        plan = self._access_path(query, order[0], use_indexes=use_indexes)
        joined = [order[0]]
        for t in order[1:]:
            right = self._access_path(query, t, use_indexes=use_indexes)
            edges = query.edges_between(joined, t)
            if edges:
                left_rows = self.estimator.estimate_subset(query, joined)
                right_rows = self.estimator.estimate_table(query, t)
                out_rows = self.estimator.estimate_subset(query, joined + [t])
                kind, __ = self.cost_model.choose_join(
                    left_rows, right_rows, out_rows
                )
                if kind == "hash":
                    plan = P.HashJoin(plan, right, edges)
                else:
                    plan = P.NestedLoopJoin(plan, right, edges)
            else:
                plan = P.CrossJoin(plan, right)
            joined.append(t)
        plan = self._finalize(plan, query)
        self.cost_model.annotate(plan, self.estimator, query)
        return plan

    # ------------------------------------------------------------------
    def _access_path(self, query, table, use_indexes=None):
        """Choose SeqScan vs IndexScan for one base table.

        ``use_indexes`` overrides the planner-level setting per call (the
        hint-set axis); ``None`` inherits it.
        """
        allow_indexes = (
            self.use_indexes if use_indexes is None else use_indexes
        )
        preds = query.predicates_on(table)
        if not (allow_indexes and preds):
            return P.SeqScan(table, preds)
        table_rows = max(1.0, float(self.catalog.table(table).n_rows))
        best = None
        for pred in preds:
            if pred.op == "!=":
                continue
            idx = self.catalog.index_on(
                table, pred.column, include_hypothetical=self.include_hypothetical
            )
            if idx is None:
                continue
            if idx.kind == "hash" and pred.op != "=":
                continue
            matching = self.estimator.estimate_table(
                _SinglePredicateView(query, table, [pred]), table
            )
            if best is None or matching < best[0]:
                best = (matching, pred, idx)
        if best is None:
            return P.SeqScan(table, preds)
        matching, pred, idx = best
        seq_cost = self.cost_model.seq_scan(table_rows)
        idx_cost = self.cost_model.index_scan(matching)
        if idx_cost >= seq_cost:
            return P.SeqScan(table, preds)
        residual = [p for p in preds if p is not pred]
        return P.IndexScan(table, idx.name, pred, residual)

    def _output_columns(self, query):
        if query.projections:
            return list(query.projections)
        cols = []
        for t in query.tables:
            schema = self.catalog.table(t).schema
            cols.extend((t, c.name) for c in schema.columns)
        return cols

    def _finalize(self, plan, query):
        """Attach aggregate / sort / project / limit operators.

        Sort runs before projection so that ORDER BY keys absent from the
        select list are still available to the sort operator.
        """
        if query.aggregates or query.group_by:
            plan = P.HashAggregate(plan, query.group_by, query.aggregates)
        else:
            if query.order_by is not None:
                key, descending = query.order_by
                plan = P.Sort(plan, key, descending)
            if query.projections:
                plan = P.Project(plan, query.projections,
                                 distinct=query.distinct)
        if query.limit is not None:
            plan = P.Limit(plan, query.limit)
        return plan
