"""The planner: access-path selection + join ordering + plan assembly.

``Planner`` is deliberately pluggable along the three axes the learned
components replace:

* the **cardinality estimator** (traditional / sampling / learned MSCN-lite),
* the **join enumerator** (``"dp"``, ``"greedy"``, ``"random"``, or an
  explicit order supplied by an RL/MCTS agent),
* the **cost model** (whose constants the knob tuner moves).

That pluggability is the point: every AI4DB optimization experiment is
"swap one axis, hold the rest fixed, measure executed work".
"""

from repro.common import PlanError
from repro.engine import plans as P
from repro.engine.optimizer.cardinality import TraditionalEstimator
from repro.engine.optimizer.cost import CostModel, _SinglePredicateView
from repro.engine.optimizer.join_enum import dp_left_deep, greedy_order, random_order

_ENUMERATORS = {"dp": dp_left_deep, "greedy": greedy_order}


class Planner:
    """Builds physical plans for conjunctive queries.

    Args:
        catalog: the database catalog.
        estimator: cardinality estimator; defaults to the traditional
            histogram estimator.
        cost_model: a :class:`CostModel`; default constants unless knobs say
            otherwise.
        enumerator: ``"dp"``, ``"greedy"`` or ``"random"``.
        use_views: consider matching materialized views.
        use_indexes: consider index scans as access paths.
        include_hypothetical: treat what-if indexes as usable (for advisor
            costing only — executing such a plan raises).
        seed: seed for the random enumerator.
    """

    def __init__(
        self,
        catalog,
        estimator=None,
        cost_model=None,
        enumerator="dp",
        use_views=True,
        use_indexes=True,
        include_hypothetical=False,
        seed=0,
    ):
        self.catalog = catalog
        self.estimator = estimator or TraditionalEstimator(catalog)
        self.cost_model = cost_model or CostModel()
        if enumerator not in ("dp", "greedy", "random"):
            raise PlanError("enumerator must be dp, greedy, or random")
        self.enumerator = enumerator
        self.use_views = use_views
        self.use_indexes = use_indexes
        self.include_hypothetical = include_hypothetical
        self.seed = seed

    # ------------------------------------------------------------------
    def plan(self, query, order=None):
        """Produce an annotated physical plan for ``query``.

        Args:
            query: a :class:`~repro.engine.query.ConjunctiveQuery`.
            order: optional explicit left-deep join order (list of table
                names); when given, enumeration is skipped — this is the
                hook the learned join-order agents use.
        """
        if query.limit == 0:
            plan = P.EmptyResult(self._output_columns(query))
            self.cost_model.annotate(plan, self.estimator, query)
            return plan
        view_match = self.catalog.matching_view(query) if self.use_views else None
        if view_match is not None:
            view, residual = view_match
            plan = P.ViewScan(view, residual)
            plan = self._finalize(plan, query)
            self.cost_model.annotate(plan, self.estimator, query)
            return plan
        if order is None:
            if len(query.tables) == 1:
                order = [query.tables[0]]
            elif self.enumerator == "random":
                order, __ = random_order(
                    query, self.estimator, self.cost_model, seed=self.seed
                )
            else:
                order, __ = _ENUMERATORS[self.enumerator](
                    query, self.estimator, self.cost_model
                )
        else:
            if {t.lower() for t in order} != {t.lower() for t in query.tables}:
                raise PlanError("explicit order must cover the query's tables")
        plan = self._access_path(query, order[0])
        joined = [order[0]]
        for t in order[1:]:
            right = self._access_path(query, t)
            edges = query.edges_between(joined, t)
            if edges:
                left_rows = self.estimator.estimate_subset(query, joined)
                right_rows = self.estimator.estimate_table(query, t)
                out_rows = self.estimator.estimate_subset(query, joined + [t])
                kind, __ = self.cost_model.choose_join(
                    left_rows, right_rows, out_rows
                )
                if kind == "hash":
                    plan = P.HashJoin(plan, right, edges)
                else:
                    plan = P.NestedLoopJoin(plan, right, edges)
            else:
                plan = P.CrossJoin(plan, right)
            joined.append(t)
        plan = self._finalize(plan, query)
        self.cost_model.annotate(plan, self.estimator, query)
        return plan

    # ------------------------------------------------------------------
    def _access_path(self, query, table):
        """Choose SeqScan vs IndexScan for one base table."""
        preds = query.predicates_on(table)
        if not (self.use_indexes and preds):
            return P.SeqScan(table, preds)
        table_rows = max(1.0, float(self.catalog.table(table).n_rows))
        best = None
        for pred in preds:
            if pred.op == "!=":
                continue
            idx = self.catalog.index_on(
                table, pred.column, include_hypothetical=self.include_hypothetical
            )
            if idx is None:
                continue
            if idx.kind == "hash" and pred.op != "=":
                continue
            matching = self.estimator.estimate_table(
                _SinglePredicateView(query, table, [pred]), table
            )
            if best is None or matching < best[0]:
                best = (matching, pred, idx)
        if best is None:
            return P.SeqScan(table, preds)
        matching, pred, idx = best
        seq_cost = self.cost_model.seq_scan(table_rows)
        idx_cost = self.cost_model.index_scan(matching)
        if idx_cost >= seq_cost:
            return P.SeqScan(table, preds)
        residual = [p for p in preds if p is not pred]
        return P.IndexScan(table, idx.name, pred, residual)

    def _output_columns(self, query):
        if query.projections:
            return list(query.projections)
        cols = []
        for t in query.tables:
            schema = self.catalog.table(t).schema
            cols.extend((t, c.name) for c in schema.columns)
        return cols

    def _finalize(self, plan, query):
        """Attach aggregate / sort / project / limit operators.

        Sort runs before projection so that ORDER BY keys absent from the
        select list are still available to the sort operator.
        """
        if query.aggregates or query.group_by:
            plan = P.HashAggregate(plan, query.group_by, query.aggregates)
        else:
            if query.order_by is not None:
                key, descending = query.order_by
                plan = P.Sort(plan, key, descending)
            if query.projections:
                plan = P.Project(plan, query.projections,
                                 distinct=query.distinct)
        if query.limit is not None:
            plan = P.Limit(plan, query.limit)
        return plan
