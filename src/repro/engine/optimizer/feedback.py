"""Cardinality feedback: observed actuals correcting future estimates.

Closes the loop the AI4DB literature keeps open in one-shot learned
estimators: after every execution the pipeline feeds each plan node's
**actual** output cardinality (from the executor's per-node counters)
into a :class:`QueryFeedbackStore`, keyed by the structural signature of
the sub-query that node computes. Estimators then consult the store:

* :class:`FeedbackCorrectedEstimator` wraps any base estimator and
  returns the remembered actual on an exact signature hit — repeated
  (sub-)queries are estimated perfectly after one execution, exactly the
  per-subplan memo of adaptive re-optimization à la Leo;
* :meth:`repro.ai4db.optimization.cardinality.LearnedCardinalityEstimator.
  refit_from_feedback` retrains the learned model on its base training
  set plus the store's observed pairs, so feedback also *generalizes*.

The store carries a monotonically increasing :attr:`~QueryFeedbackStore.
version` that bumps only when an observation reveals **drift** — the
estimate the plan was built from missed the actual by at least
``drift_threshold`` q-error (or a previously stored actual changed).
The query pipeline keys its plan cache on ``(catalog epoch, feedback
version)``, so a drift observation invalidates cached plans and the next
run replans with corrected estimates — while well-estimated workloads
keep their warm cache untouched.
"""

from collections import OrderedDict

from repro.engine import plans as P
from repro.engine.optimizer.cardinality import CardinalityEstimator
from repro.engine.query import ConjunctiveQuery
from repro.engine.telemetry import q_error


def induced_subquery(query, tables):
    """The sub-query of ``query`` over a table subset.

    Keeps exactly the tables, the join edges with both ends inside the
    subset, and the local predicates on those tables — the query whose
    result cardinality a plan node over ``tables`` produces. Shared by
    the feedback store and the learned/sampling estimators so signatures
    agree everywhere.
    """
    subset = {t.lower() for t in tables}
    sub_tables = [t for t in query.tables if t.lower() in subset]
    sub_edges = [
        e for e in query.join_edges
        if e.left_table.lower() in subset and e.right_table.lower() in subset
    ]
    sub_preds = [p for p in query.predicates if p.table.lower() in subset]
    return ConjunctiveQuery(
        tables=sub_tables, join_edges=sub_edges, predicates=sub_preds
    )


class QueryFeedbackStore:
    """Observed (sub-plan signature → actual cardinality) memory.

    Args:
        drift_threshold: q-error at or above which a *new* observation
            counts as drift and bumps :attr:`version` (invalidating
            cached plans). 2.0 — "off by 2× either way" — is the
            conventional boundary between benign and plan-changing
            misestimation.
        capacity: maximum remembered signatures (LRU-evicted beyond it).

    Attributes:
        version: global feedback generation; starts at 0, bumps on drift.
        observations: total :meth:`observe` calls.
        drifts: how many observations bumped the version.

    Drift is also tracked **per table**: a drifting observation bumps the
    drift version of every base table its sub-query covers, and
    :meth:`version_vector` restricts that state to a table set — the
    scoped invalidation token the plan cache pairs with the catalog's,
    so drift on one table's estimates never evicts plans over others.
    """

    def __init__(self, drift_threshold=2.0, capacity=4096):
        if drift_threshold < 1.0:
            raise ValueError("drift_threshold is a q-error and must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.drift_threshold = float(drift_threshold)
        self.capacity = int(capacity)
        self._obs = OrderedDict()  # signature -> record dict
        self.version = 0
        self.observations = 0
        self.drifts = 0
        self._table_versions = {}
        #: Callables invoked with the drifting table list on every drift
        #: (the plan-selection layer registers its arm-demotion hook here).
        self.drift_listeners = []

    def observe(self, query, tables, est_rows, actual_rows):
        """Record one node's actual output cardinality.

        Args:
            query: the executed :class:`ConjunctiveQuery`.
            tables: the base tables the node's output covers.
            est_rows: the estimate the plan carried (may be ``None``).
            actual_rows: the executor-counted actual output rows.

        Returns:
            ``True`` when the observation was drift (version bumped).
        """
        sub = induced_subquery(query, tables)
        key = sub.signature()
        prev = self._obs.get(key)
        actual = int(actual_rows)
        self._obs[key] = {
            "query": sub,
            "tables": tuple(sorted(t.lower() for t in tables)),
            "est_rows": None if est_rows is None else float(est_rows),
            "actual_rows": actual,
        }
        self._obs.move_to_end(key)
        while len(self._obs) > self.capacity:
            self._obs.popitem(last=False)
        self.observations += 1
        # Only *new information* can drift: an unseen signature whose
        # planning estimate was badly off, or a remembered actual that
        # changed underneath us. Re-observing a known-stable value must
        # not bump the version, or every execution would invalidate the
        # plan cache.
        novel = prev is None or prev["actual_rows"] != actual
        err = q_error(est_rows, actual_rows)
        if novel and err is not None and err >= self.drift_threshold:
            self.version += 1
            self.drifts += 1
            for t in tables:
                key_t = t.lower()
                self._table_versions[key_t] = (
                    self._table_versions.get(key_t, 0) + 1
                )
            for listener in self.drift_listeners:
                listener(tables)
            return True
        return False

    def table_version(self, name):
        """One table's drift generation (0 when it never drifted)."""
        return self._table_versions.get(name.lower(), 0)

    def version_vector(self, tables):
        """Sorted ``((name, drift_version), ...)`` over ``tables``.

        The feedback half of a scoped plan-cache token: it moves exactly
        when an estimate covering one of these tables drifts.
        """
        names = sorted({t.lower() for t in tables})
        return tuple((n, self._table_versions.get(n, 0)) for n in names)

    def lookup(self, query, tables):
        """The remembered actual for this sub-query, or ``None``."""
        record = self._obs.get(induced_subquery(query, tables).signature())
        return None if record is None else record["actual_rows"]

    def pairs(self):
        """``(queries, actuals)`` of every remembered observation —
        training data for :meth:`LearnedCardinalityEstimator.
        refit_from_feedback`."""
        queries = [r["query"] for r in self._obs.values()]
        actuals = [r["actual_rows"] for r in self._obs.values()]
        return queries, actuals

    def clear(self):
        """Forget every observation (version and counters are kept)."""
        self._obs.clear()

    def stats(self):
        """A plain-dict snapshot (JSON-friendly)."""
        return {
            "size": len(self._obs),
            "capacity": self.capacity,
            "version": self.version,
            "observations": self.observations,
            "drifts": self.drifts,
            "drift_threshold": self.drift_threshold,
            "table_versions": dict(self._table_versions),
        }

    def __len__(self):
        return len(self._obs)

    def __repr__(self):
        return "QueryFeedbackStore(size=%d, version=%d, observations=%d)" % (
            len(self._obs), self.version, self.observations,
        )


class FeedbackCorrectedEstimator(CardinalityEstimator):
    """Wraps a base estimator with exact-signature feedback overrides.

    On an exact sub-query signature hit the remembered actual is
    returned; otherwise the base estimator answers. The planner sees one
    ordinary :class:`CardinalityEstimator`, so feedback correction
    composes with any base — traditional, sampling, or learned.
    """

    def __init__(self, base, store):
        self.base = base
        self.store = store

    def estimate_table(self, query, table):
        hit = self.store.lookup(query, [table])
        if hit is not None:
            return float(hit)
        return self.base.estimate_table(query, table)

    def estimate_subset(self, query, tables):
        hit = self.store.lookup(query, tables)
        if hit is not None:
            return float(hit)
        return self.base.estimate_subset(query, tables)

    def __repr__(self):
        return "FeedbackCorrectedEstimator(%r)" % (self.base,)


#: Plan nodes whose output is the join of base tables (feedback-ingestible).
_JOIN_NODES = (P.HashJoin, P.NestedLoopJoin, P.CrossJoin)


def ingest_execution(store, query, plan, node_stats):
    """Feed one execution's per-node actuals into the store.

    Walks ``plan`` (preorder) alongside the telemetry's ``node_stats``
    and observes every node whose output cardinality is the result of a
    well-defined sub-query: scans (post-filter table cardinality) and
    join nodes (join-subset cardinality). Shaping operators (project
    without dedup, sort, limit, aggregate) are skipped — their outputs
    are not join cardinalities.

    Returns the number of observations ingested.
    """
    known = {t.lower() for t in query.tables}
    ingested = 0
    for node, entry in zip(plan.walk(), node_stats):
        actual = entry.get("actual_rows")
        if actual is None:
            continue
        if isinstance(node, (P.SeqScan, P.IndexScan)):
            tables = [node.table]
        elif isinstance(node, _JOIN_NODES) or isinstance(node, P.ViewScan):
            tables = sorted(node.output_tables())
        else:
            continue
        if not tables or not {t.lower() for t in tables} <= known:
            continue
        store.observe(query, tables, entry.get("est_rows"), actual)
        ingested += 1
    return ingested
