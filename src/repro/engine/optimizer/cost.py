"""Analytic cost model.

Costs are expressed in abstract *work units* = tuples touched, so that the
executor's measured work (see :mod:`repro.engine.executor`) is directly
comparable to the optimizer's estimate: a perfect estimator makes the cost
model exact. Knobs modulate the constants (e.g., a small ``work_mem``
makes large hash builds spill and charges a penalty), which is what gives
the knob-tuning experiments a realistic optimization surface.
"""

from repro.common import PlanError
from repro.engine import plans as P

#: Default knob-dependent constants; overridden per-database via KnobConfig.
DEFAULT_COST_PARAMS = {
    "cpu_tuple_cost": 1.0,       # cost of touching one tuple
    "index_probe_cost": 4.0,     # cost of one B+Tree descent
    "hash_build_cost": 1.5,      # per-tuple hash-table build cost
    "hash_probe_cost": 1.0,      # per-tuple probe cost
    "nl_inner_cost": 1.0,        # per inner-tuple cost in nested loops
    "sort_cost_factor": 1.2,     # multiplier on n*log2(n)
    "work_mem_rows": 100000,     # hash build rows before spilling
    "spill_penalty": 3.0,        # multiplier when a hash build spills
    # How much of a scan's cost zone-map pruning is assumed to save per
    # unit of predicted prune fraction. 0.0 (the default) keeps the cost
    # model exact against the executor's measured work, which charges
    # the full scan regardless of pruning; tuning experiments can raise
    # it to let the optimizer favour scans over selective predicates on
    # clustered columns.
    "zone_map_discount": 0.0,
}


class CostModel:
    """Computes per-node and cumulative plan costs from cardinalities.

    Args:
        params: overrides for :data:`DEFAULT_COST_PARAMS`.
    """

    def __init__(self, params=None):
        self.params = dict(DEFAULT_COST_PARAMS)
        if params:
            unknown = set(params) - set(DEFAULT_COST_PARAMS)
            if unknown:
                raise PlanError("unknown cost params: %s" % ", ".join(sorted(unknown)))
            self.params.update(params)

    # -- primitive formulas ------------------------------------------------
    def seq_scan(self, n_rows, prune_fraction=0.0):
        """Cost of scanning ``n_rows`` tuples.

        ``prune_fraction`` is the predicted fraction of segments zone
        maps will skip; it only discounts the cost when the
        ``zone_map_discount`` knob is non-zero.
        """
        discount = self.params["zone_map_discount"]
        factor = 1.0 - discount * min(1.0, max(0.0, prune_fraction))
        return self.params["cpu_tuple_cost"] * max(0.0, n_rows) * factor

    def index_scan(self, n_matching):
        """Cost of an index probe returning ``n_matching`` tuples."""
        return self.params["index_probe_cost"] + self.params["cpu_tuple_cost"] * max(
            0.0, n_matching
        )

    def hash_join(self, left_rows, right_rows, out_rows):
        """Cost of building on the right side and probing with the left."""
        build = self.params["hash_build_cost"] * max(0.0, right_rows)
        if right_rows > self.params["work_mem_rows"]:
            build *= self.params["spill_penalty"]
        probe = self.params["hash_probe_cost"] * max(0.0, left_rows)
        return build + probe + self.params["cpu_tuple_cost"] * max(0.0, out_rows)

    def nested_loop_join(self, left_rows, right_rows, out_rows):
        """Cost of scanning the inner side once per outer tuple."""
        return (
            self.params["nl_inner_cost"] * max(0.0, left_rows) * max(0.0, right_rows)
            + self.params["cpu_tuple_cost"] * max(0.0, out_rows)
        )

    def cross_join(self, left_rows, right_rows):
        """Cost of a Cartesian product."""
        out = max(0.0, left_rows) * max(0.0, right_rows)
        return self.params["cpu_tuple_cost"] * out + out

    def sort(self, n_rows):
        """Cost of sorting ``n_rows`` tuples."""
        import math

        n = max(1.0, n_rows)
        return self.params["sort_cost_factor"] * n * math.log2(n + 1)

    def aggregate(self, in_rows, out_groups):
        """Cost of hashing ``in_rows`` into ``out_groups`` groups."""
        return self.params["cpu_tuple_cost"] * (max(0.0, in_rows) + max(0.0, out_groups))

    def choose_join(self, left_rows, right_rows, out_rows):
        """Pick the cheaper physical join; returns ``(kind, cost)``.

        ``kind`` is ``"hash"`` or ``"nl"``. Nested loops win only for tiny
        inputs, matching real optimizer behaviour.
        """
        hash_cost = self.hash_join(left_rows, right_rows, out_rows)
        nl_cost = self.nested_loop_join(left_rows, right_rows, out_rows)
        if nl_cost < hash_cost:
            return "nl", nl_cost
        return "hash", hash_cost

    # -- whole-plan costing --------------------------------------------------
    def annotate(self, plan, estimator, query):
        """Recompute ``est_rows``/``est_cost`` bottom-up for a physical plan.

        Returns the plan's total cost. The planner calls this after assembly;
        learned planners can call it with a different estimator to re-cost an
        existing plan.
        """
        return self._annotate(plan, estimator, query)

    def _annotate(self, node, estimator, query):
        for child in node.children:
            self._annotate(child, estimator, query)
        if isinstance(node, P.SeqScan):
            # est rows after pushed-down predicates
            sub = _SinglePredicateView(query, node.table, node.predicates)
            node.est_rows = estimator.estimate_table(sub, node.table)
            base_rows = estimator.estimate_table(
                _SinglePredicateView(query, node.table, ()), node.table
            )
            prune_fraction = 0.0
            if self.params["zone_map_discount"] > 0.0 and base_rows > 0:
                # Proxy: the more selective the pushed predicates, the
                # larger the fraction of segments whose zones exclude
                # them (exact on clustered columns, optimistic on
                # scattered ones).
                prune_fraction = min(
                    1.0, max(0.0, 1.0 - node.est_rows / base_rows)
                )
            node.est_cost = self.seq_scan(base_rows, prune_fraction)
        elif isinstance(node, P.IndexScan):
            preds = [node.predicate] + list(node.residual)
            sub = _SinglePredicateView(query, node.table, preds)
            node.est_rows = estimator.estimate_table(sub, node.table)
            idx_sub = _SinglePredicateView(query, node.table, [node.predicate])
            matching = estimator.estimate_table(idx_sub, node.table)
            node.est_cost = self.index_scan(matching)
        elif isinstance(node, P.ViewScan):
            node.est_rows = max(1.0, node.view.n_rows * 0.33 ** len(node.residual))
            node.est_cost = self.seq_scan(node.view.n_rows)
        elif isinstance(node, (P.HashJoin, P.NestedLoopJoin)):
            left, right = node.children
            tables = node.output_tables()
            out_rows = estimator.estimate_subset(query, tables)
            node.est_rows = out_rows
            if isinstance(node, P.HashJoin):
                local = self.hash_join(left.est_rows, right.est_rows, out_rows)
            else:
                local = self.nested_loop_join(left.est_rows, right.est_rows, out_rows)
            node.est_cost = local + left.est_cost + right.est_cost
        elif isinstance(node, P.CrossJoin):
            left, right = node.children
            node.est_rows = left.est_rows * right.est_rows
            node.est_cost = (
                self.cross_join(left.est_rows, right.est_rows)
                + left.est_cost
                + right.est_cost
            )
        elif isinstance(node, P.Filter):
            child = node.children[0]
            sel = 1.0
            for __ in node.predicates:
                sel *= 1.0 / 3.0
            node.est_rows = child.est_rows * sel
            node.est_cost = child.est_cost + self.params["cpu_tuple_cost"] * child.est_rows
        elif isinstance(node, P.Project):
            child = node.children[0]
            node.est_rows = child.est_rows
            node.est_cost = child.est_cost + self.params["cpu_tuple_cost"] * child.est_rows
        elif isinstance(node, P.HashAggregate):
            child = node.children[0]
            groups = max(1.0, child.est_rows ** 0.5) if node.group_by else 1.0
            node.est_rows = groups
            node.est_cost = child.est_cost + self.aggregate(child.est_rows, groups)
        elif isinstance(node, P.Sort):
            child = node.children[0]
            node.est_rows = child.est_rows
            node.est_cost = child.est_cost + self.sort(child.est_rows)
        elif isinstance(node, P.Limit):
            child = node.children[0]
            node.est_rows = min(child.est_rows, node.n)
            node.est_cost = child.est_cost
        elif isinstance(node, P.EmptyResult):
            node.est_rows = 0.0
            node.est_cost = 0.0
        else:
            raise PlanError("cost model does not know node %r" % (node,))
        return node.est_cost


class _SinglePredicateView:
    """A lightweight query view exposing only chosen predicates on a table.

    The cost model needs "rows of T under this exact predicate list", which
    may differ from the query's full predicate set (e.g., index vs residual
    predicates); this adapter satisfies the estimator interface for that.
    """

    def __init__(self, query, table, predicates):
        self._query = query
        self._table = table.lower()
        self._predicates = list(predicates)
        self.tables = query.tables
        self.join_edges = query.join_edges

    @property
    def predicates(self):
        return self._predicates

    def predicates_on(self, table):
        if table.lower() == self._table:
            return list(self._predicates)
        return self._query.predicates_on(table)

    def signature(self):
        return (
            self._query.signature(),
            self._table,
            tuple(sorted(p.key() for p in self._predicates)),
        )
