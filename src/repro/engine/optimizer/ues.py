"""UES-style upper-bound-driven join ordering (pessimistic optimization).

The learned-optimizer literature ("Are We Ready For Learned Cardinality
Estimation?") shows learned estimates win on average and lose badly in
the tail. UES (Hertzschuch et al., CIDR'21) attacks the tail from the
other side: instead of estimating intermediate cardinalities, it *bounds*
them, and orders joins to keep the bound small. The bound is a guarantee,
not an estimate — the true intermediate result can never exceed it — so a
plan chosen under it has defensible worst-case work.

The bound uses only per-table facts the engine knows exactly:

* ``|T|`` — the table's **actual** row count (``Table.n_rows``, exact);
* ``MF_T(a)`` — the **maximum frequency** of any value of join attribute
  ``a`` in ``T``. Read exactly from the segment layer's cached value
  counts (:meth:`~repro.engine.storage.Table.column_value_counts`) when
  available; otherwise sanity-bounded from ANALYZE statistics (MCV /
  top-value counts, else ``ceil(n_rows / n_distinct)`` floored at the
  heaviest bucket — no longer exact, but still per-table-stats-grounded).

For a left-deep prefix ``S`` with bound ``ub(S)``, joining table ``T``
through an equi-join edge on ``T``-side attribute ``a`` gives

    ub(S ⋈ T)  =  ub(S) × MF_T(a)

because each row of the intermediate result matches at most ``MF_T(a)``
rows of ``T``. With several connecting edges the tightest one applies
(every edge must hold, so each is individually an upper bound); with no
edge the cross-product bound ``ub(S) × |T|`` applies. The base case
``ub({T}) = |T|`` is exact. Bounds along a prefix are therefore
monotonically non-decreasing (``MF ≥ 1``) — the property the unit tests
pin — and every level's bound dominates the true join cardinality
whenever the max frequencies are exact.

:func:`ues_order` greedily grows the prefix that minimizes the running
bound (the UES policy: smallest bound first), and :func:`bound_cost`
prices the resulting order with the engine's own
:class:`~repro.engine.optimizer.cost.CostModel` evaluated at the bound
cardinalities — the pessimistic cost the plan-selection layer's regret
guard compares learned arms against.
"""

import math

from repro.common import CatalogError, PlanError


def max_frequency(catalog, table, column):
    """Upper bound on how often any single value of ``column`` occurs.

    Exact when the storage layer can count values per segment (INT/TEXT
    and NaN-free FLOAT columns); otherwise falls back to ANALYZE
    statistics — the MCV/top-value counts, floored by the average
    frequency ``ceil(n_rows / n_distinct)``. Always ``>= 1`` and
    ``<= n_rows`` (an empty table bounds at 1 so products stay sane).

    Raises :class:`~repro.common.CatalogError` for unknown tables.
    """
    tab = catalog.table(table)
    n_rows = int(tab.n_rows)
    if n_rows <= 1:
        return 1.0
    counts = None
    value_counts = getattr(tab, "column_value_counts", None)
    if value_counts is not None:
        try:
            counts = value_counts(column)
        except CatalogError:
            raise
        except KeyError:
            raise CatalogError(
                "table %r has no column %r" % (table, column)
            )
    if counts:
        return float(max(1, max(counts.values())))
    # Fallback: ANALYZE stats (NaN-bearing FLOAT segments cannot count).
    try:
        stats = catalog.stats(table)
        col = stats.column(column) if stats.has_column(column) else None
    except CatalogError:
        col = None
    if col is None:
        return float(n_rows)
    heaviest = 0
    if col.top_values:
        heaviest = max(col.top_values.values())
    hist = getattr(col, "histogram", None)
    if hist is not None and getattr(hist, "mcv", None):
        heaviest = max(heaviest, max(hist.mcv.values()))
    average = math.ceil(n_rows / max(1, col.n_distinct))
    return float(min(n_rows, max(1, heaviest, average)))


def _join_columns(query, prefix, table):
    """``table``-side join columns of the edges connecting it to ``prefix``."""
    cols = []
    for edge in query.edges_between(prefix, table):
        if edge.left_table.lower() == table.lower():
            cols.append(edge.left_column)
        else:
            cols.append(edge.right_column)
    return cols


def step_bound(catalog, query, prefix, prefix_bound, table):
    """The bound after joining ``table`` onto a prefix bounded by
    ``prefix_bound`` — tightest connecting edge, else cross product."""
    n_rows = max(1.0, float(catalog.table(table).n_rows))
    cols = _join_columns(query, prefix, table)
    if not cols:
        return prefix_bound * n_rows
    tightest = min(max_frequency(catalog, table, c) for c in cols)
    return prefix_bound * min(tightest, n_rows)


def ues_bounds(catalog, query, order):
    """Per-level upper bounds of a left-deep ``order``.

    Returns a list ``bounds`` with ``bounds[i]`` an upper bound on the
    cardinality of joining ``order[:i+1]`` — ``bounds[0]`` is the first
    table's exact row count. Monotonically non-decreasing.
    """
    if {t.lower() for t in order} != {t.lower() for t in query.tables}:
        raise PlanError("order must cover exactly the query's tables")
    bounds = [max(1.0, float(catalog.table(order[0]).n_rows))]
    prefix = [order[0]]
    for t in order[1:]:
        bounds.append(step_bound(catalog, query, prefix, bounds[-1], t))
        prefix.append(t)
    return bounds


def ues_order(catalog, query):
    """The upper-bound-minimizing left-deep join order.

    Starts at the smallest table and greedily appends the (preferably
    adjacent) table that keeps the running bound smallest, breaking ties
    by table name so the order is deterministic.

    Returns:
        ``(order, bounds)`` — the order and its per-level bounds.
    """
    tables = list(query.tables)
    if not tables:
        raise PlanError("query has no tables")
    if len(tables) == 1:
        return [tables[0]], [max(1.0, float(catalog.table(tables[0]).n_rows))]
    start = min(
        tables,
        key=lambda t: (float(catalog.table(t).n_rows), t.lower()),
    )
    order = [start]
    bounds = [max(1.0, float(catalog.table(start).n_rows))]
    remaining = {t.lower(): t for t in tables if t.lower() != start.lower()}
    while remaining:
        adjacent = [
            t for t in remaining.values() if query.edges_between(order, t)
        ]
        pool = adjacent if adjacent else list(remaining.values())
        nxt = min(
            pool,
            key=lambda t: (
                step_bound(catalog, query, order, bounds[-1], t), t.lower()
            ),
        )
        bounds.append(step_bound(catalog, query, order, bounds[-1], nxt))
        order.append(nxt)
        del remaining[nxt.lower()]
    return order, bounds


def bound_cost(catalog, query, cost_model, order=None, bounds=None):
    """Pessimistic total cost of a left-deep order at its bounds.

    Prices base-table scans at their exact row counts and every join at
    the bound cardinalities with the engine's cost model (cheaper of
    hash/nested-loop at the bounds, cross join when disconnected). The
    result is the UES guarantee in the engine's work unit: under sound
    bounds no execution of this order can be charged more than this by
    the cost model's formulas.

    Returns:
        ``(order, bounds, total_cost)``; ``order``/``bounds`` default to
        :func:`ues_order`'s.
    """
    if order is None:
        order, bounds = ues_order(catalog, query)
    elif bounds is None:
        bounds = ues_bounds(catalog, query, order)
    total = cost_model.seq_scan(max(1.0, float(catalog.table(order[0]).n_rows)))
    prefix = [order[0]]
    for level, t in enumerate(order[1:], start=1):
        right_rows = max(1.0, float(catalog.table(t).n_rows))
        total += cost_model.seq_scan(right_rows)
        if query.edges_between(prefix, t):
            __, join_cost = cost_model.choose_join(
                bounds[level - 1], right_rows, bounds[level]
            )
        else:
            join_cost = cost_model.cross_join(bounds[level - 1], right_rows)
        total += join_cost
        prefix.append(t)
    return order, bounds, total


class UpperBoundEstimator:
    """A :class:`~repro.engine.optimizer.cardinality.CardinalityEstimator`
    view of the UES bounds — answers every subset query with its bound.

    Useful for pricing arbitrary plans pessimistically with the existing
    cost machinery; ignores filter predicates entirely (filters only
    shrink results, so the unfiltered bound stays sound).
    """

    def __init__(self, catalog):
        self.catalog = catalog

    def estimate_table(self, query, table):
        return max(1.0, float(self.catalog.table(table).n_rows))

    def estimate_subset(self, query, tables):
        if len(tables) == 1:
            return self.estimate_table(query, tables[0])
        sub_order, bounds = ues_order(
            self.catalog, _SubsetView(query, tables)
        )
        return bounds[-1]

    def __repr__(self):
        return "UpperBoundEstimator(tables=%d)" % (
            len(self.catalog.table_names()),
        )


class _SubsetView:
    """Query view restricted to a table subset (edges inside it only)."""

    def __init__(self, query, tables):
        keep = {t.lower() for t in tables}
        self.tables = [t for t in query.tables if t.lower() in keep]
        self.join_edges = [
            e for e in query.join_edges
            if e.left_table.lower() in keep and e.right_table.lower() in keep
        ]
        self._query = query

    def edges_between(self, joined, table):
        joined_set = {t.lower() for t in joined}
        t = table.lower()
        return [
            e for e in self.join_edges
            if (e.left_table.lower() in joined_set
                and e.right_table.lower() == t)
            or (e.right_table.lower() in joined_set
                and e.left_table.lower() == t)
        ]
