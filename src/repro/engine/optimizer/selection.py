"""Plan selection strategies: cost, BAO-lite bandit, pessimistic UES.

The middle stage of the plan-selection layer. Candidate generation
(:meth:`~repro.engine.optimizer.planner.Planner.plan_candidates`) builds
one plan per hint-set arm; a :class:`PlanSelector` picks which candidate
actually runs:

* :class:`CostSelector` — the legacy single-path behavior: only the
  ``default`` arm is generated and chosen, so the default config plans
  bit-identically to the pre-refactor engine (the pipeline short-circuits
  this selector onto the exact legacy code path).
* :class:`BanditSelector` — BAO-lite: a contextual bandit over plan
  features (table count, predicate count/selectivity, estimated rows per
  join level). Per arm it maintains a ridge-regression posterior over
  log measured work and Thompson-samples it at selection time (seeded —
  every run is reproducible); training happens online from
  ``ExecutionTelemetry.total_work`` at the pipeline's feedback-ingest
  point. Two regret guards bound the tail the learned-optimizer
  literature worries about: an arm is only *eligible* while its
  estimated cost is ≤ ``regret_cap ×`` the UES bound, and an arm whose
  measured work repeatedly betrays its estimate (or whose queries keep
  triggering cardinality-drift feedback) is demoted for a cooldown.
* :class:`PessimisticSelector` — always the UES arm: worst-case-bounded
  plans, the robust fallback.

All selectors are thread-safe (the serving layer plans concurrently) and
expose :meth:`~PlanSelector.stats` — per-arm picks, wins, observations,
demotions — which EXPLAIN ANALYZE and the benchmarks report.
"""

import math
import threading

import numpy as np

from repro.common import PlanError, ensure_rng
from repro.engine.config import (  # noqa: F401 - re-exported surface
    DEFAULT_REGRET_CAP,
    PLAN_SELECTORS,
)
from repro.engine.optimizer.hints import DEFAULT_ARM, UES_ARM, default_arms

#: Feature-vector dimensionality (see :func:`plan_features`).
FEATURE_DIM = 8

#: Join levels the feature vector carries estimated cardinalities for.
_FEATURE_LEVELS = 4


def plan_features(query, estimator):
    """The contextual feature vector of one query (fixed length, float64).

    Features (all log-compressed so work-spanning workloads stay in a
    comparable range): a bias term, table count, predicate count, the
    estimated cardinality at each of the first four join levels of the
    sorted table prefix, and the estimated full-join cardinality.
    """
    x = np.zeros(FEATURE_DIM)
    x[0] = 1.0
    tables = sorted(query.tables, key=str.lower)
    x[1] = len(tables) / 4.0
    x[2] = len(query.predicates) / 4.0
    full = 1.0
    for level in range(_FEATURE_LEVELS):
        if level < len(tables):
            try:
                rows = estimator.estimate_subset(query, tables[:level + 1])
            except PlanError:
                rows = 1.0
            full = rows
            x[3 + level] = math.log1p(max(0.0, rows)) / 20.0
    x[7] = math.log1p(max(0.0, full)) / 20.0
    return x


class PlanSelector:
    """Strategy interface: which generated candidate runs.

    Subclasses implement :meth:`arms` (which hint sets to generate
    candidates for) and :meth:`select`; :meth:`observe` is the online-
    training hook the pipeline calls with the measured work of the chosen
    arm, and :meth:`note_drift` receives cardinality-drift signals from
    the feedback store.
    """

    name = "abstract"

    def arms(self, query):
        """Hint sets to generate candidates for (ordered, deterministic)."""
        raise NotImplementedError

    def select(self, candidates, query, features=None):
        """Pick the candidate to execute from a non-empty list."""
        raise NotImplementedError

    def observe(self, arm, features, est_cost, actual_work):
        """Online training hook: the chosen arm's measured work."""

    def note_drift(self, tables):
        """Cardinality drift was detected on ``tables`` (feedback store)."""

    def stats(self):
        """A JSON-friendly snapshot of per-arm accounting."""
        return {"selector": self.name, "arms": {}}

    def __repr__(self):
        return "%s(name=%r)" % (type(self).__name__, self.name)


class _ArmState:
    """Per-arm accounting + ridge posterior over log measured work."""

    __slots__ = ("A", "b", "picks", "wins", "observes", "strikes",
                 "demotions", "demoted_until", "total_work", "total_est")

    def __init__(self, dim):
        self.A = np.eye(dim)
        self.b = np.zeros(dim)
        self.picks = 0
        self.wins = 0
        self.observes = 0
        self.strikes = 0
        self.demotions = 0
        self.demoted_until = 0
        self.total_work = 0.0
        self.total_est = 0.0

    def summary(self):
        return {
            "picks": self.picks,
            "wins": self.wins,
            "observes": self.observes,
            "strikes": self.strikes,
            "demotions": self.demotions,
            "mean_work": (
                self.total_work / self.observes if self.observes else None
            ),
            "mean_est_cost": (
                self.total_est / self.observes if self.observes else None
            ),
        }


class CostSelector(PlanSelector):
    """Today's behavior: the default arm, chosen by estimated cost.

    The pipeline special-cases this selector onto the exact legacy
    ``Planner.plan()`` path (no candidate fan-out at all), which is what
    keeps the default config bit-identical to the pre-refactor engine.
    The methods below exist so the selector still behaves sensibly when
    driven generically (tests, benchmarks).
    """

    name = "cost"

    def __init__(self):
        self._lock = threading.Lock()
        self._picks = {}

    def arms(self, query):
        return (DEFAULT_ARM,)

    def select(self, candidates, query, features=None):
        chosen = min(candidates, key=lambda c: (c.est_cost, c.arm))
        with self._lock:
            self._picks[chosen.arm] = self._picks.get(chosen.arm, 0) + 1
        return chosen

    def stats(self):
        with self._lock:
            return {
                "selector": self.name,
                "arms": {
                    arm: {"picks": n, "wins": n}
                    for arm, n in sorted(self._picks.items())
                },
            }


class PessimisticSelector(PlanSelector):
    """Always the UES arm: guaranteed-bound plans, no learning."""

    name = "pessimistic"

    def __init__(self):
        self._lock = threading.Lock()
        self._picks = 0
        self._observes = 0
        self._total_work = 0.0
        self._total_est = 0.0

    def arms(self, query):
        return (UES_ARM,)

    def select(self, candidates, query, features=None):
        for c in candidates:
            if c.arm == UES_ARM.name:
                with self._lock:
                    self._picks += 1
                return c
        raise PlanError("pessimistic selection needs a UES candidate")

    def observe(self, arm, features, est_cost, actual_work):
        with self._lock:
            self._observes += 1
            self._total_work += float(actual_work)
            self._total_est += float(est_cost or 0.0)

    def stats(self):
        with self._lock:
            n = self._observes
            return {
                "selector": self.name,
                "arms": {UES_ARM.name: {
                    "picks": self._picks,
                    "wins": self._picks,
                    "observes": n,
                    "mean_work": self._total_work / n if n else None,
                    "mean_est_cost": self._total_est / n if n else None,
                }},
            }


class BanditSelector(PlanSelector):
    """BAO-lite: a contextual Thompson-sampling bandit over hint arms.

    Args:
        arms: hint sets to race (default :func:`default_arms`; must
            include the UES arm — it is the regret anchor and the
            fallback when every learned arm is ineligible).
        regret_cap: an arm is eligible only while its estimated cost is
            ≤ ``regret_cap ×`` the UES bound for the same query.
        rng: seed or :class:`numpy.random.Generator` for Thompson
            sampling (thread the engine's configured seed through here —
            selection sequences are then exactly reproducible).
        exploration: posterior-width multiplier (bigger = more
            exploration).
        demote_after: strikes before an arm is demoted. A strike is a
            broken promise — measured work above ``regret_cap ×`` the
            arm's own estimate — or a drift notification from the
            feedback store against the arm's last pick.
        demote_for: selections a demoted arm sits out.
    """

    name = "bandit"

    def __init__(self, arms=None, regret_cap=DEFAULT_REGRET_CAP, rng=None,
                 exploration=0.5, demote_after=3, demote_for=50):
        self._arms = tuple(arms) if arms is not None else default_arms()
        if not any(a.name == UES_ARM.name for a in self._arms):
            self._arms = self._arms + (UES_ARM,)
        if regret_cap < 1.0:
            raise PlanError("regret_cap must be >= 1.0, got %r" % regret_cap)
        self.regret_cap = float(regret_cap)
        self.exploration = float(exploration)
        self.demote_after = int(demote_after)
        self.demote_for = int(demote_for)
        self._rng = ensure_rng(rng)
        self._lock = threading.Lock()
        self._state = {a.name: _ArmState(FEATURE_DIM) for a in self._arms}
        self._selections = 0
        self._last_pick = None  # (arm, frozenset of tables)

    def arms(self, query):
        return self._arms

    def _arm_state(self, name):
        """Per-arm state, created lazily — callers may race candidate
        sets beyond the configured arms (tests, ad-hoc grids)."""
        state = self._state.get(name)
        if state is None:
            state = self._state[name] = _ArmState(FEATURE_DIM)
        return state

    # -- selection ---------------------------------------------------------
    def _eligible(self, candidates, bound):
        """Arms allowed by the regret cap and not serving a demotion."""
        out = []
        for c in candidates:
            if c.arm == UES_ARM.name:
                out.append(c)  # the anchor is always eligible
                continue
            if bound is not None and c.est_cost > self.regret_cap * bound:
                continue
            if self._arm_state(c.arm).demoted_until > self._selections:
                continue
            out.append(c)
        return out or list(candidates)

    def _sample_score(self, state, x):
        """Thompson sample of the arm's predicted log-work at ``x``."""
        A_inv = np.linalg.inv(state.A)
        theta = A_inv @ state.b
        noise = self._rng.standard_normal(len(x))
        # Cholesky of the posterior covariance, scaled by exploration.
        cov = self.exploration * A_inv
        sample = theta + np.linalg.cholesky(
            cov + 1e-12 * np.eye(len(x))
        ) @ noise
        return float(x @ sample)

    def select(self, candidates, query, features=None):
        if features is None:
            features = np.zeros(FEATURE_DIM)
            features[0] = 1.0
        bound = None
        for c in candidates:
            if c.bound is not None:
                bound = c.bound
        with self._lock:
            self._selections += 1
            pool = self._eligible(candidates, bound)
            best, best_score = None, None
            for c in sorted(pool, key=lambda c: c.arm):
                state = self._arm_state(c.arm)
                if state.observes == 0:
                    # Force one pull of every arm before trusting scores.
                    best = c
                    break
                score = self._sample_score(state, np.asarray(features))
                if best_score is None or score < best_score:
                    best, best_score = c, score
            self._arm_state(best.arm).picks += 1
            self._last_pick = (
                best.arm, frozenset(t.lower() for t in query.tables)
            )
            return best

    # -- online training ---------------------------------------------------
    def observe(self, arm, features, est_cost, actual_work):
        """Train the chosen arm's posterior on measured work."""
        x = np.asarray(
            features if features is not None else np.zeros(FEATURE_DIM)
        )
        reward = math.log1p(max(0.0, float(actual_work)))
        with self._lock:
            state = self._arm_state(arm)
            state.A += np.outer(x, x)
            state.b += reward * x
            state.observes += 1
            state.total_work += float(actual_work)
            state.total_est += float(est_cost or 0.0)
            if est_cost and actual_work <= float(est_cost) * 1.0000001:
                state.wins += 1
            elif est_cost and actual_work > self.regret_cap * float(est_cost):
                self._strike(arm, state)

    def note_drift(self, tables):
        """Feedback drift on ``tables``: strike the arm that last planned
        a query over any of them (its plan was built on bad estimates)."""
        with self._lock:
            if self._last_pick is None:
                return
            arm, picked_tables = self._last_pick
            if arm == UES_ARM.name:
                return  # the anchor never demotes
            if picked_tables & {t.lower() for t in tables}:
                self._strike(arm, self._arm_state(arm))

    def _strike(self, arm, state):
        state.strikes += 1
        if state.strikes >= self.demote_after:
            state.strikes = 0
            state.demotions += 1
            state.demoted_until = self._selections + self.demote_for

    def stats(self):
        with self._lock:
            return {
                "selector": self.name,
                "regret_cap": self.regret_cap,
                "selections": self._selections,
                "arms": {
                    name: st.summary()
                    for name, st in sorted(self._state.items())
                },
            }


def make_selector(name, *, regret_cap=DEFAULT_REGRET_CAP, rng=None,
                  arms=None):
    """Build the named selector (``"cost"``/``"bandit"``/``"pessimistic"``)."""
    if name == "cost":
        return CostSelector()
    if name == "pessimistic":
        return PessimisticSelector()
    if name == "bandit":
        return BanditSelector(arms=arms, regret_cap=regret_cap, rng=rng)
    raise PlanError(
        "plan_selector must be one of %r, got %r" % (PLAN_SELECTORS, name)
    )
