"""Declarative hint sets: the candidate-generation axis of plan selection.

A :class:`HintSet` is a small frozen value describing how one *arm* of
the plan-selection layer wants its plan built — the BAO idea reduced to
this engine's knobs. Four axes:

* ``join_order`` — ``"default"`` (the planner's configured enumerator),
  ``"greedy"`` (the greedy heuristic), ``"exhaustive"`` (Selinger DP for
  up to :data:`EXHAUSTIVE_MAX_TABLES` relations, greedy beyond), or
  ``"ues"`` (the pessimistic upper-bound orderer in
  :mod:`repro.engine.optimizer.ues`);
* ``use_indexes`` — force index scans on/off (``None`` inherits the
  planner's setting);
* ``fusion`` — force operator fusion on/off at execution time (``None``
  inherits the engine config). Fusion never changes measured work, only
  wall time — it is an execution hint, not a plan hint;
* ``parallel`` — force morsel-parallel execution on/off (``None``
  inherits). Same caveat: work-invariant by the engine's mode contract.

:func:`hint_grid` enumerates the full cross product declaratively;
:func:`default_arms` is the curated subset the selectors race by default
(the work-differentiating axes only, so the bandit's reward signal —
measured work — can actually separate the arms).
"""

from dataclasses import dataclass

#: Join-order strategies an arm may request.
JOIN_ORDER_STRATEGIES = ("default", "greedy", "exhaustive", "ues")

#: Beyond this many relations the ``"exhaustive"`` strategy falls back to
#: the greedy heuristic (Selinger DP is exponential in the table count).
EXHAUSTIVE_MAX_TABLES = 7


@dataclass(frozen=True)
class HintSet:
    """One arm's declarative planning/execution hints.

    Attributes:
        name: stable arm identifier (joins the plan-cache key and all
            telemetry/EXPLAIN reporting).
        join_order: one of :data:`JOIN_ORDER_STRATEGIES`.
        use_indexes: tri-state index-scan override (``None`` inherits).
        fusion: tri-state execution-fusion override (``None`` inherits).
        parallel: tri-state morsel-parallelism override (``None``
            inherits).
    """

    name: str
    join_order: str = "default"
    use_indexes: bool = None
    fusion: bool = None
    parallel: bool = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("a HintSet needs a non-empty name")
        if self.join_order not in JOIN_ORDER_STRATEGIES:
            raise ValueError(
                "join_order must be one of %r, got %r"
                % (JOIN_ORDER_STRATEGIES, self.join_order)
            )

    def describe(self):
        """A compact human-readable rendering (EXPLAIN / bench tables)."""
        parts = ["order=%s" % self.join_order]
        for label, value in (("indexes", self.use_indexes),
                             ("fusion", self.fusion),
                             ("parallel", self.parallel)):
            if value is not None:
                parts.append("%s=%s" % (label, "on" if value else "off"))
        return "%s(%s)" % (self.name, ", ".join(parts))


#: The exact-legacy arm: planner defaults on every axis. Plans built for
#: this arm are bit-identical to ``Planner.plan()``'s.
DEFAULT_ARM = HintSet(name="default")

#: The pessimistic arm: UES join order, everything else inherited.
UES_ARM = HintSet(name="ues", join_order="ues")


@dataclass(frozen=True)
class PlanCandidate:
    """One generated candidate: an arm, its plan, and its estimated cost.

    Attributes:
        arm: the arm's name (``hints.name``).
        hints: the :class:`HintSet` the plan was built under.
        plan: the annotated physical plan.
        est_cost: the cost model's estimate for the whole plan (floored
            at 1.0) — the number selection strategies compare and the
            regret guard checks against the UES bound.
        bound: for the UES arm only — the pessimistic cost guarantee
            from :func:`repro.engine.optimizer.ues.bound_cost`; ``None``
            for estimate-driven arms.
    """

    arm: str
    hints: HintSet
    plan: object
    est_cost: float
    bound: float = None

    def __repr__(self):
        return "PlanCandidate(arm=%r, est_cost=%.1f%s)" % (
            self.arm, self.est_cost,
            "" if self.bound is None else ", bound=%.1f" % self.bound,
        )


def default_arms():
    """The curated arm set the bandit/pessimistic selectors race.

    Five arms spanning the work-differentiating axes — join-order
    strategy and index usage — plus the exact-legacy default:

    * ``default`` — the planner exactly as configured (the cost
      selector's only arm, and the bit-identity anchor);
    * ``greedy`` — the greedy join-order heuristic;
    * ``exhaustive`` — Selinger DP capped at
      :data:`EXHAUSTIVE_MAX_TABLES` relations;
    * ``no-index`` — default order, index scans disabled (protects
      against index scans picked off bad selectivity estimates);
    * ``ues`` — the pessimistic upper-bound order (the regret anchor).
    """
    return (
        DEFAULT_ARM,
        HintSet(name="greedy", join_order="greedy"),
        HintSet(name="exhaustive", join_order="exhaustive"),
        HintSet(name="no-index", use_indexes=False),
        UES_ARM,
    )


def hint_grid(join_orders=("greedy", "exhaustive", "ues"),
              index_axis=(True, False), fusion_axis=(None,),
              parallel_axis=(None,)):
    """The full declarative cross product of hint axes.

    Defaults enumerate the join-order × index grid with execution axes
    inherited; pass ``fusion_axis=(True, False)`` /
    ``parallel_axis=(True, False)`` to expand those too (benchmarks do —
    selectors usually should not, since fusion/parallelism never move
    the work-based reward).
    """
    arms = []
    for jo in join_orders:
        for idx in index_axis:
            for fu in fusion_axis:
                for par in parallel_axis:
                    bits = [jo]
                    if idx is not None and not idx:
                        bits.append("noidx")
                    if fu is not None:
                        bits.append("fuse" if fu else "nofuse")
                    if par is not None:
                        bits.append("par" if par else "serial")
                    arms.append(HintSet(
                        name="+".join(bits), join_order=jo,
                        use_indexes=idx, fusion=fu, parallel=par,
                    ))
    return tuple(arms)
