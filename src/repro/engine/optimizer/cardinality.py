"""Cardinality estimation: the traditional estimators and the interfaces
the learned estimators plug into.

The estimator contract has two methods:

* :meth:`CardinalityEstimator.estimate_table` — rows surviving a table's
  local filter predicates.
* :meth:`CardinalityEstimator.estimate_subset` — rows produced by joining a
  subset of the query's tables (after local filters).

:class:`TraditionalEstimator` implements the System-R textbook rules the
tutorial describes as failing on correlated data: per-predicate histogram
selectivities multiplied together (attribute-value independence) and the
``1/max(ndv, ndv)`` equi-join selectivity. The learned MSCN-lite estimator
in :mod:`repro.ai4db.optimization.cardinality` implements the same contract
so planners can swap estimators freely.
"""

import numpy as np

from repro.common import ensure_rng


class CardinalityEstimator:
    """Abstract estimator interface used by the planner and enumerators."""

    def estimate_table(self, query, table):
        """Estimated rows of ``table`` after the query's local predicates."""
        raise NotImplementedError

    def estimate_subset(self, query, tables):
        """Estimated join-result rows over ``tables`` (iterable of names)."""
        raise NotImplementedError


class TraditionalEstimator(CardinalityEstimator):
    """Histogram + independence estimator (the System-R rules).

    Args:
        catalog: catalog providing per-table statistics.
    """

    def __init__(self, catalog):
        self.catalog = catalog

    def _predicate_selectivity(self, pred):
        stats = self.catalog.stats(pred.table)
        if not stats.has_column(pred.column):
            return 1.0 / 3.0
        return stats.column(pred.column).selectivity(pred.op, pred.value)

    def estimate_table(self, query, table):
        stats = self.catalog.stats(table)
        rows = float(stats.n_rows)
        for pred in query.predicates_on(table):
            rows *= max(0.0, min(1.0, self._predicate_selectivity(pred)))
        return max(rows, 0.0)

    def _join_selectivity(self, edge):
        left_stats = self.catalog.stats(edge.left_table)
        right_stats = self.catalog.stats(edge.right_table)
        ndv_left = (
            left_stats.column(edge.left_column).n_distinct
            if left_stats.has_column(edge.left_column)
            else 100
        )
        ndv_right = (
            right_stats.column(edge.right_column).n_distinct
            if right_stats.has_column(edge.right_column)
            else 100
        )
        return 1.0 / max(ndv_left, ndv_right, 1)

    def estimate_subset(self, query, tables):
        tables = [t for t in query.tables if t.lower() in {x.lower() for x in tables}]
        if not tables:
            return 0.0
        rows = 1.0
        for t in tables:
            rows *= self.estimate_table(query, t)
        subset = {t.lower() for t in tables}
        for edge in query.join_edges:
            if edge.left_table.lower() in subset and edge.right_table.lower() in subset:
                rows *= self._join_selectivity(edge)
        return max(rows, 0.0)


class SamplingEstimator(CardinalityEstimator):
    """Estimate by executing predicates/joins on a uniform row sample.

    Join estimates are computed by actually joining the per-table samples
    and scaling by the sampling rates — more robust to correlation than
    independence, but noisy at small sample sizes and expensive for large
    join graphs (which is why real systems don't default to it).

    Args:
        catalog: the catalog with the base tables.
        sample_size: rows sampled per table.
        seed: sampling seed.
    """

    def __init__(self, catalog, sample_size=500, seed=0):
        self.catalog = catalog
        self.sample_size = sample_size
        self._rng = ensure_rng(seed)
        self._samples = {}

    def _sample(self, table):
        key = table.lower()
        if key not in self._samples:
            tbl = self.catalog.table(table)
            n = tbl.n_rows
            if n <= self.sample_size:
                idx = np.arange(n)
            else:
                idx = self._rng.choice(n, size=self.sample_size, replace=False)
            cols = {
                c.name.lower(): tbl.column_array(c.name)[idx]
                for c in tbl.schema.columns
            }
            self._samples[key] = (cols, n, len(idx))
        return self._samples[key]

    @staticmethod
    def _apply_pred(mask, cols, pred):
        arr = cols[pred.column.lower()]
        op = pred.op
        v = pred.value
        if op == "=":
            return mask & (arr == v)
        if op == "!=":
            return mask & (arr != v)
        if op == "<":
            return mask & (arr < v)
        if op == "<=":
            return mask & (arr <= v)
        if op == ">":
            return mask & (arr > v)
        return mask & (arr >= v)

    def estimate_table(self, query, table):
        cols, n_total, n_sample = self._sample(table)
        if n_sample == 0:
            return 0.0
        mask = np.ones(n_sample, dtype=bool)
        for pred in query.predicates_on(table):
            mask = self._apply_pred(mask, cols, pred)
        return float(mask.sum()) / n_sample * n_total

    def estimate_subset(self, query, tables):
        names = [t for t in query.tables if t.lower() in {x.lower() for x in tables}]
        if not names:
            return 0.0
        if len(names) == 1:
            return self.estimate_table(query, names[0])
        # Join the filtered samples table by table (left-deep, in given order).
        scale = 1.0
        first = names[0]
        cols, n_total, n_sample = self._sample(first)
        mask = np.ones(n_sample, dtype=bool)
        for pred in query.predicates_on(first):
            mask = self._apply_pred(mask, cols, pred)
        current = {
            (first.lower(), cname): arr[mask] for cname, arr in cols.items()
        }
        current_rows = int(mask.sum())
        scale *= n_total / max(1, n_sample)
        joined = {first.lower()}
        remaining = names[1:]
        while remaining:
            progressed = False
            for t in list(remaining):
                edges = query.edges_between(joined, t)
                if not edges:
                    continue
                cols_t, n_total_t, n_sample_t = self._sample(t)
                mask_t = np.ones(n_sample_t, dtype=bool)
                for pred in query.predicates_on(t):
                    mask_t = self._apply_pred(mask_t, cols_t, pred)
                right = {c: a[mask_t] for c, a in cols_t.items()}
                edge = edges[0]
                if edge.left_table.lower() in joined:
                    lkey = (edge.left_table.lower(), edge.left_column.lower())
                    rcol = edge.right_column.lower()
                else:
                    lkey = (edge.right_table.lower(), edge.right_column.lower())
                    rcol = edge.left_column.lower()
                left_keys = current[lkey] if current_rows else np.array([])
                right_keys = right[rcol]
                # Hash join on sample keys.
                buckets = {}
                for i, k in enumerate(right_keys.tolist()):
                    buckets.setdefault(k, []).append(i)
                left_idx, right_idx = [], []
                for i, k in enumerate(left_keys.tolist()):
                    for j in buckets.get(k, ()):
                        left_idx.append(i)
                        right_idx.append(j)
                # Apply any extra edges between the joined set and t.
                new_current = {}
                for key, arr in current.items():
                    new_current[key] = arr[left_idx] if len(left_idx) else arr[:0]
                for cname, arr in right.items():
                    sel = arr[right_idx] if len(right_idx) else arr[:0]
                    new_current[(t.lower(), cname)] = sel
                keep = np.ones(len(left_idx), dtype=bool)
                for extra in edges[1:]:
                    if extra.left_table.lower() == t.lower():
                        a = new_current[(t.lower(), extra.left_column.lower())]
                        b = new_current[
                            (extra.right_table.lower(), extra.right_column.lower())
                        ]
                    else:
                        a = new_current[(t.lower(), extra.right_column.lower())]
                        b = new_current[
                            (extra.left_table.lower(), extra.left_column.lower())
                        ]
                    keep &= a == b
                current = {k: v[keep] for k, v in new_current.items()}
                current_rows = int(keep.sum())
                scale *= n_total_t / max(1, n_sample_t)
                joined.add(t.lower())
                remaining.remove(t)
                progressed = True
                break
            if not progressed:
                # Disconnected: treat the rest with independence.
                rest = 1.0
                for t in remaining:
                    rest *= self.estimate_table(query, t)
                return current_rows * scale * rest
        return current_rows * scale


class TrueCardinalityEstimator(CardinalityEstimator):
    """Oracle estimator: executes the sub-query and counts (for evaluation).

    Wraps an executor callable ``count_fn(query, tables) -> int`` supplied by
    :mod:`repro.engine.executor` to avoid a circular import.

    Args:
        count_fn: ``(query, tables) -> int`` exact-count callable.
        cache: memoize counts per (signature, table subset).
        catalog: when given, each memo entry is stamped with the
            catalog's version vector restricted to the entry's table
            subset and re-counted the moment any of *those* tables moves
            — a write to an unrelated table leaves the entry warm.
            Without a catalog, counts memoized before an INSERT/DDL
            would be served stale forever.
    """

    def __init__(self, count_fn, cache=True, catalog=None):
        self._count_fn = count_fn
        self._cache = {} if cache else None
        self._catalog = catalog

    def _token(self, tables):
        if self._catalog is None:
            return None
        return self._catalog.version_vector(tables)

    def estimate_table(self, query, table):
        return self.estimate_subset(query, [table])

    def estimate_subset(self, query, tables):
        key = token = None
        if self._cache is not None:
            key = (query.signature(), tuple(sorted(t.lower() for t in tables)))
            token = self._token(tables)
            entry = self._cache.get(key)
            if entry is not None and entry[1] == token:
                return entry[0]
        value = float(self._count_fn(query, list(tables)))
        if self._cache is not None:
            self._cache[key] = (value, token)
        return value
