"""Logical rewrite rules over conjunctive queries.

Each rule is a pure transformation ``ConjunctiveQuery -> ConjunctiveQuery``
(or ``None`` when it does not apply). The *fixed-order* rewriter applies
the registry top-down once — the traditional behaviour the tutorial notes
"may derive suboptimal queries" — while the learned rewriter in
:mod:`repro.ai4db.config.sql_rewriter` searches over rule orderings.
"""

from repro.engine.query import ConjunctiveQuery, Predicate


def _clone(query, predicates=None, join_edges=None, tables=None, limit=None):
    return ConjunctiveQuery(
        tables=tables if tables is not None else query.tables,
        join_edges=join_edges if join_edges is not None else query.join_edges,
        predicates=predicates if predicates is not None else query.predicates,
        projections=query.projections,
        aggregates=query.aggregates,
        group_by=query.group_by,
        order_by=query.order_by,
        limit=limit if limit is not None else query.limit,
        distinct=query.distinct,
    )


class RewriteRule:
    """Base class: subclasses implement :meth:`apply`.

    Attributes:
        name: short rule name for reporting.
    """

    name = "rule"

    def apply(self, query, catalog=None):
        """Return a rewritten query, or ``None`` when the rule is a no-op."""
        raise NotImplementedError


class RemoveDuplicatePredicates(RewriteRule):
    """Drop exact-duplicate filter predicates and join edges."""

    name = "dedup-predicates"

    def apply(self, query, catalog=None):
        seen_p, preds = set(), []
        for p in query.predicates:
            if p.key() not in seen_p:
                seen_p.add(p.key())
                preds.append(p)
        seen_e, edges = set(), []
        for e in query.join_edges:
            if e.key() not in seen_e:
                seen_e.add(e.key())
                edges.append(e)
        if len(preds) == len(query.predicates) and len(edges) == len(query.join_edges):
            return None
        return _clone(query, predicates=preds, join_edges=edges)


class TightenRangePredicates(RewriteRule):
    """Collapse redundant range predicates on the same column.

    ``x > 3 AND x > 5`` becomes ``x > 5``; ``x <= 7 AND x < 9`` becomes
    ``x <= 7``; equality absorbs consistent ranges.
    """

    name = "tighten-ranges"

    def apply(self, query, catalog=None):
        by_col = {}
        others = []
        for p in query.predicates:
            if p.op in ("<", "<=", ">", ">=") and isinstance(p.value, (int, float)):
                by_col.setdefault((p.table.lower(), p.column.lower()), []).append(p)
            else:
                others.append(p)
        changed = False
        kept = list(others)
        for (t, c), preds in by_col.items():
            lowers = [p for p in preds if p.op in (">", ">=")]
            uppers = [p for p in preds if p.op in ("<", "<=")]
            new = []
            if lowers:
                best = max(lowers, key=lambda p: (p.value, p.op == ">"))
                new.append(best)
                if len(lowers) > 1:
                    changed = True
            if uppers:
                best = min(uppers, key=lambda p: (p.value, p.op != "<"))
                new.append(best)
                if len(uppers) > 1:
                    changed = True
            kept.extend(new)
        if not changed:
            return None
        return _clone(query, predicates=kept)


class DetectContradictions(RewriteRule):
    """Mark provably-empty queries with ``LIMIT 0``.

    Detects ``x = a AND x = b`` for ``a != b`` and empty ranges like
    ``x > 10 AND x < 5``.
    """

    name = "detect-contradictions"

    def apply(self, query, catalog=None):
        if query.limit == 0:
            return None
        by_col = {}
        for p in query.predicates:
            if isinstance(p.value, (int, float)):
                by_col.setdefault((p.table.lower(), p.column.lower()), []).append(p)
        for preds in by_col.values():
            eqs = [p.value for p in preds if p.op == "="]
            if len(set(eqs)) > 1:
                return _clone(query, limit=0)
            low = -float("inf")
            low_strict = False
            high = float("inf")
            high_strict = False
            for p in preds:
                if p.op in (">", ">="):
                    if p.value > low:
                        low, low_strict = p.value, p.op == ">"
                elif p.op in ("<", "<="):
                    if p.value < high:
                        high, high_strict = p.value, p.op == "<"
            if eqs:
                v = eqs[0]
                if v < low or v > high:
                    return _clone(query, limit=0)
                if (v == low and low_strict) or (v == high and high_strict):
                    return _clone(query, limit=0)
            if low > high or (low == high and (low_strict or high_strict)):
                return _clone(query, limit=0)
        return None


class PropagateEqualityConstants(RewriteRule):
    """Propagate ``t.a = const`` across join edges ``t.a = s.b``.

    Adds the implied ``s.b = const``, giving the optimizer an extra filter
    to push down — a classic rewrite that can change join orders entirely.
    """

    name = "propagate-equalities"

    def apply(self, query, catalog=None):
        existing = {p.key() for p in query.predicates}
        new_preds = []
        for p in query.predicates:
            if p.op != "=":
                continue
            for e in query.join_edges:
                if (
                    e.left_table.lower() == p.table.lower()
                    and e.left_column.lower() == p.column.lower()
                ):
                    cand = Predicate(e.right_table, e.right_column, "=", p.value)
                elif (
                    e.right_table.lower() == p.table.lower()
                    and e.right_column.lower() == p.column.lower()
                ):
                    cand = Predicate(e.left_table, e.left_column, "=", p.value)
                else:
                    continue
                if cand.key() not in existing:
                    existing.add(cand.key())
                    new_preds.append(cand)
        if not new_preds:
            return None
        return _clone(query, predicates=query.predicates + new_preds)


class EliminateRedundantJoins(RewriteRule):
    """Remove key–foreign-key joins whose inner table is otherwise unused.

    Applies when a joined table (a) contributes no projections, aggregates,
    group-by keys, or filter predicates, (b) joins on a unique column
    (``ndv == n_rows`` in the statistics), and (c) referential integrity is
    assumed (the synthetic star-schema generators guarantee it).

    This is the rewrite with the biggest payoff in the E4 experiment.
    """

    name = "eliminate-redundant-joins"

    def __init__(self, assume_referential_integrity=True):
        self.assume_referential_integrity = assume_referential_integrity

    def _is_unique(self, catalog, table, column):
        stats = catalog.stats(table)
        if not stats.has_column(column):
            return False
        col = stats.column(column)
        return col.n_distinct >= stats.n_rows > 0

    def apply(self, query, catalog=None):
        if catalog is None or not self.assume_referential_integrity:
            return None
        if len(query.tables) < 2:
            return None
        used = set()
        for t, __ in query.projections:
            used.add(t.lower())
        for a in query.aggregates:
            if a.table:
                used.add(a.table.lower())
        for t, __ in query.group_by:
            used.add(t.lower())
        if query.order_by:
            used.add(query.order_by[0][0].lower())
        for p in query.predicates:
            used.add(p.table.lower())
        # COUNT(*) depends on multiplicity of the whole join; key-FK joins
        # preserve it, so count-only queries are still eligible.
        for t in list(query.tables):
            tl = t.lower()
            if tl in used:
                continue
            touching = [e for e in query.join_edges if e.touches(t)]
            if len(touching) != 1:
                continue
            edge = touching[0]
            side_col = (
                edge.left_column
                if edge.left_table.lower() == tl
                else edge.right_column
            )
            if not self._is_unique(catalog, t, side_col):
                continue
            new_tables = [x for x in query.tables if x.lower() != tl]
            new_edges = [e for e in query.join_edges if not e.touches(t)]
            remaining = ConjunctiveQuery(
                tables=new_tables,
                join_edges=new_edges,
                predicates=query.predicates,
                projections=query.projections,
                aggregates=query.aggregates,
                group_by=query.group_by,
                order_by=query.order_by,
                limit=query.limit,
                distinct=query.distinct,
            )
            if remaining.is_connected():
                return remaining
        return None


def default_rules(assume_referential_integrity=True):
    """The standard rule registry, in the traditional fixed order."""
    return [
        RemoveDuplicatePredicates(),
        DetectContradictions(),
        TightenRangePredicates(),
        PropagateEqualityConstants(),
        EliminateRedundantJoins(assume_referential_integrity),
    ]


def apply_rules_fixed_order(query, rules, catalog=None, max_passes=3):
    """Apply rules in registry order, repeating until a fixpoint.

    This is the traditional baseline rewriter. Returns
    ``(rewritten_query, applied_rule_names)``.
    """
    applied = []
    current = query
    for __ in range(max_passes):
        changed = False
        for rule in rules:
            result = rule.apply(current, catalog=catalog)
            if result is not None:
                current = result
                applied.append(rule.name)
                changed = True
        if not changed:
            break
    return current, applied
