"""Join-order enumeration: Selinger-style DP, greedy, and random baselines.

All enumerators produce *left-deep orders* — a list of table names — and
share one objective, :func:`order_cost`, so the traditional enumerators and
the learned agents in :mod:`repro.ai4db.optimization.join_order` compete on
exactly the same footing.
"""

from itertools import combinations

from repro.common import PlanError, ensure_rng


def order_cost(query, order, estimator, cost_model):
    """Cost of executing a left-deep join order.

    The first table is scanned; each subsequent table is joined to the
    accumulated prefix with the cheaper of hash/nested-loop join (cross
    join when no edge connects it). Scan costs for the base tables are
    included once.

    Args:
        query: the :class:`~repro.engine.query.ConjunctiveQuery`.
        order: list of table names covering the query's tables exactly.
        estimator: a cardinality estimator.
        cost_model: a :class:`~repro.engine.optimizer.cost.CostModel`.

    Returns:
        float total cost.
    """
    if {t.lower() for t in order} != {t.lower() for t in query.tables}:
        raise PlanError("order must cover exactly the query's tables")
    total = 0.0
    first = order[0]
    current_rows = estimator.estimate_table(query, first)
    total += cost_model.seq_scan(
        estimator.estimate_subset(_no_predicates(query), [first])
    )
    joined = [first]
    for t in order[1:]:
        right_rows = estimator.estimate_table(query, t)
        total += cost_model.seq_scan(
            estimator.estimate_subset(_no_predicates(query), [t])
        )
        out_rows = estimator.estimate_subset(query, joined + [t])
        edges = query.edges_between(joined, t)
        if edges:
            __, join_cost = cost_model.choose_join(current_rows, right_rows, out_rows)
        else:
            join_cost = cost_model.cross_join(current_rows, right_rows)
        total += join_cost
        current_rows = out_rows
        joined.append(t)
    return total


class _NoPredicateView:
    """Query view with all filter predicates stripped (for base-scan costs)."""

    def __init__(self, query):
        self._query = query
        self.tables = query.tables
        self.join_edges = query.join_edges
        self.predicates = []

    def predicates_on(self, table):
        return []

    def signature(self):
        return (self._query.signature(), "__nopred__")


def _no_predicates(query):
    return _NoPredicateView(query)


def dp_left_deep(query, estimator, cost_model):
    """Optimal left-deep order by dynamic programming over table subsets.

    Cross products are considered only when a subset has no connecting edge
    (disconnected join graphs), mirroring the System R policy.

    Returns:
        ``(order, cost)``.
    """
    tables = list(query.tables)
    n = len(tables)
    if n == 0:
        raise PlanError("query has no tables")
    index = {t.lower(): i for i, t in enumerate(tables)}
    # best[frozenset of indices] = (cost_without_scans, rows, order tuple)
    best = {}
    rows_cache = {}

    def filtered_rows(i):
        if i not in rows_cache:
            rows_cache[i] = estimator.estimate_table(query, tables[i])
        return rows_cache[i]

    for i in range(n):
        best[frozenset([i])] = (0.0, filtered_rows(i), (tables[i],))

    adjacency = [set() for _ in range(n)]
    for e in query.join_edges:
        a, b = index[e.left_table.lower()], index[e.right_table.lower()]
        adjacency[a].add(b)
        adjacency[b].add(a)

    for size in range(1, n):
        for subset_tuple in combinations(range(n), size):
            subset = frozenset(subset_tuple)
            if subset not in best:
                continue
            cost_s, rows_s, order_s = best[subset]
            connected = set()
            for i in subset:
                connected |= adjacency[i]
            connected -= subset
            candidates = connected if connected else set(range(n)) - subset
            for j in candidates:
                new_set = subset | {j}
                out_rows = estimator.estimate_subset(
                    query, [tables[k] for k in new_set]
                )
                right_rows = filtered_rows(j)
                if j in connected:
                    __, join_cost = cost_model.choose_join(
                        rows_s, right_rows, out_rows
                    )
                else:
                    join_cost = cost_model.cross_join(rows_s, right_rows)
                new_cost = cost_s + join_cost
                entry = best.get(new_set)
                if entry is None or new_cost < entry[0]:
                    best[new_set] = (new_cost, out_rows, order_s + (tables[j],))

    full = frozenset(range(n))
    if full not in best:
        raise PlanError("DP failed to cover all tables")
    __, ___, order = best[full]
    order = list(order)
    return order, order_cost(query, order, estimator, cost_model)


def greedy_order(query, estimator, cost_model):
    """Greedy left-deep order: start at the smallest filtered table, then
    repeatedly join the adjacent table minimizing the intermediate size.

    Returns:
        ``(order, cost)``.
    """
    tables = list(query.tables)
    remaining = {t.lower(): t for t in tables}
    start = min(tables, key=lambda t: estimator.estimate_table(query, t))
    order = [start]
    del remaining[start.lower()]
    while remaining:
        adjacent = [
            t for t in remaining.values() if query.edges_between(order, t)
        ]
        pool = adjacent if adjacent else list(remaining.values())
        nxt = min(
            pool,
            key=lambda t: estimator.estimate_subset(query, order + [t]),
        )
        order.append(nxt)
        del remaining[nxt.lower()]
    return order, order_cost(query, order, estimator, cost_model)


def random_order(query, estimator, cost_model, seed=None, connected=True):
    """A random (by default connectivity-respecting) left-deep order.

    Returns:
        ``(order, cost)``.
    """
    rng = ensure_rng(seed)
    tables = list(query.tables)
    remaining = {t.lower(): t for t in tables}
    first = tables[int(rng.integers(0, len(tables)))]
    order = [first]
    del remaining[first.lower()]
    while remaining:
        pool = list(remaining.values())
        if connected:
            adjacent = [t for t in pool if query.edges_between(order, t)]
            if adjacent:
                pool = adjacent
        nxt = pool[int(rng.integers(0, len(pool)))]
        order.append(nxt)
        del remaining[nxt.lower()]
    return order, order_cost(query, order, estimator, cost_model)
