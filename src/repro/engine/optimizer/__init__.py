"""Cost-based optimizer: estimation, enumeration, planning, rewriting."""

from repro.engine.optimizer.cardinality import (
    CardinalityEstimator,
    TraditionalEstimator,
    SamplingEstimator,
    TrueCardinalityEstimator,
)
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.hints import (
    DEFAULT_ARM,
    EXHAUSTIVE_MAX_TABLES,
    HintSet,
    JOIN_ORDER_STRATEGIES,
    PlanCandidate,
    UES_ARM,
    default_arms,
    hint_grid,
)
from repro.engine.optimizer.join_enum import (
    dp_left_deep,
    greedy_order,
    random_order,
    order_cost,
)
from repro.engine.optimizer.planner import Planner
from repro.engine.optimizer.selection import (
    BanditSelector,
    CostSelector,
    PessimisticSelector,
    PlanSelector,
    make_selector,
    plan_features,
)
from repro.engine.optimizer.ues import (
    UpperBoundEstimator,
    bound_cost,
    max_frequency,
    ues_bounds,
    ues_order,
)
from repro.engine.optimizer.rules import (
    RewriteRule,
    RemoveDuplicatePredicates,
    TightenRangePredicates,
    DetectContradictions,
    PropagateEqualityConstants,
    EliminateRedundantJoins,
    default_rules,
    apply_rules_fixed_order,
)

__all__ = [
    "CardinalityEstimator",
    "TraditionalEstimator",
    "SamplingEstimator",
    "TrueCardinalityEstimator",
    "CostModel",
    "dp_left_deep",
    "greedy_order",
    "random_order",
    "order_cost",
    "Planner",
    "HintSet",
    "PlanCandidate",
    "DEFAULT_ARM",
    "UES_ARM",
    "JOIN_ORDER_STRATEGIES",
    "EXHAUSTIVE_MAX_TABLES",
    "default_arms",
    "hint_grid",
    "PlanSelector",
    "CostSelector",
    "BanditSelector",
    "PessimisticSelector",
    "make_selector",
    "plan_features",
    "UpperBoundEstimator",
    "bound_cost",
    "max_frequency",
    "ues_bounds",
    "ues_order",
    "RewriteRule",
    "RemoveDuplicatePredicates",
    "TightenRangePredicates",
    "DetectContradictions",
    "PropagateEqualityConstants",
    "EliminateRedundantJoins",
    "default_rules",
    "apply_rules_fixed_order",
]
