"""Cost-based optimizer: estimation, enumeration, planning, rewriting."""

from repro.engine.optimizer.cardinality import (
    CardinalityEstimator,
    TraditionalEstimator,
    SamplingEstimator,
    TrueCardinalityEstimator,
)
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.join_enum import (
    dp_left_deep,
    greedy_order,
    random_order,
    order_cost,
)
from repro.engine.optimizer.planner import Planner
from repro.engine.optimizer.rules import (
    RewriteRule,
    RemoveDuplicatePredicates,
    TightenRangePredicates,
    DetectContradictions,
    PropagateEqualityConstants,
    EliminateRedundantJoins,
    default_rules,
    apply_rules_fixed_order,
)

__all__ = [
    "CardinalityEstimator",
    "TraditionalEstimator",
    "SamplingEstimator",
    "TrueCardinalityEstimator",
    "CostModel",
    "dp_left_deep",
    "greedy_order",
    "random_order",
    "order_cost",
    "Planner",
    "RewriteRule",
    "RemoveDuplicatePredicates",
    "TightenRangePredicates",
    "DetectContradictions",
    "PropagateEqualityConstants",
    "EliminateRedundantJoins",
    "default_rules",
    "apply_rules_fixed_order",
]
