"""Catalog: tables, statistics, indexes (real and what-if), views.

The catalog is the surface the AI4DB advisors act on: the index advisor
creates/drops (possibly hypothetical) indexes, the view advisor registers
materialized views, ANALYZE refreshes the statistics the traditional
optimizer estimates from.
"""

from repro.common import CatalogError
from repro.engine.indexes import BPlusTree, HashIndex
from repro.engine.stats import TableStats
from repro.engine.storage import Table
from repro.engine.types import ColumnSchema, TableSchema


class IndexDef:
    """Catalog entry for an index.

    Attributes:
        name: unique index name.
        table: indexed table name.
        column: indexed column name.
        kind: ``"btree"`` or ``"hash"``.
        hypothetical: when True the index has no physical structure — it
            exists only for what-if costing (the index-advisor workflow).
        structure: the physical :class:`BPlusTree`/:class:`HashIndex`, or
            ``None`` for hypothetical indexes.
    """

    def __init__(self, name, table, column, kind="btree", hypothetical=False,
                 structure=None):
        if kind not in ("btree", "hash"):
            raise CatalogError("index kind must be 'btree' or 'hash'")
        self.name = name
        self.table = table
        self.column = column
        self.kind = kind
        self.hypothetical = hypothetical
        self.structure = structure

    def size_bytes(self, n_rows, n_distinct=None):
        """Actual or modeled size of the index."""
        if self.structure is not None:
            return self.structure.size_bytes()
        # Hypothetical: model as one key + one pointer per row plus 20%
        # structural overhead.
        return int(n_rows * (8 + 8) * 1.2)

    def __repr__(self):
        tag = "what-if " if self.hypothetical else ""
        return "IndexDef(%s%s on %s.%s, %s)" % (
            tag, self.name, self.table, self.column, self.kind
        )


class ViewDef:
    """Catalog entry for a materialized view.

    The view materializes the join result of ``query`` with *all* columns of
    the joined tables (wide rows), so any query over the same table set and
    join edges whose predicates subsume the view's can be answered from it
    by applying residual predicates.

    Attributes:
        name: view name.
        query: the defining :class:`~repro.engine.query.ConjunctiveQuery`.
        table: the materialized :class:`~repro.engine.storage.Table`; column
            names are ``table__column``.
    """

    def __init__(self, name, query, table):
        self.name = name
        self.query = query
        self.table = table

    @property
    def n_rows(self):
        """Materialized row count."""
        return self.table.n_rows

    def size_bytes(self):
        """Modeled storage footprint of the materialization."""
        return self.table.n_rows * self.table.row_bytes()

    def matches(self, query):
        """Whether ``query`` can be answered from this view.

        Requires the same table set, the same join-edge set, and the view's
        predicates to be a subset of the query's predicates. Returns the
        residual predicates to apply on the view, or ``None`` when the view
        does not apply.
        """
        if set(t.lower() for t in query.tables) != set(
            t.lower() for t in self.query.tables
        ):
            return None
        if set(e.key() for e in query.join_edges) != set(
            e.key() for e in self.query.join_edges
        ):
            return None
        view_preds = set(p.key() for p in self.query.predicates)
        query_preds = set(p.key() for p in query.predicates)
        if not view_preds <= query_preds:
            return None
        return [p for p in query.predicates if p.key() not in view_preds]

    def __repr__(self):
        return "ViewDef(%r, rows=%d)" % (self.name, self.n_rows)


class Catalog:
    """Holds all tables, statistics, indexes, and materialized views.

    Every mutation that can change planning outcomes advances a
    **per-table** monotonic version (:meth:`version` /
    :meth:`version_vector`): DDL, ANALYZE, index and view changes bump it
    explicitly, and a write hook installed on every table covers direct
    ``Table.insert_rows`` bulk loads (the data generators) without any
    polling of row counts. The derived global :attr:`epoch` — the sum of
    all per-table bumps — is maintained as its own O(1) counter, and a
    coarser :attr:`schema_epoch` moves only when the set of tables
    changes (what SQL-text lowering depends on). Caches key on the
    version vector restricted to the tables they cover, so a hot writer
    on one table never invalidates plans over the others.
    """

    def __init__(self, segment_rows=None, segment_encodings=None):
        self._tables = {}
        self._stats = {}
        self._indexes = {}
        self._views = {}
        # Per-table versions survive drop_table (the entry is the floor a
        # re-created table of the same name continues from), keeping
        # every published version — and the derived epoch — monotonic.
        self._versions = {}
        self._epoch = 0
        self._schema_epoch = 0
        # Storage knobs applied to tables this catalog creates; ``None``
        # means the Table defaults. Pre-built tables (register_table)
        # keep whatever layout they were constructed with.
        self.segment_rows = segment_rows
        self.segment_encodings = segment_encodings

    @property
    def epoch(self):
        """Derived global version: total bumps across all tables.

        Kept as its own counter updated alongside every per-table bump,
        so reading it is O(1) — the plan cache's hot path never scans
        tables or sums row counts. Strictly monotonic: drops keep their
        table's version entry as a floor.
        """
        return self._epoch

    @property
    def schema_epoch(self):
        """Version of the *table set* alone (create/drop table).

        Inserts, ANALYZE, and index/view changes leave it untouched — it
        invalidates only what depends on name resolution, such as the
        pipeline's SQL-text → lowered-query cache.
        """
        return self._schema_epoch

    def _bump_table(self, name, n=1):
        key = name.lower()
        self._versions[key] = self._versions.get(key, 0) + n
        self._epoch += n

    def _on_table_write(self, table):
        self._bump_table(table.name)

    def version(self, name):
        """The monotonic version of one table (0 if never seen)."""
        return self._versions.get(name.lower(), 0)

    def version_vector(self, tables=None):
        """Sorted ``((name, version), ...)`` over ``tables`` (or all).

        The restriction of the catalog's version state to a query's
        table set — the invalidation token caches store per entry.
        """
        if tables is None:
            names = sorted(self._versions)
        else:
            names = sorted({t.lower() for t in tables})
        return tuple((n, self._versions.get(n, 0)) for n in names)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def create_table(self, name, columns, sensitive=()):
        """Create an empty table.

        Args:
            name: table name.
            columns: list of ``(name, type)`` pairs or :class:`ColumnSchema`.
            sensitive: column names to flag as sensitive (ground truth for
                the security experiments).

        Returns:
            the new :class:`Table`.
        """
        key = name.lower()
        if key in self._tables:
            raise CatalogError("table %r already exists" % (name,))
        sensitive_set = {s.lower() for s in sensitive}
        cols = []
        for c in columns:
            if isinstance(c, ColumnSchema):
                cols.append(c)
            else:
                cname, ctype = c
                cols.append(
                    ColumnSchema(
                        cname, ctype, sensitive=cname.lower() in sensitive_set
                    )
                )
        table = Table(
            TableSchema(name, cols),
            segment_rows=self.segment_rows,
            segment_encodings=self.segment_encodings,
        )
        self._tables[key] = table
        table.add_write_hook(self._on_table_write)
        self._bump_table(key)
        self._schema_epoch += 1
        return table

    def register_table(self, table):
        """Register a pre-built :class:`Table` (used by the data generators)."""
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError("table %r already exists" % (table.name,))
        self._tables[key] = table
        table.add_write_hook(self._on_table_write)
        self._bump_table(key)
        self._schema_epoch += 1
        return table

    def drop_table(self, name):
        """Drop a table and its dependent stats and indexes.

        The table's version entry is kept (and bumped): a later table of
        the same name continues from it, so versions never move backward.
        """
        key = name.lower()
        if key not in self._tables:
            raise CatalogError("no table named %r" % (name,))
        self._tables[key].remove_write_hook(self._on_table_write)
        del self._tables[key]
        self._stats.pop(key, None)
        for idx_name in [
            n for n, d in self._indexes.items() if d.table.lower() == key
        ]:
            del self._indexes[idx_name]
        self._bump_table(key)
        self._schema_epoch += 1

    def table(self, name):
        """Look up a table by name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError("no table named %r" % (name,))

    def has_table(self, name):
        """Whether the table exists."""
        return name.lower() in self._tables

    def table_names(self):
        """All table names (sorted)."""
        return sorted(t.name for t in self._tables.values())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def analyze(self, name=None, n_buckets=32):
        """Collect statistics for one table (or all tables when ``None``)."""
        if name is None:
            for t in list(self._tables.values()):
                self.analyze(t.name, n_buckets=n_buckets)
            return None
        table = self.table(name)
        stats = TableStats.build(table, n_buckets=n_buckets)
        self._stats[name.lower()] = stats
        self._bump_table(name)
        return stats

    def stats(self, name):
        """Statistics for a table, computing them lazily if missing."""
        key = name.lower()
        if key not in self._stats:
            self.analyze(name)
        return self._stats[key]

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, name, table, column, kind="btree", hypothetical=False):
        """Create a (real or what-if) single-column index."""
        if name.lower() in {n.lower() for n in self._indexes}:
            raise CatalogError("index %r already exists" % (name,))
        tbl = self.table(table)
        tbl.schema.column(column)  # validates the column exists
        structure = None
        if not hypothetical:
            values = tbl.column_array(column)
            pairs = list(zip(values.tolist(), range(len(values))))
            if kind == "btree":
                structure = BPlusTree.bulk_load(pairs)
            else:
                structure = HashIndex.bulk_load(pairs)
        idx = IndexDef(
            name, tbl.name, tbl.schema.column(column).name, kind,
            hypothetical=hypothetical, structure=structure,
        )
        self._indexes[name] = idx
        self._bump_table(idx.table)
        return idx

    def drop_index(self, name):
        """Drop an index by name."""
        for key in list(self._indexes):
            if key.lower() == name.lower():
                table = self._indexes[key].table
                del self._indexes[key]
                self._bump_table(table)
                return
        raise CatalogError("no index named %r" % (name,))

    def indexes(self, table=None):
        """All indexes, optionally restricted to one table."""
        out = list(self._indexes.values())
        if table is not None:
            out = [i for i in out if i.table.lower() == table.lower()]
        return out

    def index_on(self, table, column, include_hypothetical=True):
        """The index on ``table.column`` if one exists, else ``None``."""
        for idx in self._indexes.values():
            if (
                idx.table.lower() == table.lower()
                and idx.column.lower() == column.lower()
                and (include_hypothetical or not idx.hypothetical)
            ):
                return idx
        return None

    def index_size_total(self):
        """Total modeled bytes across all (non-hypothetical) indexes."""
        total = 0
        for idx in self._indexes.values():
            if idx.hypothetical:
                continue
            n_rows = self.table(idx.table).n_rows
            total += idx.size_bytes(n_rows)
        return total

    # ------------------------------------------------------------------
    # Materialized views
    # ------------------------------------------------------------------
    def register_view(self, view):
        """Register a materialized :class:`ViewDef`."""
        key = view.name.lower()
        if key in self._views:
            raise CatalogError("view %r already exists" % (view.name,))
        self._views[key] = view
        # A view changes planning for queries over its base tables (the
        # planner may now answer from it), so those are what it bumps.
        for t in view.query.tables:
            self._bump_table(t)
        return view

    def drop_view(self, name):
        """Drop a materialized view."""
        key = name.lower()
        if key not in self._views:
            raise CatalogError("no view named %r" % (name,))
        view = self._views.pop(key)
        for t in view.query.tables:
            self._bump_table(t)

    def views(self):
        """All materialized views."""
        return list(self._views.values())

    def matching_view(self, query):
        """Find ``(view, residual_predicates)`` answering ``query``, if any.

        Prefers the view with the fewest rows (cheapest to scan).
        """
        best = None
        for view in self._views.values():
            residual = view.matches(query)
            if residual is None:
                continue
            if best is None or view.n_rows < best[0].n_rows:
                best = (view, residual)
        return best

    def view_size_total(self):
        """Total modeled bytes across all materialized views."""
        return sum(v.size_bytes() for v in self._views.values())

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self):
        """An immutable :class:`CatalogSnapshot` of the current state.

        Cost is O(sum of tail rows) — sealed storage is shared by
        reference. Readers holding the snapshot see this exact catalog
        (tables, stats, indexes, views, versions) no matter what writers
        do to the live one afterwards.
        """
        return CatalogSnapshot(self)

    def restore_point(self):
        """A :class:`CatalogRestorePoint` that can rewind this catalog.

        The write-side sibling of :meth:`snapshot` and the primitive the
        session API's ``rollback()`` is built on: captures every table's
        :class:`~repro.engine.storage.TableRestorePoint` plus the
        catalog's own maps (stats, indexes, views, versions, epochs), and
        ``restore()`` puts it all back bit-identically — tables created
        in between vanish, dropped ones reappear, and the version vector
        returns to its captured values.
        """
        return CatalogRestorePoint(self)

    # ------------------------------------------------------------------
    def total_data_bytes(self):
        """Total modeled base-table bytes."""
        return sum(t.n_rows * t.row_bytes() for t in self._tables.values())

    def describe(self):
        """Human-readable one-line-per-object summary (for examples/demos)."""
        lines = []
        for t in sorted(self._tables.values(), key=lambda x: x.name.lower()):
            lines.append(
                "table %s(%s) rows=%d"
                % (
                    t.name,
                    ", ".join(
                        "%s %s" % (c.name, c.dtype.value) for c in t.schema.columns
                    ),
                    t.n_rows,
                )
            )
        for i in self.indexes():
            lines.append("index %s on %s.%s (%s)%s" % (
                i.name, i.table, i.column, i.kind,
                " [what-if]" if i.hypothetical else "",
            ))
        for v in self.views():
            lines.append("view %s rows=%d" % (v.name, v.n_rows))
        return "\n".join(lines)


class CatalogRestorePoint:
    """A rewind handle for a whole :class:`Catalog`.

    Captures the table map, per-table physical restore points, and the
    stats / index / view / version maps. ``restore()`` rewinds all of it:

    * tables created after the capture are detached (their write hook is
      removed so later writes to a stale reference cannot bump versions);
    * tables dropped after the capture come back, physically rewound;
    * the version vector, derived epoch, and schema epoch return to the
      captured values.

    Restoring moves versions **backward** — the one deliberate exception
    to the catalog's monotonicity rule, sound because the data is
    rewound with them (a cached plan whose token matches again planned
    over bit-identical state). Callers that cached plans *during* the
    rewound window must drop them: the session API calls
    ``pipeline.invalidate()`` after every restore.
    """

    __slots__ = ("_catalog", "_tables", "_points", "_stats", "_indexes",
                 "_views", "_versions", "_epoch", "_schema_epoch")

    def __init__(self, catalog):
        self._catalog = catalog
        self._tables = dict(catalog._tables)
        self._points = {
            key: table.restore_point()
            for key, table in catalog._tables.items()
        }
        self._stats = dict(catalog._stats)
        self._indexes = dict(catalog._indexes)
        self._views = dict(catalog._views)
        self._versions = dict(catalog._versions)
        self._epoch = catalog._epoch
        self._schema_epoch = catalog._schema_epoch

    def version_vector(self, tables=None):
        """The captured ``((name, version), ...)`` vector (what
        ``restore()`` returns the catalog to)."""
        if tables is None:
            names = sorted(self._versions)
        else:
            names = sorted({t.lower() for t in tables})
        return tuple((n, self._versions.get(n, 0)) for n in names)

    def restore(self):
        """Rewind the catalog (and every captured table) — idempotent."""
        cat = self._catalog
        hook = cat._on_table_write
        for key, table in cat._tables.items():
            if key not in self._tables:
                table.remove_write_hook(hook)
        cat._tables = dict(self._tables)
        for point in self._points.values():
            point.restore()
        for table in cat._tables.values():
            if hook not in table._write_hooks:
                table.add_write_hook(hook)
        cat._stats = dict(self._stats)
        cat._indexes = dict(self._indexes)
        cat._views = dict(self._views)
        cat._versions = dict(self._versions)
        cat._epoch = self._epoch
        cat._schema_epoch = self._schema_epoch

    def __repr__(self):
        return "CatalogRestorePoint(tables=%d, epoch=%d)" % (
            len(self._tables), self._epoch
        )


class CatalogSnapshot:
    """An immutable point-in-time view of a :class:`Catalog`.

    MVCC-style read surface: pins a :class:`~repro.engine.storage.
    TableSnapshot` per table plus the statistics, index, and view
    definitions as of snapshot time, stamped with the version vector they
    were taken at. The executor runs plans against one of these exactly
    as against the live catalog (same ``table``/``indexes``/``stats``
    lookup surface); mutating methods simply do not exist, so any write
    attempt fails loudly rather than corrupting the pinned state.

    Two pinning caveats, both loud rather than silent: an index created
    *after* the snapshot is absent here, so a plan probing it raises
    (plans are built against the live catalog); and view definitions
    embed their live materialized table — views are immutable after
    registration in this engine, so the pinned definition cannot drift.
    """

    __slots__ = ("_tables", "_stats", "_indexes", "_views", "_versions",
                 "_epoch", "_schema_epoch")

    def __init__(self, catalog):
        self._tables = {
            key: table.snapshot() for key, table in catalog._tables.items()
        }
        self._stats = dict(catalog._stats)
        self._indexes = dict(catalog._indexes)
        self._views = dict(catalog._views)
        self._versions = dict(catalog._versions)
        self._epoch = catalog.epoch
        self._schema_epoch = catalog.schema_epoch

    @property
    def epoch(self):
        """The derived global version at snapshot time."""
        return self._epoch

    @property
    def schema_epoch(self):
        """The table-set version at snapshot time."""
        return self._schema_epoch

    def version(self, name):
        """One table's version at snapshot time (0 if never seen)."""
        return self._versions.get(name.lower(), 0)

    def version_vector(self, tables=None):
        """Sorted ``((name, version), ...)`` pinned at snapshot time."""
        if tables is None:
            names = sorted(self._versions)
        else:
            names = sorted({t.lower() for t in tables})
        return tuple((n, self._versions.get(n, 0)) for n in names)

    # -- the executor/planner-facing read surface ----------------------
    def table(self, name):
        """Look up a pinned :class:`TableSnapshot` by name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError("no table named %r" % (name,))

    def has_table(self, name):
        """Whether the table existed at snapshot time."""
        return name.lower() in self._tables

    def table_names(self):
        """All pinned table names (sorted)."""
        return sorted(t.name for t in self._tables.values())

    def stats(self, name):
        """Statistics for a table, computed lazily over the *pinned* data.

        Lazy computation caches locally in the snapshot — the live
        catalog (and its versions) never observes a snapshot read.
        """
        key = name.lower()
        if key not in self._stats:
            self._stats[key] = TableStats.build(self.table(name))
        return self._stats[key]

    def indexes(self, table=None):
        """Indexes pinned at snapshot time, optionally for one table."""
        out = list(self._indexes.values())
        if table is not None:
            out = [i for i in out if i.table.lower() == table.lower()]
        return out

    def index_on(self, table, column, include_hypothetical=True):
        """The pinned index on ``table.column`` if any, else ``None``."""
        for idx in self._indexes.values():
            if (
                idx.table.lower() == table.lower()
                and idx.column.lower() == column.lower()
                and (include_hypothetical or not idx.hypothetical)
            ):
                return idx
        return None

    def views(self):
        """Materialized views pinned at snapshot time."""
        return list(self._views.values())

    def matching_view(self, query):
        """``(view, residual_predicates)`` answering ``query``, if any."""
        best = None
        for view in self._views.values():
            residual = view.matches(query)
            if residual is None:
                continue
            if best is None or view.n_rows < best[0].n_rows:
                best = (view, residual)
        return best

    def snapshot(self):
        """Snapshots are already immutable; return self."""
        return self

    def __repr__(self):
        return "CatalogSnapshot(tables=%d, epoch=%d)" % (
            len(self._tables), self._epoch
        )
