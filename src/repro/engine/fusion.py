"""Operator fusion: collapse a plan's tail into one pipelined pass.

The planner emits plan tails of the shape ``Limit?(HashAggregate(src))``
or ``Limit?(Project(Sort?(src)))`` where ``src`` is a scan (with pushed
predicates) or a completed join subtree, optionally under a standalone
``Filter``. Executing that tail operator-at-a-time materializes the full
filtered relation just so the next operator can immediately narrow it to
a handful of columns (or a handful of groups). :func:`fuse_plan` rewrites
such a tail into a single :class:`~repro.engine.plans.FusedPipelineOp`
that the executor evaluates in one pass — predicate mask, gather of only
the columns the tail actually reads, aggregation/dedup/limit — without
the intermediate relation ever existing.

Fusion is an *execution-time* rewrite, applied by ``Executor.execute``
when ``fusion_enabled`` is set. The plan cache, EXPLAIN cost annotations,
and cost-model estimates all stay in terms of the unfused plan; the
fused node keeps references to the original operator nodes so work
accounting is charged under the same operator keys, in the same order,
with the same cardinalities as the unfused interpreter — which is what
lets the differential fuzzer race fused against unfused execution and
demand identical ``work``/``operator_work`` numbers.

The pass deliberately refuses anything order-sensitive or ambiguous:

* a ``Sort`` anywhere in the tail (fused evaluation has no sort stage);
* ``EmptyResult`` sources (nothing to fuse);
* tails where *both* the source scan carries pushed predicates and a
  standalone ``Filter`` sits above it (two mask stages — rare enough
  that the general path is fine);
* bare ``Project`` tails with no predicates, no DISTINCT, and no LIMIT
  (fusion would only relabel the plan).
"""

from repro.engine import plans as P

#: Node types a fused tail may consume directly.
_SOURCE_TYPES = (
    P.SeqScan,
    P.IndexScan,
    P.ViewScan,
    P.HashJoin,
    P.NestedLoopJoin,
    P.CrossJoin,
)


def _lift_scan_predicates(node):
    """``(bare_source, lifted_predicates)`` for a fused tail's source.

    Pushed scan predicates move into the fused op so the scan emits raw
    rows and the fused pass applies one mask over exactly the columns it
    needs. Index probing stays in the scan (only the residual lifts) —
    the index lookup is the point of an IndexScan. Estimates carry over
    so plan featurization of the source stays stable.
    """
    if isinstance(node, P.SeqScan) and node.predicates:
        bare = P.SeqScan(node.table, ())
        lifted = list(node.predicates)
    elif isinstance(node, P.IndexScan) and node.residual:
        bare = P.IndexScan(node.table, node.index_name, node.predicate, ())
        lifted = list(node.residual)
    elif isinstance(node, P.ViewScan) and node.residual:
        bare = P.ViewScan(node.view, ())
        lifted = list(node.residual)
    else:
        return node, []
    bare.est_rows = node.est_rows
    bare.est_cost = node.est_cost
    # Back-reference for actual-row attribution: counts recorded against
    # the bare copy land on the original plan's scan node, so per-node
    # telemetry is identical with fusion on or off.
    bare.origin = getattr(node, "origin", node)
    return bare, lifted


def fuse_plan(plan):
    """Rewrite ``plan``'s tail into a ``FusedPipelineOp`` when profitable.

    Returns ``(plan, fused_ops)``: the (possibly rewritten) plan and the
    number of pipeline stages the fused node absorbed (0 when the tail
    does not match or fusion would not save a materialization).
    """
    node = plan
    limit_node = None
    if isinstance(node, P.Limit):
        limit_node, node = node, node.children[0]
    agg_node = None
    project_node = None
    if isinstance(node, P.HashAggregate):
        agg_node, node = node, node.children[0]
    elif isinstance(node, P.Project):
        project_node, node = node, node.children[0]
    else:
        return plan, 0
    filter_node = None
    if isinstance(node, P.Filter):
        filter_node, node = node, node.children[0]
    if not isinstance(node, _SOURCE_TYPES):
        return plan, 0
    source, lifted = _lift_scan_predicates(node)
    if filter_node is not None and lifted:
        return plan, 0
    predicates = (
        list(filter_node.predicates) if filter_node is not None else lifted
    )
    worth_it = (
        agg_node is not None
        or bool(predicates)
        or (project_node is not None and project_node.distinct)
        or limit_node is not None
    )
    if not worth_it:
        return plan, 0
    fused = P.FusedPipelineOp(
        source,
        predicates=predicates,
        filter_node=filter_node,
        project_node=project_node,
        agg_node=agg_node,
        limit_node=limit_node,
    )
    top = limit_node or agg_node or project_node
    fused.est_rows = top.est_rows
    fused.est_cost = top.est_cost
    return fused, fused.fused_ops
