"""In-memory relational database substrate.

Everything the AI4DB components act on lives here: a SQL front end, a
catalog with statistics, a pluggable cost-based optimizer, an executor with
exact work accounting, index structures, and the simulators (knobs,
transactions, telemetry) that stand in for production substrates per the
substitution table in DESIGN.md.
"""

from repro.engine.errors import (
    EngineError,
    PolicyError,
    SessionError,
)
from repro.engine.types import ColumnSchema, DataType, TableSchema
from repro.engine.storage import (
    PAGE_BYTES,
    RowGroup,
    Table,
    TableRestorePoint,
    TableSnapshot,
)
from repro.engine.segments import (
    DEFAULT_ENCODINGS,
    ColumnSegment,
    ZoneMap,
    choose_encoding,
    merge_value_counts,
)
from repro.engine.stats import ColumnStats, EquiDepthHistogram, TableStats
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate
from repro.engine.catalog import (
    Catalog,
    CatalogRestorePoint,
    CatalogSnapshot,
    IndexDef,
    ViewDef,
)
from repro.engine.config import CACHE_SCOPES, EXECUTOR_MODES, EngineConfig
from repro.engine.indexes import BPlusTree, HashIndex
from repro.engine.executor import (
    ExecutionResult,
    Executor,
    Relation,
    count_join_rows,
)
from repro.engine.fusion import fuse_plan
from repro.engine.morsels import MorselPool, MorselQueue, morsel_slices
from repro.engine.operators import (
    ColumnarRelation,
    PhysicalOperator,
    operator_for,
    registered_node_types,
)
from repro.engine.optimizer.feedback import (
    FeedbackCorrectedEstimator,
    QueryFeedbackStore,
)
from repro.engine.optimizer.hints import (
    HintSet,
    PlanCandidate,
    default_arms,
    hint_grid,
)
from repro.engine.optimizer.selection import (
    BanditSelector,
    CostSelector,
    PessimisticSelector,
    PlanSelector,
    make_selector,
)
from repro.engine.optimizer.ues import bound_cost, ues_order
from repro.engine.config import PLAN_SELECTORS
from repro.engine.pipeline import (
    PIPELINE_STAGES,
    ExplainResult,
    PlanCache,
    PreparedQuery,
    QueryPipeline,
)
from repro.engine.plans import FusedPipelineOp
from repro.engine.session import (
    AgentSession,
    AuditLog,
    AuditRecord,
    DryRunReport,
    Policy,
    PolicyDecision,
    SessionContext,
    SessionResult,
    StatementInfo,
    StatementPreview,
    split_script,
)
from repro.engine.database import Database, DatabaseSnapshot
from repro.engine.server import (
    AdmissionController,
    AdmissionError,
    QueryServer,
    Session,
    TokenBucket,
    run_traffic,
)
from repro.engine.config import ADMISSION_POLICIES
from repro.engine.telemetry import ServingRollup
from repro.engine.knobs import (
    KnobSpec,
    KnobResponseSimulator,
    WorkloadProfile,
    default_knobs,
    executor_knobs,
    executor_params,
    standard_workloads,
)
from repro.engine.txn import (
    Transaction,
    LockTableSimulator,
    ScheduleResult,
    hotspot_workload,
    fifo_schedule,
    cost_ordered_schedule,
)
from repro.engine import datagen, telemetry

__all__ = [
    "AgentSession",
    "AuditLog",
    "AuditRecord",
    "CatalogRestorePoint",
    "DryRunReport",
    "EngineError",
    "Policy",
    "PolicyDecision",
    "PolicyError",
    "SessionContext",
    "SessionError",
    "SessionResult",
    "StatementInfo",
    "StatementPreview",
    "TableRestorePoint",
    "split_script",
    "ColumnSchema",
    "DataType",
    "TableSchema",
    "PAGE_BYTES",
    "RowGroup",
    "Table",
    "TableSnapshot",
    "DEFAULT_ENCODINGS",
    "ColumnSegment",
    "ZoneMap",
    "choose_encoding",
    "merge_value_counts",
    "ColumnStats",
    "EquiDepthHistogram",
    "TableStats",
    "Aggregate",
    "ConjunctiveQuery",
    "JoinEdge",
    "Predicate",
    "Catalog",
    "CatalogSnapshot",
    "IndexDef",
    "ViewDef",
    "BPlusTree",
    "HashIndex",
    "CACHE_SCOPES",
    "EXECUTOR_MODES",
    "EngineConfig",
    "ExecutionResult",
    "Executor",
    "ExplainResult",
    "FusedPipelineOp",
    "Relation",
    "ColumnarRelation",
    "PhysicalOperator",
    "operator_for",
    "registered_node_types",
    "FeedbackCorrectedEstimator",
    "QueryFeedbackStore",
    "count_join_rows",
    "fuse_plan",
    "MorselPool",
    "MorselQueue",
    "morsel_slices",
    "PIPELINE_STAGES",
    "PlanCache",
    "PreparedQuery",
    "QueryPipeline",
    "PLAN_SELECTORS",
    "HintSet",
    "PlanCandidate",
    "default_arms",
    "hint_grid",
    "PlanSelector",
    "CostSelector",
    "BanditSelector",
    "PessimisticSelector",
    "make_selector",
    "bound_cost",
    "ues_order",
    "Database",
    "DatabaseSnapshot",
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmissionError",
    "QueryServer",
    "ServingRollup",
    "Session",
    "TokenBucket",
    "run_traffic",
    "KnobSpec",
    "KnobResponseSimulator",
    "WorkloadProfile",
    "default_knobs",
    "executor_knobs",
    "executor_params",
    "standard_workloads",
    "Transaction",
    "LockTableSimulator",
    "ScheduleResult",
    "hotspot_workload",
    "fifo_schedule",
    "cost_ordered_schedule",
    "datagen",
    "telemetry",
]
