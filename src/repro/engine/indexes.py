"""Index structures: B+Tree and hash index.

The B+Tree here is the *traditional* baseline the learned indexes in
:mod:`repro.ai4db.design.learned_index` compete with, and also what the
executor's IndexScan uses. Keys map to lists of row ids (duplicates allowed).
Probe methods (``search``/``range_search``) return NumPy ``int64`` row-id
arrays so the vectorized executor can gather columns without a Python-list
round trip.
"""

import bisect

import numpy as np

from repro.common import CatalogError

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def _as_ids(row_ids):
    """Row ids as an int64 array (copying, so callers may sort in place)."""
    if not row_ids:
        return _EMPTY_IDS.copy()
    return np.asarray(row_ids, dtype=np.int64)


class _LeafNode:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys = []
        self.values = []  # list of lists of row ids, aligned with keys
        self.next = None


class _InnerNode:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys = []
        self.children = []


class BPlusTree:
    """A B+Tree mapping orderable keys to lists of row ids.

    Args:
        order: maximum number of keys per node before a split (>= 3).
    """

    def __init__(self, order=64):
        if order < 3:
            raise CatalogError("B+Tree order must be >= 3")
        self.order = order
        self._root = _LeafNode()
        self._height = 1
        self._n_keys = 0
        self._n_entries = 0

    def __len__(self):
        return self._n_entries

    @property
    def n_keys(self):
        """Number of distinct keys."""
        return self._n_keys

    @property
    def height(self):
        """Tree height in levels (1 = a single leaf)."""
        return self._height

    def insert(self, key, row_id):
        """Insert one (key, row_id) pair."""
        result = self._insert(self._root, key, row_id)
        if result is not None:
            sep, right = result
            new_root = _InnerNode()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._n_entries += 1

    def _insert(self, node, key, row_id):
        if isinstance(node, _LeafNode):
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i].append(row_id)
                return None
            node.keys.insert(i, key)
            node.values.insert(i, [row_id])
            self._n_keys += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        i = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[i], key, row_id)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.keys) > self.order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, node):
        mid = len(node.keys) // 2
        right = _LeafNode()
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_inner(self, node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _InnerNode()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    def _find_leaf(self, key):
        node = self._root
        while isinstance(node, _InnerNode):
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        return node

    def search(self, key):
        """Row ids for an exact key match (int64 array, empty when absent)."""
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return _as_ids(leaf.values[i])
        return _EMPTY_IDS.copy()

    def range_search(self, low=None, high=None, inclusive=(True, True)):
        """Row ids for keys in ``[low, high]`` (bounds optional).

        Args:
            low: lower bound or ``None`` for open.
            high: upper bound or ``None`` for open.
            inclusive: pair of booleans for the two bounds.
        """
        lo_inc, hi_inc = inclusive
        if low is not None:
            leaf = self._find_leaf(low)
            i = (
                bisect.bisect_left(leaf.keys, low)
                if lo_inc
                else bisect.bisect_right(leaf.keys, low)
            )
        else:
            leaf = self._leftmost_leaf()
            i = 0
        out = []
        while leaf is not None:
            while i < len(leaf.keys):
                k = leaf.keys[i]
                if high is not None:
                    if hi_inc and k > high:
                        return _as_ids(out)
                    if not hi_inc and k >= high:
                        return _as_ids(out)
                out.extend(leaf.values[i])
                i += 1
            leaf = leaf.next
            i = 0
        return _as_ids(out)

    def _leftmost_leaf(self):
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        return node

    def items(self):
        """Iterate ``(key, [row_ids])`` in key order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for k, v in zip(leaf.keys, leaf.values):
                yield k, list(v)
            leaf = leaf.next

    def keys(self):
        """All distinct keys in order."""
        return [k for k, __ in self.items()]

    def size_bytes(self, key_bytes=8, ptr_bytes=8):
        """Modeled in-memory size: keys + row-id pointers + fanout pointers."""
        n_inner_keys = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _InnerNode):
                n_inner_keys += len(node.keys)
                stack.extend(node.children)
        return (
            self._n_keys * key_bytes
            + self._n_entries * ptr_bytes
            + n_inner_keys * (key_bytes + ptr_bytes)
        )

    @classmethod
    def bulk_load(cls, pairs, order=64):
        """Build from an iterable of (key, row_id) pairs (any order)."""
        tree = cls(order=order)
        for key, row_id in sorted(pairs, key=lambda kv: kv[0]):
            tree.insert(key, row_id)
        return tree


class HashIndex:
    """Equality-only index: a dict from key to row-id list."""

    def __init__(self):
        self._map = {}
        self._n_entries = 0

    def insert(self, key, row_id):
        """Insert one (key, row_id) pair."""
        self._map.setdefault(key, []).append(row_id)
        self._n_entries += 1

    def search(self, key):
        """Row ids for an exact key match (int64 array, empty when absent)."""
        return _as_ids(self._map.get(key, ()))

    @property
    def n_keys(self):
        """Number of distinct keys."""
        return len(self._map)

    def __len__(self):
        return self._n_entries

    def size_bytes(self, key_bytes=8, ptr_bytes=8):
        """Modeled size: hash directory plus entries."""
        return len(self._map) * (key_bytes + ptr_bytes) + self._n_entries * ptr_bytes

    @classmethod
    def bulk_load(cls, pairs):
        """Build from an iterable of (key, row_id) pairs."""
        index = cls()
        for key, row_id in pairs:
            index.insert(key, row_id)
        return index
