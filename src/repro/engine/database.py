"""The :class:`Database` façade: SQL in, rows out.

Ties the front end (parser + lowering), the optimizer (rewriter, planner)
and the executor together behind an explicit staged
:class:`~repro.engine.pipeline.QueryPipeline`
(parse → lower → rewrite → plan → execute, with a plan cache keyed on the
full query signature + catalog epoch). Construction is driven by one
frozen :class:`~repro.engine.config.EngineConfig` — pass one via
``Database(config=...)``, or pass the legacy per-knob keyword arguments
and a config is built for you (both spellings wire identical engines).

The extension points the AI4DB and DB4AI layers use:

* ``pipeline.statement_hooks`` — callables that get the raw SQL text
  first; the AISQL declarative layer registers its ``CREATE MODEL``/
  ``PREDICT`` handlers here.
* ``planner`` attributes — estimator/enumerator/cost model are swappable
  (call ``db.pipeline.invalidate()`` after swapping them in place, since
  the plan cache cannot observe such mutations).
* ``pipeline.rewriter`` — optional query rewriter applied in the
  pipeline's rewrite stage.
* ``pipeline.add_stage_hook`` — observe/replace any stage's output.

Every statement flows through a :class:`~repro.engine.session.context.
SessionContext` — :meth:`Database.execute` is a thin facade over an
ungated one (identical behavior and return values to the classic
surface), and :meth:`Database.session` / :meth:`Database.agent_session`
hand out gated ones with per-session policy, audit, dry-run, and (for
agent sessions) transactional rollback.

The pre-pipeline ``db.rewriter`` / ``db.statement_hooks`` shims were
removed after their deprecation cycle; accessing them now raises with a
pointer at the ``db.pipeline`` spelling.
"""

import threading

from repro.common import ReproError, ensure_rng, spawn_rngs
from repro.engine.catalog import Catalog
from repro.engine.config import EngineConfig
from repro.engine.executor import Executor, count_join_rows
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.feedback import (
    FeedbackCorrectedEstimator,
    QueryFeedbackStore,
)
from repro.engine.optimizer.planner import Planner
from repro.engine.optimizer.selection import make_selector
from repro.engine.pipeline import QueryPipeline
from repro.engine.session.agent import AgentSession
from repro.engine.session.context import SessionContext, SnapshotBackend


class Database:
    """An in-memory database instance.

    Args:
        config: an :class:`~repro.engine.config.EngineConfig` fully
            describing the engine (the primary constructor surface).
            Mutually exclusive with the per-knob keyword arguments.
        enumerator: join enumerator for the default planner
            (``"dp"``/``"greedy"``/``"random"``).
        use_views: whether the planner may answer from materialized views.
        cost_params: overrides for the cost-model constants (knob effects).
        executor_mode: ``"vectorized"``, ``"parallel"``, or ``"row"``;
            ``None`` reads ``REPRO_EXECUTOR_MODE`` (via
            :meth:`EngineConfig.from_env`) and falls back to
            ``"vectorized"``.
        plan_cache_size: LRU capacity of the pipeline's plan cache.
        morsel_rows: morsel size for parallel mode (``None`` reads
            ``REPRO_MORSEL_SIZE``, default 16384 rows).
        parallel_workers: worker count for parallel mode (``None`` reads
            ``REPRO_PARALLEL_WORKERS``, default CPU-derived).
        fusion_enabled: whether the executor fuses eligible plan tails
            (``None`` reads ``REPRO_FUSION``, default on).
        feedback_enabled: whether executed actual cardinalities feed back
            into the planner's estimator and the plan cache's feedback
            version (``None`` reads ``REPRO_FEEDBACK``, default off).
        segment_rows: sealed-segment capacity for tables this database
            creates (``None`` reads ``REPRO_SEGMENT_ROWS``, default 64K).
        segment_encodings: encodings the segment sealer may choose among
            (``None`` reads ``REPRO_SEGMENT_ENCODINGS``, default
            ``("dict", "rle", "plain")``).
        zone_map_pruning: whether scans prune segments via zone maps
            (``None`` reads ``REPRO_ZONE_MAP_PRUNING``, default on).
        cache_scope: plan-cache invalidation scope — ``"table"``
            (default) keys entries on the per-table version vector of the
            tables the query touches; ``"global"`` restores the legacy
            whole-catalog epoch token (``None`` reads
            ``REPRO_CACHE_SCOPE``).
        plan_selector: plan-selection strategy — ``"cost"`` (the exact
            legacy single-path planner, the default), ``"bandit"``
            (BAO-lite hint-set arms picked by a contextual bandit,
            trained online from measured work), or ``"pessimistic"``
            (always the UES upper-bound plan). ``None`` reads
            ``REPRO_PLAN_SELECTOR``.
        regret_cap: bandit eligibility guard — an arm is pickable only
            while its estimated cost is ≤ ``regret_cap ×`` the UES
            bound (``None`` reads ``REPRO_REGRET_CAP``, default 2.0).
        seed: engine seed for every stochastic component (bandit
            sampling, the random enumerator); ``None`` reads
            ``REPRO_SEED``, default 0.
    """

    def __init__(self, config=None, *, enumerator=None, use_views=None,
                 cost_params=None, executor_mode=None, plan_cache_size=None,
                 morsel_rows=None, parallel_workers=None,
                 fusion_enabled=None, feedback_enabled=None,
                 segment_rows=None, segment_encodings=None,
                 zone_map_pruning=None, cache_scope=None,
                 plan_selector=None, regret_cap=None, seed=None):
        overrides = {
            "enumerator": enumerator,
            "use_views": use_views,
            "cost_params": cost_params,
            "executor_mode": executor_mode,
            "plan_cache_size": plan_cache_size,
            "morsel_rows": morsel_rows,
            "parallel_workers": parallel_workers,
            "fusion_enabled": fusion_enabled,
            "feedback_enabled": feedback_enabled,
            "segment_rows": segment_rows,
            "segment_encodings": segment_encodings,
            "zone_map_pruning": zone_map_pruning,
            "cache_scope": cache_scope,
            "plan_selector": plan_selector,
            "regret_cap": regret_cap,
            "seed": seed,
        }
        passed = sorted(k for k, v in overrides.items() if v is not None)
        if config is not None:
            if passed:
                raise ReproError(
                    "pass engine knobs either via config= or as keyword "
                    "arguments, not both (got config plus: %s)"
                    % ", ".join(passed)
                )
            if not isinstance(config, EngineConfig):
                raise ReproError(
                    "config must be an EngineConfig, got %r" % (config,)
                )
        else:
            config = EngineConfig.from_env(**overrides)
        self._config = config
        self.catalog = Catalog(
            segment_rows=config.segment_rows,
            segment_encodings=config.segment_encodings,
        )
        self.cost_model = CostModel(config.cost_params)
        self.planner = Planner(
            self.catalog,
            cost_model=self.cost_model,
            enumerator=config.enumerator,
            use_views=config.use_views,
            seed=config.seed,
        )
        self.executor = Executor(
            self.catalog, self.cost_model, **config.executor_kwargs()
        )
        # One seeded generator per engine: `rng` is the public stream,
        # and the plan selector gets its own spawned child so user draws
        # never perturb the (reproducible) selection sequence.
        self.rng = ensure_rng(config.seed)
        selector_rng, = spawn_rngs(config.seed, 1)
        self.plan_selector = make_selector(
            config.plan_selector,
            regret_cap=config.regret_cap,
            rng=selector_rng,
        )
        # Per-arm executors for hint sets that override fusion/parallel
        # execution; built lazily, keyed (mode, fusion_enabled).
        self._hint_executors = {}
        self._hint_executor_lock = threading.Lock()
        self.feedback = None
        if config.feedback_enabled:
            self.feedback = QueryFeedbackStore()
            # The planner keeps its base estimator; the wrapper overrides
            # estimates with observed actuals on exact sub-query hits.
            self.planner.estimator = FeedbackCorrectedEstimator(
                self.planner.estimator, self.feedback
            )
            # Drift demotes a misbehaving learned arm: the feedback
            # store's ingest hook notifies the selector on every drift.
            self.feedback.drift_listeners.append(
                self.plan_selector.note_drift
            )
        self.pipeline = QueryPipeline(
            self, plan_cache_size=config.plan_cache_size
        )
        # The ungated facade session Database.execute routes through —
        # same code path and return values as calling the pipeline raw.
        self._session = SessionContext(self)

    @property
    def config(self):
        """The frozen :class:`EngineConfig` this engine was built from."""
        return self._config

    @property
    def feedback_version(self):
        """The feedback store's drift generation (0 when feedback is off).

        Part of the plan cache's invalidation token: cached plans hit
        only while both the catalog epoch and the feedback version they
        were planned under are current.
        """
        return 0 if self.feedback is None else self.feedback.version

    def executor_for(self, hints=None):
        """The executor a hint set's execution axes resolve to.

        ``fusion``/``parallel`` are execution hints: they never change
        measured work (the engine's mode contract), only how the plan is
        run. ``None`` axes inherit the engine config, in which case the
        shared default executor is returned; overriding arms get a
        lazily built executor cached per ``(mode, fusion)`` so the
        serving layer can plan concurrently without re-wiring state.
        """
        if hints is None:
            return self.executor
        mode = self._config.executor_mode
        if hints.parallel is not None:
            if hints.parallel:
                mode = "parallel"
            elif mode == "parallel":
                mode = "vectorized"
        fusion = (
            self.executor.fusion_enabled
            if hints.fusion is None else bool(hints.fusion)
        )
        if mode == self.executor.mode and fusion == self.executor.fusion_enabled:
            return self.executor
        key = (mode, fusion)
        with self._hint_executor_lock:
            cached = self._hint_executors.get(key)
            if cached is None:
                kwargs = self._config.executor_kwargs()
                kwargs["mode"] = mode
                kwargs["fusion_enabled"] = fusion
                cached = Executor(self.catalog, self.cost_model, **kwargs)
                self._hint_executors[key] = cached
            return cached

    # -- removed pre-pipeline shims -------------------------------------
    def _removed_shim(self, name):
        raise AttributeError(
            "Database.%s was removed after its deprecation cycle; use "
            "db.pipeline.%s instead" % (name, name)
        )

    @property
    def rewriter(self):
        """Removed — use ``db.pipeline.rewriter``."""
        self._removed_shim("rewriter")

    @rewriter.setter
    def rewriter(self, fn):
        self._removed_shim("rewriter")

    @property
    def statement_hooks(self):
        """Removed — use ``db.pipeline.statement_hooks``."""
        self._removed_shim("statement_hooks")

    @statement_hooks.setter
    def statement_hooks(self, hooks):
        self._removed_shim("statement_hooks")

    @property
    def epoch(self):
        """The catalog's derived global version counter.

        A shim over :attr:`Catalog.epoch` — the sum of every per-table
        version bump, kept O(1). Callers that need precision should use
        ``db.catalog.version_vector(tables)`` instead; one global number
        cannot say *what* changed.
        """
        return self.catalog.epoch

    def version_vector(self, tables=None):
        """Per-table catalog versions, optionally restricted to ``tables``."""
        return self.catalog.version_vector(tables)

    def snapshot(self):
        """An immutable read session pinned to the current catalog state.

        Returns a :class:`DatabaseSnapshot`: SELECTs run through this
        database's pipeline (sharing its warm plan cache) but execute
        against a pinned :class:`~repro.engine.catalog.CatalogSnapshot`,
        so concurrent writers never change what the session reads.
        """
        return DatabaseSnapshot(self)

    def session(self, policy=None, audit=None):
        """Open a :class:`~repro.engine.session.context.SessionContext`.

        The unified statement surface: ``execute`` returns a
        :class:`~repro.engine.session.context.SessionResult`, ``dry_run``
        plans whole scripts without executing, and the optional
        ``policy`` / ``audit`` turn on per-statement gating and logging.
        """
        return SessionContext(self, policy=policy, audit=audit)

    def agent_session(self, policy=None, audit=None):
        """Open an :class:`~repro.engine.session.agent.AgentSession`.

        The safety-gated handle for autonomous callers: always audited,
        optionally policy-gated, with ``begin()``/``commit()``/
        ``rollback()`` transactional undo over the whole catalog.
        """
        return AgentSession(self, policy=policy, audit=audit)

    # ------------------------------------------------------------------
    def execute(self, sql_text):
        """Execute one SQL (or AISQL) statement through the pipeline.

        A facade over the database's ungated session — behavior and
        return values are exactly the classic surface:

        Returns:
            For SELECT: an :class:`~repro.engine.executor.ExecutionResult`.
            For DDL/DML/ANALYZE: a status string.
            For hooked statements: whatever the hook returns.
        """
        return self._session.execute(sql_text).raw

    # ------------------------------------------------------------------
    def query(self, sql_text):
        """Execute a SELECT and return just the rows."""
        result = self.execute(sql_text)
        return result.rows

    def explain(self, sql_text):
        """Plan a SELECT without executing it.

        Returns an :class:`~repro.engine.pipeline.ExplainResult` whose
        ``str()`` is the classic plan text and which additionally carries
        the plan object, the ``fused_ops`` preview, and the cache-hit
        flag.
        """
        return self.pipeline.explain(sql_text)

    def explain_analyze(self, sql_text):
        """Execute a SELECT and report estimated vs actual rows per node.

        Returns an :class:`~repro.engine.pipeline.ExplainResult` whose
        text renders the plan with each node's planner-estimated rows,
        executor-counted actual rows, and q-error, and whose
        ``node_stats``/``result`` fields carry the structured records and
        the :class:`~repro.engine.executor.ExecutionResult`.
        """
        return self.pipeline.explain_analyze(sql_text)

    def run_query_object(self, query, order=None):
        """Plan and execute a structured :class:`ConjunctiveQuery` directly."""
        return self.pipeline.run_query(query, order=order)

    def true_cardinality(self, query, tables=None):
        """Oracle cardinality of (a subset of) a conjunctive query's join."""
        return count_join_rows(
            self.catalog, query, tables if tables is not None else query.tables
        )


class DatabaseSnapshot:
    """A read-only, point-in-time session over one :class:`Database`.

    MVCC-style snapshot isolation for readers: the catalog (tables,
    statistics, indexes, views, versions) is pinned at construction, so
    every query this session runs sees exactly that state — bit-identical
    results no matter how many rows writers append to the live database
    in the meantime. Planning still flows through the owning database's
    pipeline (and shares its warm plan cache); only *execution* is pinned,
    via the executor's per-run catalog override. Feedback ingestion is
    skipped for snapshot runs, and non-SELECT statements are rejected.

    Cheap enough to take per query: construction cost is O(unsealed tail
    rows) across tables, since sealed storage is immutable and shared.
    """

    def __init__(self, database):
        self._db = database
        self.catalog = database.catalog.snapshot()
        # The ungated facade session execute() routes through; reads are
        # pinned to this snapshot's catalog by the backend.
        self._session = SessionContext(
            database, backend=SnapshotBackend(database, self.catalog)
        )

    def session(self, policy=None, audit=None):
        """A gated :class:`SessionContext` pinned to this snapshot."""
        return SessionContext(
            self._db,
            backend=SnapshotBackend(self._db, self.catalog),
            policy=policy,
            audit=audit,
        )

    @property
    def epoch(self):
        """The derived global version pinned at snapshot time."""
        return self.catalog.epoch

    def version_vector(self, tables=None):
        """The pinned per-table versions (what this session reads)."""
        return self.catalog.version_vector(tables)

    def execute(self, sql_text):
        """Run one SELECT against the pinned state.

        Returns an :class:`~repro.engine.executor.ExecutionResult`;
        anything but SELECT raises
        :class:`~repro.common.ExecutionError`.
        """
        return self._session.execute(sql_text).raw

    def query(self, sql_text):
        """Run one SELECT against the pinned state; returns just the rows."""
        return self.execute(sql_text).rows

    def run_query_object(self, query, order=None):
        """Plan and execute a structured query against the pinned state."""
        return self._db.pipeline.run_query(
            query, order=order, snapshot=self.catalog
        )

    def __repr__(self):
        return "DatabaseSnapshot(epoch=%d, tables=%d)" % (
            self.catalog.epoch, len(self.catalog.table_names())
        )
