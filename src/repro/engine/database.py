"""The :class:`Database` façade: SQL in, rows out.

Ties the front end (parser + lowering), the optimizer (rewriter, planner)
and the executor together behind an explicit staged
:class:`~repro.engine.pipeline.QueryPipeline`
(parse → lower → rewrite → plan → execute, with a plan cache keyed on the
full query signature + catalog epoch). The extension points the AI4DB and
DB4AI layers use:

* ``statement_hooks`` — callables that get the raw SQL text first; the
  AISQL declarative layer registers its ``CREATE MODEL``/``PREDICT``
  handlers here. (Back-compat shim for
  ``db.pipeline.statement_hooks``.)
* ``planner`` attributes — estimator/enumerator/cost model are swappable
  (call ``db.pipeline.invalidate()`` after swapping them in place, since
  the plan cache cannot observe such mutations).
* ``rewriter`` — optional query rewriter applied in the pipeline's
  rewrite stage. (Back-compat shim for ``db.pipeline.rewriter``.)
* ``pipeline.add_stage_hook`` — observe/replace any stage's output.
"""

import os

from repro.engine.catalog import Catalog
from repro.engine.executor import Executor, count_join_rows
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.planner import Planner
from repro.engine.pipeline import QueryPipeline


class Database:
    """An in-memory database instance.

    Args:
        enumerator: join enumerator for the default planner
            (``"dp"``/``"greedy"``/``"random"``).
        use_views: whether the planner may answer from materialized views.
        cost_params: overrides for the cost-model constants (knob effects).
        executor_mode: ``"vectorized"``, ``"parallel"``, or ``"row"``;
            ``None`` reads the ``REPRO_EXECUTOR_MODE`` environment variable
            and falls back to ``"vectorized"``.
        plan_cache_size: LRU capacity of the pipeline's plan cache.
        morsel_rows: morsel size for parallel mode (``None`` reads
            ``REPRO_MORSEL_SIZE``, default 16384 rows).
        parallel_workers: worker count for parallel mode (``None`` reads
            ``REPRO_PARALLEL_WORKERS``, default CPU-derived).
    """

    def __init__(self, enumerator="dp", use_views=True, cost_params=None,
                 executor_mode=None, plan_cache_size=256, morsel_rows=None,
                 parallel_workers=None):
        if executor_mode is None:
            executor_mode = os.environ.get("REPRO_EXECUTOR_MODE") or "vectorized"
        self.catalog = Catalog()
        self.cost_model = CostModel(cost_params)
        self.planner = Planner(
            self.catalog,
            cost_model=self.cost_model,
            enumerator=enumerator,
            use_views=use_views,
        )
        self.executor = Executor(self.catalog, self.cost_model,
                                 mode=executor_mode,
                                 morsel_rows=morsel_rows,
                                 n_workers=parallel_workers)
        self.pipeline = QueryPipeline(self, plan_cache_size=plan_cache_size)

    # -- back-compat shims onto the pipeline ---------------------------
    @property
    def rewriter(self):
        """The pipeline's rewrite-stage callable (``None`` when unset)."""
        return self.pipeline.rewriter

    @rewriter.setter
    def rewriter(self, fn):
        self.pipeline.rewriter = fn

    @property
    def statement_hooks(self):
        """The pipeline's raw-SQL intercept hooks (mutable list)."""
        return self.pipeline.statement_hooks

    @statement_hooks.setter
    def statement_hooks(self, hooks):
        self.pipeline.statement_hooks = list(hooks)

    @property
    def epoch(self):
        """The catalog's monotonic version counter (cache invalidation)."""
        return self.catalog.epoch

    # ------------------------------------------------------------------
    def execute(self, sql_text):
        """Execute one SQL (or AISQL) statement through the pipeline.

        Returns:
            For SELECT: an :class:`~repro.engine.executor.ExecutionResult`.
            For DDL/DML/ANALYZE: a status string.
            For hooked statements: whatever the hook returns.
        """
        return self.pipeline.run_sql(sql_text)

    # ------------------------------------------------------------------
    def query(self, sql_text):
        """Execute a SELECT and return just the rows."""
        result = self.execute(sql_text)
        return result.rows

    def explain(self, sql_text):
        """Return the physical plan text for a SELECT without executing it."""
        return self.pipeline.explain(sql_text)

    def run_query_object(self, query, order=None):
        """Plan and execute a structured :class:`ConjunctiveQuery` directly."""
        return self.pipeline.run_query(query, order=order)

    def true_cardinality(self, query, tables=None):
        """Oracle cardinality of (a subset of) a conjunctive query's join."""
        return count_join_rows(
            self.catalog, query, tables if tables is not None else query.tables
        )
