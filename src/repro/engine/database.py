"""The :class:`Database` façade: SQL in, rows out.

Ties the front end (parser + lowering), the optimizer (rewriter, planner)
and the executor together, and exposes the extension points the AI4DB and
DB4AI layers use:

* ``statement_hooks`` — callables that get the raw SQL text first; the
  AISQL declarative layer registers its ``CREATE MODEL``/``PREDICT``
  handlers here.
* ``planner`` attributes — estimator/enumerator/cost model are swappable.
* ``rewriter`` — optional query rewriter applied before planning.
"""

import os

from repro.common import ParseError
from repro.engine.catalog import Catalog
from repro.engine.executor import Executor, count_join_rows
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.planner import Planner
from repro.engine.sql.ast_nodes import (
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    InsertStmt,
    SelectStmt,
)
from repro.engine.sql.lowering import lower_select
from repro.engine.sql.parser import parse_sql


class Database:
    """An in-memory database instance.

    Args:
        enumerator: join enumerator for the default planner
            (``"dp"``/``"greedy"``/``"random"``).
        use_views: whether the planner may answer from materialized views.
        cost_params: overrides for the cost-model constants (knob effects).
        executor_mode: ``"vectorized"`` or ``"row"``; ``None`` reads the
            ``REPRO_EXECUTOR_MODE`` environment variable and falls back to
            ``"vectorized"``.
    """

    def __init__(self, enumerator="dp", use_views=True, cost_params=None,
                 executor_mode=None):
        if executor_mode is None:
            executor_mode = os.environ.get("REPRO_EXECUTOR_MODE") or "vectorized"
        self.catalog = Catalog()
        self.cost_model = CostModel(cost_params)
        self.planner = Planner(
            self.catalog,
            cost_model=self.cost_model,
            enumerator=enumerator,
            use_views=use_views,
        )
        self.executor = Executor(self.catalog, self.cost_model,
                                 mode=executor_mode)
        self.rewriter = None  # callable(query) -> query, set by ai4db layers
        self.statement_hooks = []  # callables(db, sql_text) -> result or None

    # ------------------------------------------------------------------
    def execute(self, sql_text):
        """Execute one SQL (or AISQL) statement.

        Returns:
            For SELECT: an :class:`~repro.engine.executor.ExecutionResult`.
            For DDL/DML/ANALYZE: a status string.
            For hooked statements: whatever the hook returns.
        """
        for hook in self.statement_hooks:
            result = hook(self, sql_text)
            if result is not None:
                return result
        stmt = parse_sql(sql_text)
        if isinstance(stmt, SelectStmt):
            return self._run_select(stmt)
        if isinstance(stmt, CreateTableStmt):
            self.catalog.create_table(stmt.name, stmt.columns)
            return "CREATE TABLE"
        if isinstance(stmt, CreateIndexStmt):
            self.catalog.create_index(
                stmt.name, stmt.table, stmt.column, kind=stmt.kind,
                hypothetical=stmt.hypothetical,
            )
            return "CREATE INDEX"
        if isinstance(stmt, InsertStmt):
            table = self.catalog.table(stmt.table)
            rows = stmt.rows
            if stmt.columns:
                positions = [
                    table.schema.column_index(c) for c in stmt.columns
                ]
                width = len(table.schema.columns)
                reordered = []
                for r in rows:
                    if len(r) != len(positions):
                        raise ParseError(
                            "INSERT row width %d != column list width %d"
                            % (len(r), len(positions))
                        )
                    full = [None] * width
                    for pos, v in zip(positions, r):
                        full[pos] = v
                    reordered.append(full)
                rows = reordered
            n = table.insert_rows(rows)
            return "INSERT %d" % n
        if isinstance(stmt, AnalyzeStmt):
            self.catalog.analyze(stmt.table)
            return "ANALYZE"
        raise ParseError("unhandled statement %r" % (stmt,))

    def _run_select(self, stmt):
        query = lower_select(stmt, self.catalog)
        if self.rewriter is not None:
            query = self.rewriter(query)
        plan = self.planner.plan(query)
        return self.executor.execute(plan)

    # ------------------------------------------------------------------
    def query(self, sql_text):
        """Execute a SELECT and return just the rows."""
        result = self.execute(sql_text)
        return result.rows

    def explain(self, sql_text):
        """Return the physical plan text for a SELECT without executing it."""
        stmt = parse_sql(sql_text)
        if not isinstance(stmt, SelectStmt):
            raise ParseError("EXPLAIN supports only SELECT statements")
        query = lower_select(stmt, self.catalog)
        if self.rewriter is not None:
            query = self.rewriter(query)
        plan = self.planner.plan(query)
        return plan.pretty()

    def run_query_object(self, query, order=None):
        """Plan and execute a structured :class:`ConjunctiveQuery` directly."""
        if self.rewriter is not None:
            query = self.rewriter(query)
        plan = self.planner.plan(query, order=order)
        return self.executor.execute(plan)

    def true_cardinality(self, query, tables=None):
        """Oracle cardinality of (a subset of) a conjunctive query's join."""
        return count_join_rows(
            self.catalog, query, tables if tables is not None else query.tables
        )
