"""Structured query model: conjunctive select-project-join queries.

Most learned database components (cardinality estimators, join-order
agents, index/view advisors) operate on a *structured* view of the query —
which tables it touches, which join edges connect them, which filter
predicates it carries. :class:`ConjunctiveQuery` is that view; the SQL
front end lowers parsed SELECT statements into it, and the workload
generators produce it directly.
"""

from repro.common import PlanError

_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}


class Predicate:
    """A filter predicate ``table.column <op> value``.

    Args:
        table: table name.
        column: column name.
        op: one of ``= != < <= > >=``.
        value: literal (int/float/str).
    """

    __slots__ = ("table", "column", "op", "value")

    def __init__(self, table, column, op, value):
        if op not in _COMPARISONS:
            raise PlanError("unsupported predicate operator %r" % (op,))
        self.table = table
        self.column = column
        self.op = op
        self.value = value

    def key(self):
        """Hashable identity for dedup/caching."""
        return (self.table.lower(), self.column.lower(), self.op, self.value)

    def __repr__(self):
        return "%s.%s %s %r" % (self.table, self.column, self.op, self.value)

    def __eq__(self, other):
        return isinstance(other, Predicate) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())


class JoinEdge:
    """An equi-join edge ``left_table.left_column = right_table.right_column``."""

    __slots__ = ("left_table", "left_column", "right_table", "right_column")

    def __init__(self, left_table, left_column, right_table, right_column):
        self.left_table = left_table
        self.left_column = left_column
        self.right_table = right_table
        self.right_column = right_column

    def touches(self, table):
        """Whether this edge involves ``table``."""
        t = table.lower()
        return self.left_table.lower() == t or self.right_table.lower() == t

    def other_side(self, table):
        """``(table, column)`` of the side opposite ``table``."""
        t = table.lower()
        if self.left_table.lower() == t:
            return self.right_table, self.right_column
        if self.right_table.lower() == t:
            return self.left_table, self.left_column
        raise PlanError("edge %r does not touch table %r" % (self, table))

    def key(self):
        """Order-insensitive hashable identity."""
        a = (self.left_table.lower(), self.left_column.lower())
        b = (self.right_table.lower(), self.right_column.lower())
        return (a, b) if a <= b else (b, a)

    def __repr__(self):
        return "%s.%s = %s.%s" % (
            self.left_table,
            self.left_column,
            self.right_table,
            self.right_column,
        )

    def __eq__(self, other):
        return isinstance(other, JoinEdge) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())


class Aggregate:
    """An aggregate expression ``func(table.column)`` (or ``COUNT(*)``)."""

    __slots__ = ("func", "table", "column")

    FUNCS = {"count", "sum", "avg", "min", "max"}

    def __init__(self, func, table=None, column=None):
        func = func.lower()
        if func not in self.FUNCS:
            raise PlanError("unsupported aggregate %r" % (func,))
        if func != "count" and column is None:
            raise PlanError("%s() needs a column argument" % func)
        self.func = func
        self.table = table
        self.column = column

    def __repr__(self):
        arg = "*" if self.column is None else "%s.%s" % (self.table, self.column)
        return "%s(%s)" % (self.func, arg)


class ConjunctiveQuery:
    """A select-project-join query in structured form.

    Attributes:
        tables: list of table names (deduplicated, order preserved).
        join_edges: list of :class:`JoinEdge` equi-joins.
        predicates: list of :class:`Predicate` filters (implicitly AND-ed).
        projections: list of ``(table, column)`` output columns; empty means
            "all columns of all tables".
        aggregates: list of :class:`Aggregate` (empty for plain selects).
        group_by: list of ``(table, column)`` grouping keys.
        order_by: optional ``((table, column), descending)`` pair.
        limit: optional row limit.
    """

    def __init__(
        self,
        tables,
        join_edges=(),
        predicates=(),
        projections=(),
        aggregates=(),
        group_by=(),
        order_by=None,
        limit=None,
        distinct=False,
    ):
        seen = set()
        self.tables = []
        for t in tables:
            key = t.lower()
            if key not in seen:
                seen.add(key)
                self.tables.append(t)
        if not self.tables:
            raise PlanError("a query needs at least one table")
        self.join_edges = list(join_edges)
        self.predicates = list(predicates)
        self.projections = list(projections)
        self.aggregates = list(aggregates)
        self.group_by = list(group_by)
        self.order_by = order_by
        self.limit = limit
        self.distinct = distinct
        table_set = {t.lower() for t in self.tables}
        for e in self.join_edges:
            if e.left_table.lower() not in table_set or e.right_table.lower() not in table_set:
                raise PlanError("join edge %r references a table not in FROM" % (e,))
        for p in self.predicates:
            if p.table.lower() not in table_set:
                raise PlanError("predicate %r references a table not in FROM" % (p,))

    def predicates_on(self, table):
        """Filter predicates on one table."""
        t = table.lower()
        return [p for p in self.predicates if p.table.lower() == t]

    def edges_between(self, left_tables, right_table):
        """Join edges connecting any table in ``left_tables`` to ``right_table``."""
        left = {t.lower() for t in left_tables}
        rt = right_table.lower()
        out = []
        for e in self.join_edges:
            lt, rtt = e.left_table.lower(), e.right_table.lower()
            if (lt in left and rtt == rt) or (rtt in left and lt == rt):
                out.append(e)
        return out

    def join_graph(self):
        """The query's join graph as ``{table: set(neighbor tables)}``."""
        graph = {t.lower(): set() for t in self.tables}
        for e in self.join_edges:
            lt, rt = e.left_table.lower(), e.right_table.lower()
            graph[lt].add(rt)
            graph[rt].add(lt)
        return graph

    def is_connected(self):
        """Whether the join graph is connected (no cross products needed)."""
        graph = self.join_graph()
        if not graph:
            return True
        start = next(iter(graph))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nb in graph[node]:
                if nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        return len(seen) == len(graph)

    def signature(self):
        """Hashable identity of the full query (for caching/featurizing).

        Covers the join structure (tables, edges, predicates — all
        order-insensitive) *and* the output shape: projections, aggregates,
        grouping keys, ordering, limit, and distinct. Two queries that
        differ only in, say, ``LIMIT`` or their aggregate list therefore
        never share a signature — required by anything keyed on it, most
        importantly the pipeline plan cache.
        """
        order_by = None
        if self.order_by is not None:
            (ot, oc), descending = self.order_by
            order_by = ((ot.lower(), oc.lower()), bool(descending))
        return (
            tuple(sorted(t.lower() for t in self.tables)),
            tuple(sorted(e.key() for e in self.join_edges)),
            tuple(sorted(p.key() for p in self.predicates)),
            tuple((t.lower(), c.lower()) for t, c in self.projections),
            tuple(
                (
                    a.func,
                    None if a.table is None else a.table.lower(),
                    None if a.column is None else a.column.lower(),
                )
                for a in self.aggregates
            ),
            tuple((t.lower(), c.lower()) for t, c in self.group_by),
            order_by,
            self.limit,
            self.distinct,
        )

    def __repr__(self):
        return "ConjunctiveQuery(tables=%r, joins=%d, predicates=%d)" % (
            self.tables,
            len(self.join_edges),
            len(self.predicates),
        )
