"""Morsel-driven parallel execution substrate.

Morsel-driven parallelism (Leis et al., the HyPer scheduler) splits each
operator's input into fixed-size row ranges — *morsels* — and lets a pool
of workers pull them from a shared queue, so imbalance in per-morsel cost
is absorbed by scheduling rather than by static partitioning. This module
supplies the three pieces the executor's ``"parallel"`` mode builds on:

* :func:`morsel_slices` — deterministic ``(start, stop)`` decomposition of
  an ``n``-row batch into morsels;
* :class:`MorselQueue` — per-worker deques over one batch's morsels with
  LIFO work stealing from the busiest victim;
* :class:`MorselPool` — fans worker loops out over a process-wide
  ``ThreadPoolExecutor`` (NumPy kernels release the GIL) and returns the
  per-morsel results **in morsel order**, which is what keeps parallel
  execution deterministic: scheduling decides only *who* computes a
  morsel, never where its output lands.

Configuration resolves in this order: explicit argument, environment
variable (``REPRO_MORSEL_SIZE`` / ``REPRO_PARALLEL_WORKERS``, both read
by :mod:`repro.engine.config` — the engine's single env-reading site),
default.
"""

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.common import ExecutionError
from repro.engine.config import (  # noqa: F401 - re-exported compat names
    DEFAULT_MORSEL_ROWS,
    MIN_MORSEL_ROWS,
    default_morsel_rows,
    default_worker_count,
)


def morsel_slices(n_rows, morsel_rows):
    """Split ``n_rows`` into ``(start, stop)`` ranges of ``morsel_rows``.

    The decomposition is purely arithmetic — same inputs, same slices —
    which is the first half of the parallel determinism guarantee.
    """
    if morsel_rows < 1:
        raise ExecutionError("morsel size must be >= 1")
    return [
        (start, min(start + morsel_rows, n_rows))
        for start in range(0, n_rows, morsel_rows)
    ]


class MorselQueue:
    """One batch's morsel indices, spread over per-worker deques.

    Workers pop their own deque from the front; a worker whose deque is
    empty steals from the *back* of the fullest victim (classic
    work-stealing order: owners eat FIFO, thieves LIFO, minimizing
    contention on the same end). A single lock is enough at this scale —
    morsel grains are thousands of rows, so queue operations are rare
    relative to kernel time.
    """

    def __init__(self, n_tasks, n_workers):
        if n_workers < 1:
            raise ExecutionError("MorselQueue needs at least one worker")
        self._deques = [deque() for __ in range(n_workers)]
        for task in range(n_tasks):
            self._deques[task % n_workers].append(task)
        self._lock = threading.Lock()

    def next_for(self, worker_id):
        """``(task_index, stolen)`` for this worker, or ``(None, False)``."""
        with self._lock:
            own = self._deques[worker_id]
            if own:
                return own.popleft(), False
            victim = max(self._deques, key=len)
            if victim:
                return victim.pop(), True
            return None, False

    def __len__(self):
        return sum(len(d) for d in self._deques)


class WorkerStats:
    """Per-worker accounting for one parallel operator invocation."""

    __slots__ = ("worker_id", "morsels", "steals", "seconds")

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.morsels = 0
        self.steals = 0
        self.seconds = 0.0

    def as_dict(self):
        return {
            "worker_id": self.worker_id,
            "morsels": self.morsels,
            "steals": self.steals,
            "seconds": self.seconds,
        }


# One process-wide thread pool, grown on demand. Worker loops never block
# on each other (any loop drains the whole shared queue via stealing), so
# sharing a pool between concurrently executing queries cannot deadlock —
# it only serializes some morsels, which scheduling absorbs.
_SHARED_LOCK = threading.Lock()
_SHARED_POOL = None
_SHARED_SIZE = 0


def _shared_executor(min_threads):
    global _SHARED_POOL, _SHARED_SIZE
    with _SHARED_LOCK:
        if _SHARED_POOL is None or _SHARED_SIZE < min_threads:
            old = _SHARED_POOL
            _SHARED_POOL = ThreadPoolExecutor(
                max_workers=min_threads, thread_name_prefix="repro-morsel"
            )
            _SHARED_SIZE = min_threads
            if old is not None:
                old.shutdown(wait=False)
        return _SHARED_POOL


class MorselPool:
    """Runs per-morsel tasks on ``n_workers`` work-stealing worker loops.

    ``run(fn, n_tasks)`` evaluates ``fn(task_index)`` for every index and
    returns ``(results, worker_stats)`` with ``results`` in task order —
    the caller concatenates them and gets output independent of thread
    scheduling. The first worker exception (if any) is re-raised after all
    workers have drained.
    """

    def __init__(self, n_workers=None):
        self.n_workers = n_workers if n_workers else default_worker_count()
        if self.n_workers < 1:
            raise ExecutionError("worker count must be >= 1")

    def run(self, fn, n_tasks):
        if n_tasks <= 0:
            return [], []
        if self.n_workers == 1 or n_tasks == 1:
            # Degenerate pool: run inline, same accounting shape.
            stats = WorkerStats(0)
            t0 = time.perf_counter()
            results = [fn(i) for i in range(n_tasks)]
            stats.morsels = n_tasks
            stats.seconds = time.perf_counter() - t0
            return results, [stats]
        queue = MorselQueue(n_tasks, self.n_workers)
        results = [None] * n_tasks
        errors = []

        def worker_loop(worker_id):
            stats = WorkerStats(worker_id)
            t0 = time.perf_counter()
            while True:
                task, stolen = queue.next_for(worker_id)
                if task is None:
                    break
                stats.steals += int(stolen)
                try:
                    results[task] = fn(task)
                except BaseException as exc:  # noqa: BLE001 - reraised below
                    errors.append(exc)
                    break
                stats.morsels += 1
            stats.seconds = time.perf_counter() - t0
            return stats

        pool = _shared_executor(self.n_workers)
        futures = [
            pool.submit(worker_loop, wid) for wid in range(self.n_workers)
        ]
        worker_stats = [f.result() for f in futures]
        if errors:
            raise errors[0]
        return results, worker_stats

    def __repr__(self):
        return "MorselPool(n_workers=%d)" % (self.n_workers,)
