"""Plan executor.

Interprets a physical plan over the catalog, producing rows *and* an exact
work measurement. Work is computed with the same formulas as the analytic
cost model but on the **actual** cardinalities observed at run time, so:

* measured work == cost-model output under a perfect estimator, and
* the gap between a plan's ``est_cost`` and its measured work is exactly
  the damage done by cardinality misestimation — the quantity the learned
  optimizer experiments report.

Results are fully materialized (these are analytics-scale experiments, not
a streaming engine).
"""

import operator

from repro.common import ExecutionError
from repro.engine import plans as P
from repro.engine.optimizer.cost import CostModel

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Relation:
    """An intermediate result: column labels plus materialized rows.

    Attributes:
        columns: list of ``(table, column)`` labels (lowercased).
        rows: list of tuples aligned with ``columns``.
    """

    __slots__ = ("columns", "rows", "_index")

    def __init__(self, columns, rows):
        self.columns = [(t.lower(), c.lower()) for t, c in columns]
        self.rows = rows
        self._index = {tc: i for i, tc in enumerate(self.columns)}

    def col_pos(self, table, column):
        """Position of ``table.column`` in each row tuple."""
        key = (table.lower(), column.lower())
        if key not in self._index:
            raise ExecutionError(
                "intermediate result has no column %s.%s" % (table, column)
            )
        return self._index[key]

    def __len__(self):
        return len(self.rows)


class ExecutionResult:
    """Executor output: the result relation plus the work accounting."""

    def __init__(self, relation, work, operator_work):
        self.relation = relation
        self.work = work
        self.operator_work = operator_work

    @property
    def rows(self):
        """Result rows (list of tuples)."""
        return self.relation.rows

    @property
    def columns(self):
        """Result column labels."""
        return self.relation.columns

    def __repr__(self):
        return "ExecutionResult(rows=%d, work=%.1f)" % (len(self.rows), self.work)


class Executor:
    """Executes physical plans against a catalog.

    Args:
        catalog: the :class:`~repro.engine.catalog.Catalog`.
        cost_model: the :class:`CostModel` whose constants weight the work
            accounting (pass the knob-derived model so knob settings change
            measured work, closing the tuning feedback loop).
    """

    def __init__(self, catalog, cost_model=None):
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()

    def execute(self, plan):
        """Run ``plan``; returns an :class:`ExecutionResult`."""
        self._work = 0.0
        self._op_work = {}
        relation = self._exec(plan)
        return ExecutionResult(relation, self._work, dict(self._op_work))

    # ------------------------------------------------------------------
    def _charge(self, node, amount):
        self._work += amount
        key = node.op_name
        self._op_work[key] = self._op_work.get(key, 0.0) + amount

    def _exec(self, node):
        handler = getattr(self, "_exec_%s" % type(node).__name__.lower(), None)
        if handler is None:
            raise ExecutionError("executor does not support %r" % (node,))
        return handler(node)

    # -- scans -----------------------------------------------------------
    def _table_relation(self, table_name):
        table = self.catalog.table(table_name)
        columns = [(table.name, c.name) for c in table.schema.columns]
        return table, columns

    @staticmethod
    def _eval_predicates(relation, predicates):
        if not predicates:
            return relation.rows
        compiled = [
            (relation.col_pos(p.table, p.column), _OPS[p.op], p.value)
            for p in predicates
        ]
        out = []
        for row in relation.rows:
            ok = True
            for pos, op, value in compiled:
                if not op(row[pos], value):
                    ok = False
                    break
            if ok:
                out.append(row)
        return out

    def _exec_seqscan(self, node):
        table, columns = self._table_relation(node.table)
        self._charge(node, self.cost_model.seq_scan(table.n_rows))
        relation = Relation(columns, table.rows())
        rows = self._eval_predicates(relation, node.predicates)
        return Relation(columns, rows)

    def _exec_indexscan(self, node):
        idx = None
        for cand in self.catalog.indexes(node.table):
            if cand.name == node.index_name:
                idx = cand
                break
        if idx is None:
            raise ExecutionError("index %r not found" % (node.index_name,))
        if idx.hypothetical:
            raise ExecutionError(
                "cannot execute a plan using hypothetical index %r" % (idx.name,)
            )
        pred = node.predicate
        structure = idx.structure
        if pred.op == "=":
            row_ids = structure.search(pred.value)
        elif idx.kind == "hash":
            raise ExecutionError("hash index supports only equality probes")
        elif pred.op == "<":
            row_ids = structure.range_search(high=pred.value, inclusive=(True, False))
        elif pred.op == "<=":
            row_ids = structure.range_search(high=pred.value, inclusive=(True, True))
        elif pred.op == ">":
            row_ids = structure.range_search(low=pred.value, inclusive=(False, True))
        elif pred.op == ">=":
            row_ids = structure.range_search(low=pred.value, inclusive=(True, True))
        else:
            raise ExecutionError("index scan cannot evaluate %r" % (pred,))
        table, columns = self._table_relation(node.table)
        self._charge(node, self.cost_model.index_scan(len(row_ids)))
        relation = Relation(columns, table.rows(sorted(row_ids)))
        rows = self._eval_predicates(relation, node.residual)
        return Relation(columns, rows)

    def _exec_viewscan(self, node):
        view_table = node.view.table
        columns = []
        for name in view_table.schema.column_names:
            t, __, c = name.partition("__")
            columns.append((t, c))
        self._charge(node, self.cost_model.seq_scan(view_table.n_rows))
        relation = Relation(columns, view_table.rows())
        rows = self._eval_predicates(relation, node.residual)
        return Relation(columns, rows)

    def _exec_emptyresult(self, node):
        return Relation(node.columns, [])

    # -- joins -----------------------------------------------------------
    def _join_keys(self, node, left, right):
        left_pos, right_pos = [], []
        for e in node.edges:
            if (e.left_table.lower(), e.left_column.lower()) in {
                tc for tc in left.columns
            }:
                lp = left.col_pos(e.left_table, e.left_column)
                rp = right.col_pos(e.right_table, e.right_column)
            else:
                lp = left.col_pos(e.right_table, e.right_column)
                rp = right.col_pos(e.left_table, e.left_column)
            left_pos.append(lp)
            right_pos.append(rp)
        return left_pos, right_pos

    def _exec_hashjoin(self, node):
        left = self._exec(node.children[0])
        right = self._exec(node.children[1])
        left_pos, right_pos = self._join_keys(node, left, right)
        buckets = {}
        for row in right.rows:
            key = tuple(row[p] for p in right_pos)
            buckets.setdefault(key, []).append(row)
        out = []
        for row in left.rows:
            key = tuple(row[p] for p in left_pos)
            for match in buckets.get(key, ()):
                out.append(row + match)
        self._charge(
            node, self.cost_model.hash_join(len(left.rows), len(right.rows), len(out))
        )
        return Relation(left.columns + right.columns, out)

    def _exec_nestedloopjoin(self, node):
        left = self._exec(node.children[0])
        right = self._exec(node.children[1])
        left_pos, right_pos = self._join_keys(node, left, right)
        out = []
        for lrow in left.rows:
            lkey = tuple(lrow[p] for p in left_pos)
            for rrow in right.rows:
                if lkey == tuple(rrow[p] for p in right_pos):
                    out.append(lrow + rrow)
        self._charge(
            node,
            self.cost_model.nested_loop_join(
                len(left.rows), len(right.rows), len(out)
            ),
        )
        return Relation(left.columns + right.columns, out)

    def _exec_crossjoin(self, node):
        left = self._exec(node.children[0])
        right = self._exec(node.children[1])
        out = [l + r for l in left.rows for r in right.rows]
        self._charge(node, self.cost_model.cross_join(len(left.rows), len(right.rows)))
        return Relation(left.columns + right.columns, out)

    # -- shaping ----------------------------------------------------------
    def _exec_filter(self, node):
        child = self._exec(node.children[0])
        self._charge(node, self.cost_model.params["cpu_tuple_cost"] * len(child.rows))
        rows = self._eval_predicates(child, node.predicates)
        return Relation(child.columns, rows)

    def _exec_project(self, node):
        child = self._exec(node.children[0])
        positions = [child.col_pos(t, c) for t, c in node.columns]
        self._charge(node, self.cost_model.params["cpu_tuple_cost"] * len(child.rows))
        rows = [tuple(row[p] for p in positions) for row in child.rows]
        if node.distinct:
            seen = set()
            deduped = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            rows = deduped
        return Relation(node.columns, rows)

    def _exec_hashaggregate(self, node):
        child = self._exec(node.children[0])
        key_pos = [child.col_pos(t, c) for t, c in node.group_by]
        agg_pos = []
        for agg in node.aggregates:
            if agg.column is None:
                agg_pos.append(None)
            else:
                agg_pos.append(child.col_pos(agg.table, agg.column))
        groups = {}
        for row in child.rows:
            key = tuple(row[p] for p in key_pos)
            groups.setdefault(key, []).append(row)
        if not groups and not node.group_by:
            groups[()] = []
        out = []
        for key, rows in groups.items():
            values = []
            for agg, pos in zip(node.aggregates, agg_pos):
                if agg.func == "count":
                    values.append(len(rows))
                    continue
                col = [r[pos] for r in rows]
                if not col:
                    values.append(None)
                elif agg.func == "sum":
                    values.append(sum(col))
                elif agg.func == "avg":
                    values.append(sum(col) / len(col))
                elif agg.func == "min":
                    values.append(min(col))
                elif agg.func == "max":
                    values.append(max(col))
                else:
                    raise ExecutionError("unknown aggregate %r" % (agg.func,))
            out.append(key + tuple(values))
        self._charge(node, self.cost_model.aggregate(len(child.rows), len(out)))
        columns = list(node.group_by) + [
            ("agg", "%s_%d" % (a.func, i)) for i, a in enumerate(node.aggregates)
        ]
        return Relation(columns, out)

    def _exec_sort(self, node):
        child = self._exec(node.children[0])
        pos = child.col_pos(*node.key)
        self._charge(node, self.cost_model.sort(len(child.rows)))
        rows = sorted(child.rows, key=lambda r: r[pos], reverse=node.descending)
        return Relation(child.columns, rows)

    def _exec_limit(self, node):
        child = self._exec(node.children[0])
        return Relation(child.columns, child.rows[: node.n])


def count_join_rows(catalog, query, tables):
    """True cardinality of the filtered join over ``tables`` (oracle helper).

    Used by :class:`~repro.engine.optimizer.cardinality.TrueCardinalityEstimator`
    and by tests. Executes with hash joins in a connectivity-respecting order
    and does not charge any work accounting.
    """
    names = [t for t in query.tables if t.lower() in {x.lower() for x in tables}]
    if not names:
        return 0
    table0 = catalog.table(names[0])
    columns = [(table0.name, c.name) for c in table0.schema.columns]
    relation = Relation(columns, table0.rows())
    rows = Executor._eval_predicates(relation, query.predicates_on(names[0]))
    current = Relation(columns, rows)
    joined = [names[0]]
    remaining = names[1:]
    while remaining:
        nxt = None
        for t in remaining:
            if query.edges_between(joined, t):
                nxt = t
                break
        if nxt is None:
            nxt = remaining[0]
        tbl = catalog.table(nxt)
        cols_t = [(tbl.name, c.name) for c in tbl.schema.columns]
        rel_t = Relation(cols_t, tbl.rows())
        rel_t = Relation(cols_t, Executor._eval_predicates(rel_t, query.predicates_on(nxt)))
        edges = query.edges_between(joined, nxt)
        if edges:
            left_pos, right_pos = [], []
            for e in edges:
                in_left = (e.left_table.lower(), e.left_column.lower()) in {
                    tc for tc in current.columns
                }
                if in_left:
                    left_pos.append(current.col_pos(e.left_table, e.left_column))
                    right_pos.append(rel_t.col_pos(e.right_table, e.right_column))
                else:
                    left_pos.append(current.col_pos(e.right_table, e.right_column))
                    right_pos.append(rel_t.col_pos(e.left_table, e.left_column))
            buckets = {}
            for row in rel_t.rows:
                buckets.setdefault(tuple(row[p] for p in right_pos), []).append(row)
            out = []
            for row in current.rows:
                key = tuple(row[p] for p in left_pos)
                for match in buckets.get(key, ()):
                    out.append(row + match)
        else:
            out = [l + r for l in current.rows for r in rel_t.rows]
        current = Relation(current.columns + rel_t.columns, out)
        joined.append(nxt)
        remaining.remove(nxt)
    return len(current.rows)
