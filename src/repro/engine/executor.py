"""Plan executor: a vectorized columnar engine plus a row interpreter.

Interprets a physical plan over the catalog, producing rows *and* an exact
work measurement. Work is computed with the same formulas as the analytic
cost model but on the **actual** cardinalities observed at run time, so:

* measured work == cost-model output under a perfect estimator, and
* the gap between a plan's ``est_cost`` and its measured work is exactly
  the damage done by cardinality misestimation — the quantity the learned
  optimizer experiments report.

Three execution modes share the plan contract and the work accounting:

* ``"vectorized"`` (the default) keeps every intermediate result columnar —
  NumPy arrays end-to-end. Predicates compile to one boolean mask, joins
  factorize their keys and gather matched row ids with fancy indexing,
  aggregation groups with a stable argsort + ``reduceat``, sort/limit/
  project operate on whole arrays.
* ``"parallel"`` is the vectorized engine with morsel-driven parallelism:
  large batches are split into fixed-size morsels
  (:mod:`repro.engine.morsels`) that a work-stealing thread pool evaluates
  concurrently for filters, hash-join probes, partial aggregation, and
  DISTINCT pre-deduplication; sort/limit/distinct-merge stay
  single-threaded so output order is deterministic. Per-morsel results are
  merged **in morsel order**, so scheduling never leaks into results.
* ``"row"`` is the original tuple-at-a-time interpreter, kept for
  differential testing and as an executable specification.

The modes are *observationally identical*: same rows, in the same
order (vectorized operators deliberately reproduce the interpreter's
output order, including hash-join probe order, group first-appearance
order, stable sorts, and DISTINCT first-occurrence semantics), and the
same ``work``/``operator_work`` numbers — work is charged from observed
cardinalities, never from implementation details, which is what keeps
"cost gap == misestimation damage" true in every mode.

Results are fully materialized (these are analytics-scale experiments, not
a streaming engine).
"""

import operator
import threading
import time

import numpy as np

from repro.common import ExecutionError
from repro.engine import plans as P
from repro.engine.config import (  # noqa: F401 - EXECUTOR_MODES re-exported
    EXECUTOR_MODES,
    default_fusion_enabled,
)
from repro.engine.fusion import fuse_plan
from repro.engine.morsels import (
    MorselPool,
    default_morsel_rows,
    default_worker_count,
    morsel_slices,
)
from repro.engine.optimizer.cost import CostModel
from repro.engine.telemetry import ExecutionTelemetry

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Sentinel distinguishing "no value seen yet" from a stored ``None`` in
#: the row-mode fused aggregation accumulators.
_UNSET = object()


class Relation:
    """An intermediate result: column labels plus materialized rows.

    Attributes:
        columns: list of ``(table, column)`` labels (lowercased).
        rows: list of tuples aligned with ``columns``.
    """

    __slots__ = ("columns", "rows", "_index")

    def __init__(self, columns, rows):
        self.columns = [(t.lower(), c.lower()) for t, c in columns]
        self.rows = rows
        self._index = {tc: i for i, tc in enumerate(self.columns)}

    def col_pos(self, table, column):
        """Position of ``table.column`` in each row tuple."""
        key = (table.lower(), column.lower())
        if key not in self._index:
            raise ExecutionError(
                "intermediate result has no column %s.%s" % (table, column)
            )
        return self._index[key]

    def __len__(self):
        return len(self.rows)


class ColumnarRelation:
    """An intermediate result carried as aligned NumPy column arrays.

    The vectorized twin of :class:`Relation`: ``arrays[i]`` holds every
    value of ``columns[i]``. Operators produce new ``ColumnarRelation``
    batches via masks and fancy indexing; rows are only materialized when
    the final result is converted with :meth:`to_relation`.
    """

    __slots__ = ("columns", "arrays", "_index", "_n")

    def __init__(self, columns, arrays, n_rows=None):
        self.columns = [(t.lower(), c.lower()) for t, c in columns]
        self.arrays = list(arrays)
        self._index = {tc: i for i, tc in enumerate(self.columns)}
        if n_rows is not None:
            self._n = int(n_rows)
        else:
            self._n = len(self.arrays[0]) if self.arrays else 0

    def col_pos(self, table, column):
        """Position of ``table.column`` in :attr:`arrays`."""
        key = (table.lower(), column.lower())
        if key not in self._index:
            raise ExecutionError(
                "intermediate result has no column %s.%s" % (table, column)
            )
        return self._index[key]

    def take(self, selector):
        """A new relation holding the rows picked by a mask or index array."""
        arrays = [a[selector] for a in self.arrays]
        return ColumnarRelation(self.columns, arrays)

    def to_relation(self):
        """Materialize as a row :class:`Relation` (Python scalar tuples)."""
        if not self.arrays or self._n == 0:
            return Relation(self.columns, [])
        return Relation(
            self.columns, list(zip(*(a.tolist() for a in self.arrays)))
        )

    def __len__(self):
        return self._n


# ----------------------------------------------------------------------
# Vectorized kernels shared by the executor and count_join_rows
# ----------------------------------------------------------------------
def _column_codes(arr):
    """Dense int64 codes for one column (equal values ⇒ equal codes).

    Non-object dtypes use ``np.unique``. Object columns (TEXT, nullable)
    use a first-appearance dict instead: sort-based ``np.unique`` would
    try to order the values and raise ``TypeError`` on ``None`` or mixed
    types, while dict equality matches the row interpreter's hash-based
    semantics exactly (``None == None`` groups/joins, no ordering needed).
    """
    if arr.dtype == object:
        codes = np.empty(len(arr), dtype=np.int64)
        seen = {}
        for i, value in enumerate(arr):
            code = seen.get(value)
            if code is None:
                code = seen[value] = len(seen)
            codes[i] = code
        return codes
    __, inv = np.unique(arr, return_inverse=True)
    return np.ascontiguousarray(inv, dtype=np.int64).ravel()


def _factorize(columns):
    """Dense int64 codes identifying each row's tuple over ``columns``.

    Rows with equal key tuples receive equal codes; codes are compacted
    after every column so multi-column keys cannot overflow.
    """
    codes = None
    for arr in columns:
        inv = _column_codes(arr)
        if codes is None:
            codes = inv
        else:
            width = int(inv.max()) + 1 if len(inv) else 1
            codes = codes * width + inv
            __, codes = np.unique(codes, return_inverse=True)
            codes = np.ascontiguousarray(codes, dtype=np.int64).ravel()
    return codes


def _join_build(left_cols, right_cols):
    """Build phase of the factorized equi-join: shared key codes.

    Factorizes the concatenated key columns once (so left and right codes
    are consistent) and sorts the right side. Returns
    ``(left_codes, right_codes_sorted, right_order)`` — everything a probe
    needs; probes over disjoint left ranges are independent, which is what
    the parallel executor exploits.
    """
    nl = len(left_cols[0])
    codes = _factorize(
        [np.concatenate([l, r]) for l, r in zip(left_cols, right_cols)]
    )
    lc, rc = codes[:nl], codes[nl:]
    order = np.argsort(rc, kind="stable")
    return lc, rc[order], order


def _join_probe(lc, rc_sorted, order, base=0):
    """Probe phase: row-id pairs for probe codes ``lc``.

    ``base`` offsets the emitted left row ids, so a morsel covering
    ``lc[start:stop]`` passes ``base=start`` and the concatenation of
    per-morsel outputs (in morsel order) equals the monolithic probe.
    """
    nl = len(lc)
    empty = np.empty(0, dtype=np.int64)
    starts = np.searchsorted(rc_sorted, lc, side="left")
    counts = np.searchsorted(rc_sorted, lc, side="right") - starts
    total = int(counts.sum())
    il = np.repeat(np.arange(base, base + nl, dtype=np.int64), counts)
    if total == 0:
        return il, empty
    offsets = np.cumsum(counts) - counts
    pos = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )
    return il, order[pos]


def _join_indices(left_cols, right_cols):
    """Row-id pairs ``(il, ir)`` of the equi-join of two key-column sets.

    Output order matches the row interpreter's hash join exactly: left
    rows in order, and for each left row its right matches in original
    right order (the stable argsort keeps within-key right order intact).
    """
    nl, nr = len(left_cols[0]), len(right_cols[0])
    empty = np.empty(0, dtype=np.int64)
    if nl == 0 or nr == 0:
        return empty, empty.copy()
    lc, rc_sorted, order = _join_build(left_cols, right_cols)
    return _join_probe(lc, rc_sorted, order)


def _cross_indices(nl, nr):
    """Row-id pairs of the Cartesian product, left-major (row order)."""
    il = np.repeat(np.arange(nl, dtype=np.int64), nr)
    ir = np.tile(np.arange(nr, dtype=np.int64), nl)
    return il, ir


def _predicate_mask(relation, predicates):
    """One boolean mask for a conjunction of predicates (vectorized)."""
    n = len(relation)
    mask = None
    for p in predicates:
        arr = relation.arrays[relation.col_pos(p.table, p.column)]
        m = np.asarray(_OPS[p.op](arr, p.value))
        if m.ndim == 0:  # incomparable types collapse to a scalar verdict
            m = np.full(n, bool(m))
        m = m.astype(bool, copy=False)
        mask = m if mask is None else mask & m
    return mask


def _segment_reduce(func, sorted_vals, seg_starts, counts):
    """Per-group reduction over values pre-sorted so groups are contiguous."""
    if sorted_vals.dtype == object:
        bounds = np.r_[seg_starts, len(sorted_vals)]
        segments = [
            sorted_vals[bounds[i]:bounds[i + 1]].tolist()
            for i in range(len(seg_starts))
        ]
        if func == "sum":
            vals = [sum(s) for s in segments]
        elif func == "avg":
            vals = [sum(s) / len(s) for s in segments]
        elif func == "min":
            vals = [min(s) for s in segments]
        elif func == "max":
            vals = [max(s) for s in segments]
        else:
            raise ExecutionError("unknown aggregate %r" % (func,))
        out = np.empty(len(vals), dtype=object)
        out[:] = vals
        return out
    if func == "sum":
        return np.add.reduceat(sorted_vals, seg_starts)
    if func == "avg":
        return np.add.reduceat(sorted_vals, seg_starts) / counts
    if func == "min":
        return np.minimum.reduceat(sorted_vals, seg_starts)
    if func == "max":
        return np.maximum.reduceat(sorted_vals, seg_starts)
    raise ExecutionError("unknown aggregate %r" % (func,))


def _stable_sort_indices(key, descending):
    """Stable sort permutation matching ``sorted(..., reverse=descending)``."""
    n = len(key)
    if not descending:
        return np.argsort(key, kind="stable")
    # Descending with ties in original order == stable ascending argsort of
    # the reversed array, reversed and mapped back to original positions.
    return (n - 1) - np.argsort(key[::-1], kind="stable")[::-1]


def _agg_input_columns(agg_node, source):
    """``(labels, positions)`` of the columns an aggregate actually reads.

    The fused path gathers only these through the predicate's surviving
    row ids — the full-width filtered relation is never materialized.
    """
    seen = {}
    for t, c in agg_node.group_by:
        key = (t.lower(), c.lower())
        if key not in seen:
            seen[key] = source.col_pos(t, c)
    for a in agg_node.aggregates:
        if a.column is not None:
            key = (a.table.lower(), a.column.lower())
            if key not in seen:
                seen[key] = source.col_pos(a.table, a.column)
    return list(seen), list(seen.values())


def _agg_partial(aggregates, keys, vals):
    """One morsel's partial aggregation, groups in appearance order.

    ``keys``/``vals`` are this morsel's (already masked) key and argument
    arrays. Returns ``(group_keys, states)`` where ``group_keys`` lists
    each group's key tuple and ``states[j][g]`` is aggregate ``j``'s
    partial state for group ``g``: a count, a sum, a min/max, or a
    ``(sum, count)`` pair for AVG — the carry that lets the merge stay
    exact instead of averaging averages.
    """
    n = len(keys[0]) if keys else 0
    if n == 0:
        # A fused morsel can be filtered down to nothing; emit no groups.
        return [], [[] for __ in aggregates]
    codes = _factorize(keys)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    seg_starts = np.flatnonzero(
        np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
    )
    counts = np.diff(np.r_[seg_starts, n])
    first_rows = order[seg_starts]
    rank = np.argsort(first_rows, kind="stable")
    group_keys = list(zip(
        *(k[first_rows[rank]].tolist() for k in keys)
    ))
    states = []
    for agg, col in zip(aggregates, vals):
        if agg.func == "count":
            states.append(counts[rank].tolist())
            continue
        sorted_vals = col[order]
        if agg.func == "avg":
            sums = _segment_reduce("sum", sorted_vals, seg_starts, counts)
            states.append(list(zip(
                np.asarray(sums)[rank].tolist(),
                counts[rank].tolist(),
            )))
        else:
            reduced = _segment_reduce(agg.func, sorted_vals, seg_starts,
                                      counts)
            states.append(np.asarray(reduced)[rank].tolist())
    return group_keys, states


class ExecutionResult:
    """Executor output: the result relation plus the work accounting."""

    def __init__(self, relation, work, operator_work, telemetry=None):
        self.relation = relation
        self.work = work
        self.operator_work = operator_work
        self._telemetry = telemetry

    @property
    def telemetry(self):
        """Per-run :class:`ExecutionTelemetry` (the supported accessor —
        callers should read it here rather than reaching into the
        executor's per-run state)."""
        return self._telemetry

    @property
    def rows(self):
        """Result rows (list of tuples)."""
        return self.relation.rows

    @property
    def columns(self):
        """Result column labels."""
        return self.relation.columns

    def __repr__(self):
        return "ExecutionResult(rows=%d, work=%.1f)" % (len(self.rows), self.work)


class Executor:
    """Executes physical plans against a catalog.

    Args:
        catalog: the :class:`~repro.engine.catalog.Catalog`.
        cost_model: the :class:`CostModel` whose constants weight the work
            accounting (pass the knob-derived model so knob settings change
            measured work, closing the tuning feedback loop).
        mode: ``"vectorized"`` (default, columnar NumPy batches),
            ``"parallel"`` (morsel-driven vectorized execution on a
            work-stealing thread pool), or ``"row"`` (tuple-at-a-time
            interpreter). All modes return the same rows in the same order
            and charge identical work.
        morsel_rows: rows per morsel in parallel mode (``None`` reads
            ``REPRO_MORSEL_SIZE`` via :mod:`repro.engine.config`, default
            16384). Inputs smaller than two morsels run on the
            single-threaded vectorized path.
        n_workers: worker count in parallel mode (``None`` reads
            ``REPRO_PARALLEL_WORKERS``, default CPU-derived).
        fusion_enabled: whether ``execute`` collapses eligible
            Filter→Project/Aggregate plan tails into one
            :class:`~repro.engine.plans.FusedPipelineOp` pass (``None``
            reads ``REPRO_FUSION``, default on). Fusion never changes
            rows, order, or work accounting — only how many intermediate
            relations get materialized.
    """

    def __init__(self, catalog, cost_model=None, mode="vectorized",
                 morsel_rows=None, n_workers=None, fusion_enabled=None):
        if mode not in EXECUTOR_MODES:
            raise ExecutionError(
                "executor mode must be one of %r, got %r"
                % (EXECUTOR_MODES, mode)
            )
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.mode = mode
        self.morsel_rows = (
            default_morsel_rows() if morsel_rows is None else int(morsel_rows)
        )
        if self.morsel_rows < 1:
            raise ExecutionError("morsel_rows must be >= 1")
        self.n_workers = (
            default_worker_count() if n_workers is None else int(n_workers)
        )
        self.fusion_enabled = (
            default_fusion_enabled()
            if fusion_enabled is None
            else bool(fusion_enabled)
        )
        self._pool = MorselPool(self.n_workers) if mode == "parallel" else None
        # Per-run accounting lives in a thread-local so concurrent
        # ``execute()`` calls on one shared Executor (the pipeline
        # thread-safety tests do this) never mix their work counters.
        self._tls = threading.local()

    # -- per-run state (thread-local) -----------------------------------
    @property
    def _work(self):
        return self._tls.work

    @_work.setter
    def _work(self, value):
        self._tls.work = value

    @property
    def _op_work(self):
        return self._tls.op_work

    @_op_work.setter
    def _op_work(self, value):
        self._tls.op_work = value

    @property
    def _telemetry(self):
        return self._tls.telemetry

    @_telemetry.setter
    def _telemetry(self, value):
        self._tls.telemetry = value

    @property
    def _child_seconds(self):
        return self._tls.child_seconds

    @_child_seconds.setter
    def _child_seconds(self, value):
        self._tls.child_seconds = value

    def execute(self, plan):
        """Run ``plan``; returns an :class:`ExecutionResult`.

        When :attr:`fusion_enabled` is set, the plan's tail is first run
        through :func:`~repro.engine.fusion.fuse_plan`. The rewrite is
        per-execution (the caller's plan object — and any plan cache
        holding it — is never mutated), and the fused pass charges work
        through the original operator nodes, so results and accounting
        are identical either way.
        """
        fused_ops = 0
        if self.fusion_enabled:
            plan, fused_ops = fuse_plan(plan)
        self._work = 0.0
        self._op_work = {}
        self._telemetry = ExecutionTelemetry(mode=self.mode)
        self._telemetry.fused_ops = fused_ops
        self._child_seconds = [0.0]
        start = time.perf_counter()
        relation = self._exec(plan)
        if self.mode != "row":
            relation = relation.to_relation()
        self._telemetry.total_seconds = time.perf_counter() - start
        return ExecutionResult(
            relation, self._work, dict(self._op_work), self._telemetry
        )

    # ------------------------------------------------------------------
    def _charge(self, node, amount):
        self._work += amount
        key = node.op_name
        self._op_work[key] = self._op_work.get(key, 0.0) + amount

    def _handler(self, node):
        name = type(node).__name__.lower()
        if self.mode == "row":
            return getattr(self, "_exec_" + name, None)
        if self.mode == "parallel":
            # Parallel handlers exist only for morsel-parallel operators;
            # everything else (sort/limit/scan shells) falls back to the
            # single-threaded vectorized implementation.
            handler = getattr(self, "_pexec_" + name, None)
            if handler is not None:
                return handler
        return getattr(self, "_vexec_" + name, None)

    def _exec(self, node):
        handler = self._handler(node)
        if handler is None:
            raise ExecutionError(
                "executor does not support %r in %s mode" % (node, self.mode)
            )
        self._child_seconds.append(0.0)
        t0 = time.perf_counter()
        out = handler(node)
        elapsed = time.perf_counter() - t0
        child_time = self._child_seconds.pop()
        self._child_seconds[-1] += elapsed
        self._telemetry.record(
            node.op_name, rows=len(out), seconds=elapsed - child_time
        )
        return out

    # -- morsel plumbing (parallel mode) --------------------------------
    def _morsels(self, n_rows):
        """This input's morsel ranges, or ``[]`` when not worth splitting.

        Only parallel mode splits, and only when the input spans at least
        two morsels — otherwise the caller uses the identical
        single-threaded vectorized path, so tiny batches pay no overhead.
        """
        if self.mode != "parallel" or n_rows < 2:
            return []
        slices = morsel_slices(n_rows, self.morsel_rows)
        return slices if len(slices) >= 2 else []

    def _pmap(self, node, fn, n_tasks):
        """Run ``fn(i)`` over morsel indices; results in morsel order."""
        results, worker_stats = self._pool.run(fn, n_tasks)
        self._telemetry.record_parallel(node.op_name, n_tasks, worker_stats)
        return results

    def _mask(self, node, relation, predicates):
        """Conjunction mask, morsel-parallel when the batch is large."""
        slices = self._morsels(len(relation))
        if not slices or not node.morsel_parallel:
            return _predicate_mask(relation, predicates)
        compiled = [
            (relation.arrays[relation.col_pos(p.table, p.column)],
             _OPS[p.op], p.value)
            for p in predicates
        ]

        def task(i):
            start, stop = slices[i]
            mask = None
            for arr, op, value in compiled:
                m = np.asarray(op(arr[start:stop], value))
                if m.ndim == 0:
                    m = np.full(stop - start, bool(m))
                m = m.astype(bool, copy=False)
                mask = m if mask is None else mask & m
            return mask

        return np.concatenate(self._pmap(node, task, len(slices)))

    # -- shared helpers --------------------------------------------------
    def _table_relation(self, table_name):
        table = self.catalog.table(table_name)
        columns = [(table.name, c.name) for c in table.schema.columns]
        return table, columns

    def _index_row_ids(self, node):
        """Resolve an IndexScan's probe to a sorted NumPy row-id array."""
        idx = None
        for cand in self.catalog.indexes(node.table):
            if cand.name == node.index_name:
                idx = cand
                break
        if idx is None:
            raise ExecutionError("index %r not found" % (node.index_name,))
        if idx.hypothetical:
            raise ExecutionError(
                "cannot execute a plan using hypothetical index %r" % (idx.name,)
            )
        pred = node.predicate
        structure = idx.structure
        if pred.op == "=":
            row_ids = structure.search(pred.value)
        elif idx.kind == "hash":
            raise ExecutionError("hash index supports only equality probes")
        elif pred.op == "<":
            row_ids = structure.range_search(high=pred.value, inclusive=(True, False))
        elif pred.op == "<=":
            row_ids = structure.range_search(high=pred.value, inclusive=(True, True))
        elif pred.op == ">":
            row_ids = structure.range_search(low=pred.value, inclusive=(False, True))
        elif pred.op == ">=":
            row_ids = structure.range_search(low=pred.value, inclusive=(True, True))
        else:
            raise ExecutionError("index scan cannot evaluate %r" % (pred,))
        return np.sort(np.asarray(row_ids, dtype=np.int64))

    @staticmethod
    def _eval_predicates(relation, predicates):
        if not predicates:
            return relation.rows
        compiled = [
            (relation.col_pos(p.table, p.column), _OPS[p.op], p.value)
            for p in predicates
        ]
        out = []
        for row in relation.rows:
            ok = True
            for pos, op, value in compiled:
                if not op(row[pos], value):
                    ok = False
                    break
            if ok:
                out.append(row)
        return out

    def _join_keys(self, node, left, right):
        left_index = left._index
        left_pos, right_pos = [], []
        for e in node.edges:
            if (e.left_table.lower(), e.left_column.lower()) in left_index:
                lp = left.col_pos(e.left_table, e.left_column)
                rp = right.col_pos(e.right_table, e.right_column)
            else:
                lp = left.col_pos(e.right_table, e.right_column)
                rp = right.col_pos(e.left_table, e.left_column)
            left_pos.append(lp)
            right_pos.append(rp)
        return left_pos, right_pos

    # ==================================================================
    # Row interpreter
    # ==================================================================
    # -- scans -----------------------------------------------------------
    def _exec_seqscan(self, node):
        table, columns = self._table_relation(node.table)
        self._charge(node, self.cost_model.seq_scan(table.n_rows))
        relation = Relation(columns, table.rows())
        rows = self._eval_predicates(relation, node.predicates)
        return Relation(columns, rows)

    def _exec_indexscan(self, node):
        row_ids = self._index_row_ids(node)
        table, columns = self._table_relation(node.table)
        self._charge(node, self.cost_model.index_scan(len(row_ids)))
        relation = Relation(columns, table.rows(row_ids))
        rows = self._eval_predicates(relation, node.residual)
        return Relation(columns, rows)

    def _exec_viewscan(self, node):
        view_table = node.view.table
        columns = []
        for name in view_table.schema.column_names:
            t, __, c = name.partition("__")
            columns.append((t, c))
        self._charge(node, self.cost_model.seq_scan(view_table.n_rows))
        relation = Relation(columns, view_table.rows())
        rows = self._eval_predicates(relation, node.residual)
        return Relation(columns, rows)

    def _exec_emptyresult(self, node):
        return Relation(node.columns, [])

    # -- joins -----------------------------------------------------------
    def _exec_hashjoin(self, node):
        left = self._exec(node.children[0])
        right = self._exec(node.children[1])
        left_pos, right_pos = self._join_keys(node, left, right)
        buckets = {}
        for row in right.rows:
            key = tuple(row[p] for p in right_pos)
            buckets.setdefault(key, []).append(row)
        out = []
        for row in left.rows:
            key = tuple(row[p] for p in left_pos)
            for match in buckets.get(key, ()):
                out.append(row + match)
        self._charge(
            node, self.cost_model.hash_join(len(left.rows), len(right.rows), len(out))
        )
        return Relation(left.columns + right.columns, out)

    def _exec_nestedloopjoin(self, node):
        left = self._exec(node.children[0])
        right = self._exec(node.children[1])
        left_pos, right_pos = self._join_keys(node, left, right)
        out = []
        for lrow in left.rows:
            lkey = tuple(lrow[p] for p in left_pos)
            for rrow in right.rows:
                if lkey == tuple(rrow[p] for p in right_pos):
                    out.append(lrow + rrow)
        self._charge(
            node,
            self.cost_model.nested_loop_join(
                len(left.rows), len(right.rows), len(out)
            ),
        )
        return Relation(left.columns + right.columns, out)

    def _exec_crossjoin(self, node):
        left = self._exec(node.children[0])
        right = self._exec(node.children[1])
        out = [l + r for l in left.rows for r in right.rows]
        self._charge(node, self.cost_model.cross_join(len(left.rows), len(right.rows)))
        return Relation(left.columns + right.columns, out)

    # -- shaping ----------------------------------------------------------
    def _exec_filter(self, node):
        child = self._exec(node.children[0])
        self._charge(node, self.cost_model.params["cpu_tuple_cost"] * len(child.rows))
        rows = self._eval_predicates(child, node.predicates)
        return Relation(child.columns, rows)

    def _exec_project(self, node):
        child = self._exec(node.children[0])
        positions = [child.col_pos(t, c) for t, c in node.columns]
        self._charge(node, self.cost_model.params["cpu_tuple_cost"] * len(child.rows))
        rows = [tuple(row[p] for p in positions) for row in child.rows]
        if node.distinct:
            seen = set()
            deduped = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            rows = deduped
        return Relation(node.columns, rows)

    def _exec_hashaggregate(self, node):
        child = self._exec(node.children[0])
        key_pos = [child.col_pos(t, c) for t, c in node.group_by]
        agg_pos = []
        for agg in node.aggregates:
            if agg.column is None:
                agg_pos.append(None)
            else:
                agg_pos.append(child.col_pos(agg.table, agg.column))
        groups = {}
        for row in child.rows:
            key = tuple(row[p] for p in key_pos)
            groups.setdefault(key, []).append(row)
        if not groups and not node.group_by:
            groups[()] = []
        out = []
        for key, rows in groups.items():
            values = []
            for agg, pos in zip(node.aggregates, agg_pos):
                if agg.func == "count":
                    values.append(len(rows))
                    continue
                col = [r[pos] for r in rows]
                if not col:
                    values.append(None)
                elif agg.func == "sum":
                    values.append(sum(col))
                elif agg.func == "avg":
                    values.append(sum(col) / len(col))
                elif agg.func == "min":
                    values.append(min(col))
                elif agg.func == "max":
                    values.append(max(col))
                else:
                    raise ExecutionError("unknown aggregate %r" % (agg.func,))
            out.append(key + tuple(values))
        self._charge(node, self.cost_model.aggregate(len(child.rows), len(out)))
        columns = list(node.group_by) + [
            ("agg", "%s_%d" % (a.func, i)) for i, a in enumerate(node.aggregates)
        ]
        return Relation(columns, out)

    def _exec_sort(self, node):
        child = self._exec(node.children[0])
        pos = child.col_pos(*node.key)
        self._charge(node, self.cost_model.sort(len(child.rows)))
        rows = sorted(child.rows, key=lambda r: r[pos], reverse=node.descending)
        return Relation(child.columns, rows)

    def _exec_limit(self, node):
        child = self._exec(node.children[0])
        return Relation(child.columns, child.rows[: node.n])

    # -- fused pipeline ---------------------------------------------------
    def _exec_fusedpipelineop(self, node):
        """Row-mode fused tail: one streaming pass over the source rows.

        The accumulators fold values in row order starting from the same
        identities the unfused interpreter's ``sum``/``min``/``max`` use,
        so the outputs are bit-identical, and work is charged through the
        absorbed operator nodes in the unfused charge order.
        """
        source = self._exec(node.children[0])
        n0 = len(source.rows)
        if node.filter_node is not None:
            self._charge(
                node.filter_node,
                self.cost_model.params["cpu_tuple_cost"] * n0,
            )
        compiled = [
            (source.col_pos(p.table, p.column), _OPS[p.op], p.value)
            for p in node.predicates
        ]

        def passes(row):
            for pos, op, value in compiled:
                if not op(row[pos], value):
                    return False
            return True

        limit = None if node.limit_node is None else node.limit_node.n
        if node.agg_node is not None:
            return self._row_fused_aggregate(node, source, passes, limit)
        return self._row_fused_project(node, source, passes, limit)

    def _row_fused_project(self, node, source, passes, limit):
        proj = node.project_node
        positions = [source.col_pos(t, c) for t, c in proj.columns]
        out = []
        seen = set() if proj.distinct else None
        n1 = 0
        for row in source.rows:
            if not passes(row):
                continue
            n1 += 1
            if limit is not None and len(out) >= limit:
                continue  # keep counting survivors for the Project charge
            projected = tuple(row[p] for p in positions)
            if seen is not None:
                if projected in seen:
                    continue
                seen.add(projected)
            out.append(projected)
        self._charge(proj, self.cost_model.params["cpu_tuple_cost"] * n1)
        return Relation(proj.columns, out)

    def _row_fused_aggregate(self, node, source, passes, limit):
        agg = node.agg_node
        key_pos = [source.col_pos(t, c) for t, c in agg.group_by]
        agg_pos = [
            None if a.column is None else source.col_pos(a.table, a.column)
            for a in agg.aggregates
        ]
        groups = {}
        n1 = 0
        for row in source.rows:
            if not passes(row):
                continue
            n1 += 1
            key = tuple(row[p] for p in key_pos)
            states = groups.get(key)
            if states is None:
                states = groups[key] = [
                    0 if a.func in ("count", "sum")
                    else ([0, 0] if a.func == "avg" else _UNSET)
                    for a in agg.aggregates
                ]
            for j, (a, pos) in enumerate(zip(agg.aggregates, agg_pos)):
                if a.func == "count":
                    states[j] += 1
                    continue
                value = row[pos]
                if a.func == "sum":
                    states[j] = states[j] + value
                elif a.func == "avg":
                    states[j][0] += value
                    states[j][1] += 1
                elif a.func == "min":
                    if states[j] is _UNSET or value < states[j]:
                        states[j] = value
                elif a.func == "max":
                    if states[j] is _UNSET or value > states[j]:
                        states[j] = value
                else:
                    raise ExecutionError(
                        "unknown aggregate %r" % (a.func,)
                    )
        out = []
        for key, states in groups.items():
            values = []
            for a, state in zip(agg.aggregates, states):
                if a.func == "avg":
                    values.append(state[0] / state[1])
                elif state is _UNSET:
                    values.append(None)
                else:
                    values.append(state)
            out.append(key + tuple(values))
        if not groups and not key_pos:
            # Global aggregate over zero surviving rows: one output row.
            out.append(tuple(
                0 if a.func == "count" else None for a in agg.aggregates
            ))
        self._charge(agg, self.cost_model.aggregate(n1, len(out)))
        columns = list(agg.group_by) + [
            ("agg", "%s_%d" % (a.func, i))
            for i, a in enumerate(agg.aggregates)
        ]
        if limit is not None:
            out = out[: limit]
        return Relation(columns, out)

    # ==================================================================
    # Vectorized executor
    # ==================================================================
    # -- scans -----------------------------------------------------------
    def _v_table_relation(self, table_name, row_ids=None):
        table = self.catalog.table(table_name)
        columns = [(table.name, c.name) for c in table.schema.columns]
        data = table.column_arrays(row_ids)
        arrays = [data[c.name.lower()] for c in table.schema.columns]
        n = table.n_rows if row_ids is None else len(row_ids)
        return table, ColumnarRelation(columns, arrays, n_rows=n)

    def _vexec_seqscan(self, node):
        table, rel = self._v_table_relation(node.table)
        self._charge(node, self.cost_model.seq_scan(table.n_rows))
        if node.predicates:
            rel = rel.take(self._mask(node, rel, node.predicates))
        return rel

    def _vexec_indexscan(self, node):
        row_ids = self._index_row_ids(node)
        __, rel = self._v_table_relation(node.table, row_ids)
        self._charge(node, self.cost_model.index_scan(len(row_ids)))
        if node.residual:
            rel = rel.take(self._mask(node, rel, node.residual))
        return rel

    def _vexec_viewscan(self, node):
        view_table = node.view.table
        columns = []
        arrays = []
        for name in view_table.schema.column_names:
            t, __, c = name.partition("__")
            columns.append((t, c))
            arrays.append(view_table.column_array(name))
        self._charge(node, self.cost_model.seq_scan(view_table.n_rows))
        rel = ColumnarRelation(columns, arrays, n_rows=view_table.n_rows)
        if node.residual:
            rel = rel.take(self._mask(node, rel, node.residual))
        return rel

    def _vexec_emptyresult(self, node):
        arrays = [np.empty(0, dtype=object) for __ in node.columns]
        return ColumnarRelation(node.columns, arrays, n_rows=0)

    # -- joins -----------------------------------------------------------
    def _v_join(self, node, charge):
        left = self._exec(node.children[0])
        right = self._exec(node.children[1])
        left_pos, right_pos = self._join_keys(node, left, right)
        il, ir = _join_indices(
            [left.arrays[p] for p in left_pos],
            [right.arrays[p] for p in right_pos],
        )
        out = ColumnarRelation(
            left.columns + right.columns,
            [a[il] for a in left.arrays] + [a[ir] for a in right.arrays],
            n_rows=len(il),
        )
        self._charge(node, charge(len(left), len(right), len(out)))
        return out

    def _vexec_hashjoin(self, node):
        return self._v_join(node, self.cost_model.hash_join)

    def _vexec_nestedloopjoin(self, node):
        # Same matches as the tuple interpreter; only the charge differs.
        return self._v_join(node, self.cost_model.nested_loop_join)

    def _vexec_crossjoin(self, node):
        left = self._exec(node.children[0])
        right = self._exec(node.children[1])
        il, ir = _cross_indices(len(left), len(right))
        out = ColumnarRelation(
            left.columns + right.columns,
            [a[il] for a in left.arrays] + [a[ir] for a in right.arrays],
            n_rows=len(il),
        )
        self._charge(node, self.cost_model.cross_join(len(left), len(right)))
        return out

    # -- shaping ----------------------------------------------------------
    def _vexec_filter(self, node):
        child = self._exec(node.children[0])
        self._charge(node, self.cost_model.params["cpu_tuple_cost"] * len(child))
        if node.predicates:
            child = child.take(self._mask(node, child, node.predicates))
        return child

    def _vexec_project(self, node):
        child = self._exec(node.children[0])
        positions = [child.col_pos(t, c) for t, c in node.columns]
        self._charge(node, self.cost_model.params["cpu_tuple_cost"] * len(child))
        arrays = [child.arrays[p] for p in positions]
        n = len(child)
        if node.distinct and n:
            codes = _factorize(arrays)
            __, first = np.unique(codes, return_index=True)
            keep = np.sort(first)  # first-occurrence order, like the dict dedup
            arrays = [a[keep] for a in arrays]
            n = len(keep)
        return ColumnarRelation(node.columns, arrays, n_rows=n)

    def _vexec_hashaggregate(self, node):
        return self._vagg_on(node, self._exec(node.children[0]))

    def _vagg_on(self, node, child):
        """Single-threaded grouped/global aggregation over ``child``."""
        n = len(child)
        key_pos = [child.col_pos(t, c) for t, c in node.group_by]
        agg_pos = [
            None if a.column is None else child.col_pos(a.table, a.column)
            for a in node.aggregates
        ]
        columns = list(node.group_by) + [
            ("agg", "%s_%d" % (a.func, i)) for i, a in enumerate(node.aggregates)
        ]
        if not key_pos:
            # Global aggregate: always exactly one output row, even on empty
            # input (count -> 0, other aggregates -> None).
            values = []
            for agg, pos in zip(node.aggregates, agg_pos):
                values.append(
                    self._global_aggregate(
                        agg, None if pos is None else child.arrays[pos], n
                    )
                )
            arrays = []
            for v in values:
                if v is None:
                    a = np.empty(1, dtype=object)
                    a[0] = None
                else:
                    a = np.asarray([v])
                arrays.append(a)
            self._charge(node, self.cost_model.aggregate(n, 1))
            return ColumnarRelation(columns, arrays, n_rows=1)
        if n == 0:
            self._charge(node, self.cost_model.aggregate(0, 0))
            arrays = [np.empty(0, dtype=object) for __ in columns]
            return ColumnarRelation(columns, arrays, n_rows=0)
        codes = _factorize([child.arrays[p] for p in key_pos])
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        seg_starts = np.flatnonzero(
            np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
        )
        counts = np.diff(np.r_[seg_starts, n])
        first_rows = order[seg_starts]  # stable sort -> global first occurrence
        group_rank = np.argsort(first_rows, kind="stable")  # appearance order
        key_arrays = [
            child.arrays[p][first_rows[group_rank]] for p in key_pos
        ]
        agg_arrays = []
        for agg, pos in zip(node.aggregates, agg_pos):
            if agg.func == "count":
                vals = counts
            else:
                vals = _segment_reduce(
                    agg.func, child.arrays[pos][order], seg_starts, counts
                )
            agg_arrays.append(np.asarray(vals)[group_rank])
        n_groups = len(counts)
        self._charge(node, self.cost_model.aggregate(n, n_groups))
        return ColumnarRelation(columns, key_arrays + agg_arrays, n_rows=n_groups)

    @staticmethod
    def _global_aggregate(agg, arr, n):
        if agg.func == "count":
            return n
        if n == 0:
            return None
        if arr.dtype == object:
            col = arr.tolist()
            if agg.func == "sum":
                return sum(col)
            if agg.func == "avg":
                return sum(col) / len(col)
            if agg.func == "min":
                return min(col)
            if agg.func == "max":
                return max(col)
        else:
            if agg.func == "sum":
                return arr.sum()
            if agg.func == "avg":
                return arr.sum() / n
            if agg.func == "min":
                return arr.min()
            if agg.func == "max":
                return arr.max()
        raise ExecutionError("unknown aggregate %r" % (agg.func,))

    def _vexec_sort(self, node):
        child = self._exec(node.children[0])
        pos = child.col_pos(*node.key)
        self._charge(node, self.cost_model.sort(len(child)))
        if len(child) == 0:
            return child
        idx = _stable_sort_indices(child.arrays[pos], node.descending)
        return child.take(idx)

    def _vexec_limit(self, node):
        child = self._exec(node.children[0])
        if node.n >= len(child):
            return child
        return ColumnarRelation(
            child.columns, [a[: node.n] for a in child.arrays], n_rows=node.n
        )

    # -- fused pipeline ---------------------------------------------------
    def _vexec_fusedpipelineop(self, node):
        return self._fused_tail(node, self._exec(node.children[0]))

    def _fused_tail(self, node, source):
        """Columnar fused tail: mask once, gather only what the tail reads.

        Work is charged through the absorbed operator nodes with the same
        cardinalities and in the same order as the unfused interpreters,
        so ``work``/``operator_work`` are bit-identical with fusion on or
        off. In parallel mode the mask still evaluates morsel-parallel
        via ``_mask`` (``FusedPipelineOp`` is morsel-parallel).
        """
        n0 = len(source)
        if node.filter_node is not None:
            self._charge(
                node.filter_node,
                self.cost_model.params["cpu_tuple_cost"] * n0,
            )
        if node.predicates:
            keep = np.flatnonzero(self._mask(node, source, node.predicates))
            n1 = len(keep)
        else:
            keep, n1 = None, n0
        if node.agg_node is not None:
            return self._fused_aggregate(node, source, keep, n1)
        return self._fused_project(node, source, keep, n1)

    def _fused_aggregate(self, node, source, keep, n1):
        agg = node.agg_node
        labels, positions = _agg_input_columns(agg, source)
        arrays = [
            source.arrays[p] if keep is None else source.arrays[p][keep]
            for p in positions
        ]
        sub = ColumnarRelation(labels, arrays, n_rows=n1)
        return self._fused_limit(node, self._vagg_on(agg, sub))

    def _fused_project(self, node, source, keep, n1):
        proj = node.project_node
        positions = [source.col_pos(t, c) for t, c in proj.columns]
        self._charge(proj, self.cost_model.params["cpu_tuple_cost"] * n1)
        if proj.distinct:
            arrays = [
                source.arrays[p] if keep is None else source.arrays[p][keep]
                for p in positions
            ]
            n = n1
            if n:
                codes = _factorize(arrays)
                __, first = np.unique(codes, return_index=True)
                firsts = np.sort(first)  # first-occurrence order
                arrays = [a[firsts] for a in arrays]
                n = len(firsts)
            return self._fused_limit(
                node, ColumnarRelation(proj.columns, arrays, n_rows=n)
            )
        if keep is None:
            out = ColumnarRelation(
                proj.columns,
                [source.arrays[p] for p in positions],
                n_rows=n1,
            )
            return self._fused_limit(node, out)
        limit = None if node.limit_node is None else node.limit_node.n
        if limit is not None and limit < n1:
            keep = keep[:limit]  # rows past the limit are never gathered
        arrays = [source.arrays[p][keep] for p in positions]
        return ColumnarRelation(proj.columns, arrays, n_rows=len(keep))

    def _fused_limit(self, node, rel):
        ln = node.limit_node
        if ln is None or ln.n >= len(rel):
            return rel
        return ColumnarRelation(
            rel.columns, [a[: ln.n] for a in rel.arrays], n_rows=ln.n
        )

    # ==================================================================
    # Morsel-driven parallel executor
    # ==================================================================
    # Scans, filters, and view scans reuse the vectorized handlers — their
    # predicate masks already go through ``_mask``, which is morsel-parallel
    # in this mode. Sort/limit deliberately have no parallel handler: they
    # are the single-threaded merge phase that pins down output order.
    def _p_join(self, node, charge):
        left = self._exec(node.children[0])
        right = self._exec(node.children[1])
        left_pos, right_pos = self._join_keys(node, left, right)
        left_cols = [left.arrays[p] for p in left_pos]
        right_cols = [right.arrays[p] for p in right_pos]
        nl, nr = len(left), len(right)
        slices = self._morsels(nl) if nr else []
        if not slices:
            il, ir = _join_indices(left_cols, right_cols)
        else:
            # Build once (shared key codes + sorted build side), probe
            # per morsel; morsel-order concatenation reproduces the
            # monolithic probe's left-major output order exactly.
            lc, rc_sorted, order = _join_build(left_cols, right_cols)

            def task(i):
                start, stop = slices[i]
                return _join_probe(lc[start:stop], rc_sorted, order,
                                   base=start)

            parts = self._pmap(node, task, len(slices))
            il = np.concatenate([p[0] for p in parts])
            ir = np.concatenate([p[1] for p in parts])
        out = ColumnarRelation(
            left.columns + right.columns,
            [a[il] for a in left.arrays] + [a[ir] for a in right.arrays],
            n_rows=len(il),
        )
        self._charge(node, charge(nl, nr, len(out)))
        return out

    def _pexec_hashjoin(self, node):
        return self._p_join(node, self.cost_model.hash_join)

    def _pexec_nestedloopjoin(self, node):
        return self._p_join(node, self.cost_model.nested_loop_join)

    def _pexec_project(self, node):
        child = self._exec(node.children[0])
        positions = [child.col_pos(t, c) for t, c in node.columns]
        self._charge(node, self.cost_model.params["cpu_tuple_cost"] * len(child))
        arrays = [child.arrays[p] for p in positions]
        n = len(child)
        slices = self._morsels(n) if node.distinct else []
        if node.distinct and not slices and n:
            codes = _factorize(arrays)
            __, first = np.unique(codes, return_index=True)
            keep = np.sort(first)
            arrays = [a[keep] for a in arrays]
            n = len(keep)
        elif slices:
            # Parallel partial dedup: each morsel keeps its local first
            # occurrences; the single-threaded merge then walks the
            # surviving candidates in global row order, so the final keep
            # set is the global first occurrence per key — identical to
            # the sequential dedup.
            def local_firsts(i):
                start, stop = slices[i]
                codes = _factorize([a[start:stop] for a in arrays])
                __, first = np.unique(codes, return_index=True)
                return np.sort(first) + start

            candidates = np.concatenate(
                self._pmap(node, local_firsts, len(slices))
            )
            seen = set()
            keep = []
            candidate_rows = zip(
                *(a[candidates].tolist() for a in arrays)
            )
            for idx, key in zip(candidates.tolist(), candidate_rows):
                if key not in seen:
                    seen.add(key)
                    keep.append(idx)
            keep = np.asarray(keep, dtype=np.int64)
            arrays = [a[keep] for a in arrays]
            n = len(keep)
        return ColumnarRelation(node.columns, arrays, n_rows=n)

    def _pexec_hashaggregate(self, node):
        child = self._exec(node.children[0])
        n = len(child)
        key_pos = [child.col_pos(t, c) for t, c in node.group_by]
        slices = self._morsels(n) if key_pos else []
        if not slices:
            # Global aggregates (always one output row) and sub-morsel
            # inputs take the single-threaded path.
            return self._vagg_on(node, child)
        key_cols = [child.arrays[p] for p in key_pos]
        agg_cols = [
            None if a.column is None
            else child.arrays[child.col_pos(a.table, a.column)]
            for a in node.aggregates
        ]

        def partial(i):
            start, stop = slices[i]
            return _agg_partial(
                node.aggregates,
                [k[start:stop] for k in key_cols],
                [None if c is None else c[start:stop] for c in agg_cols],
            )

        parts = self._pmap(node, partial, len(slices))
        return self._agg_merge(node, parts, n)

    def _agg_merge(self, node, parts, n_input):
        """Merge per-morsel partial aggregates, in morsel order.

        The first morsel that contains a key defines its output position,
        which equals the sequential first-appearance order. AVG partials
        carry ``(sum, count)`` and divide once here. The aggregate charge
        uses ``n_input`` — the operator's logical input cardinality — so
        accounting is identical to the single-threaded paths.
        """
        group_index = {}
        merged_keys = []
        merged = [[] for __ in node.aggregates]
        for group_keys, states in parts:
            for local, key in enumerate(group_keys):
                g = group_index.get(key)
                if g is None:
                    g = group_index[key] = len(merged_keys)
                    merged_keys.append(key)
                    for state, agg_states in zip(states, merged):
                        agg_states.append(state[local])
                    continue
                for agg, state, agg_states in zip(
                    node.aggregates, states, merged
                ):
                    if agg.func in ("count", "sum"):
                        agg_states[g] = agg_states[g] + state[local]
                    elif agg.func == "min":
                        agg_states[g] = min(agg_states[g], state[local])
                    elif agg.func == "max":
                        agg_states[g] = max(agg_states[g], state[local])
                    else:  # avg carries (sum, count) partials
                        s, c = agg_states[g]
                        ds, dc = state[local]
                        agg_states[g] = (s + ds, c + dc)
        n_groups = len(merged_keys)
        key_arrays = [
            np.asarray(col)
            for col in ([list(c) for c in zip(*merged_keys)] or
                        [[] for __ in node.group_by])
        ]
        agg_arrays = []
        for agg, agg_states in zip(node.aggregates, merged):
            if agg.func == "avg":
                agg_states = [s / c for s, c in agg_states]
            agg_arrays.append(np.asarray(agg_states))
        columns = list(node.group_by) + [
            ("agg", "%s_%d" % (a.func, i)) for i, a in enumerate(node.aggregates)
        ]
        self._charge(node, self.cost_model.aggregate(n_input, n_groups))
        return ColumnarRelation(columns, key_arrays + agg_arrays,
                                n_rows=n_groups)

    def _pexec_fusedpipelineop(self, node):
        source = self._exec(node.children[0])
        agg = node.agg_node
        if agg is not None and agg.group_by:
            slices = self._morsels(len(source))
            if slices:
                return self._pfused_aggregate(node, source, slices)
        # Non-grouped tails: the mask still evaluates morsel-parallel via
        # ``_mask``; gather/dedup/limit stay single-threaded, matching
        # the unfused operators' merge phases.
        return self._fused_tail(node, source)

    def _pfused_aggregate(self, node, source, slices):
        """Grouped fused tail, morsel-parallel: mask + partial per morsel.

        Each morsel masks its slice of the *source* and partially
        aggregates the survivors in one task — the filtered relation is
        never materialized, not even per-morsel. The merge is the same
        morsel-order merge as unfused parallel aggregation (including the
        (sum, count) AVG carry); group order is the global
        first-appearance order among surviving rows, so rows and order
        match the other modes.
        """
        agg = node.agg_node
        if node.filter_node is not None:
            self._charge(
                node.filter_node,
                self.cost_model.params["cpu_tuple_cost"] * len(source),
            )
        key_cols = [
            source.arrays[source.col_pos(t, c)] for t, c in agg.group_by
        ]
        agg_cols = [
            None if a.column is None
            else source.arrays[source.col_pos(a.table, a.column)]
            for a in agg.aggregates
        ]
        compiled = [
            (source.arrays[source.col_pos(p.table, p.column)],
             _OPS[p.op], p.value)
            for p in node.predicates
        ]

        def task(i):
            start, stop = slices[i]
            if compiled:
                mask = None
                for arr, op, value in compiled:
                    m = np.asarray(op(arr[start:stop], value))
                    if m.ndim == 0:
                        m = np.full(stop - start, bool(m))
                    m = m.astype(bool, copy=False)
                    mask = m if mask is None else mask & m
                keep = np.flatnonzero(mask) + start
                keys = [k[keep] for k in key_cols]
                vals = [None if c is None else c[keep] for c in agg_cols]
                n_local = len(keep)
            else:
                keys = [k[start:stop] for k in key_cols]
                vals = [
                    None if c is None else c[start:stop] for c in agg_cols
                ]
                n_local = stop - start
            return n_local, _agg_partial(agg.aggregates, keys, vals)

        results = self._pmap(node, task, len(slices))
        n1 = sum(r[0] for r in results)
        out = self._agg_merge(agg, [r[1] for r in results], n1)
        return self._fused_limit(node, out)


def count_join_rows(catalog, query, tables):
    """True cardinality of the filtered join over ``tables`` (oracle helper).

    Used by :class:`~repro.engine.optimizer.cardinality.TrueCardinalityEstimator`
    and by tests. Joins columnar batches with the vectorized kernels in a
    connectivity-respecting order and does not charge any work accounting.
    """
    wanted = {x.lower() for x in tables}
    names = [t for t in query.tables if t.lower() in wanted]
    if not names:
        return 0

    def filtered(table_name):
        tbl = catalog.table(table_name)
        columns = [(tbl.name, c.name) for c in tbl.schema.columns]
        arrays = [tbl.column_array(c.name) for c in tbl.schema.columns]
        rel = ColumnarRelation(columns, arrays, n_rows=tbl.n_rows)
        preds = query.predicates_on(table_name)
        if preds:
            rel = rel.take(_predicate_mask(rel, preds))
        return rel

    current = filtered(names[0])
    joined = [names[0]]
    remaining = names[1:]
    while remaining:
        nxt = None
        for t in remaining:
            if query.edges_between(joined, t):
                nxt = t
                break
        if nxt is None:
            nxt = remaining[0]
        rel_t = filtered(nxt)
        edges = query.edges_between(joined, nxt)
        if edges:
            current_index = current._index
            left_pos, right_pos = [], []
            for e in edges:
                if (e.left_table.lower(), e.left_column.lower()) in current_index:
                    left_pos.append(current.col_pos(e.left_table, e.left_column))
                    right_pos.append(rel_t.col_pos(e.right_table, e.right_column))
                else:
                    left_pos.append(current.col_pos(e.right_table, e.right_column))
                    right_pos.append(rel_t.col_pos(e.left_table, e.left_column))
            il, ir = _join_indices(
                [current.arrays[p] for p in left_pos],
                [rel_t.arrays[p] for p in right_pos],
            )
        else:
            il, ir = _cross_indices(len(current), len(rel_t))
        current = ColumnarRelation(
            current.columns + rel_t.columns,
            [a[il] for a in current.arrays] + [a[ir] for a in rel_t.arrays],
            n_rows=len(il),
        )
        joined.append(nxt)
        remaining.remove(nxt)
    return len(current)
