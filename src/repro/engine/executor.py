"""Plan executor: a thin driver over the physical-operator layer.

Interprets a physical plan over the catalog, producing rows *and* an exact
work measurement. Work is computed with the same formulas as the analytic
cost model but on the **actual** cardinalities observed at run time, so:

* measured work == cost-model output under a perfect estimator, and
* the gap between a plan's ``est_cost`` and its measured work is exactly
  the damage done by cardinality misestimation — the quantity the learned
  optimizer experiments report.

The operator implementations live in :mod:`repro.engine.operators`, one
module per operator family, each exposing up to three evaluation backends
behind the uniform :class:`~repro.engine.operators.PhysicalOperator`
interface. The executor resolves ``plan node → operator → backend`` and
supplies the evaluation context: catalog, cost model, work accounting,
per-node actual-row counters, and the morsel-parallel plumbing.

Three execution modes share the plan contract and the work accounting:

* ``"vectorized"`` (the default) keeps every intermediate result columnar —
  NumPy arrays end-to-end, via each operator's ``vectorized`` backend.
* ``"parallel"`` is the vectorized engine with morsel-driven parallelism:
  operators' ``morsel`` backends split large batches into fixed-size
  morsels (:mod:`repro.engine.morsels`) that a work-stealing thread pool
  evaluates concurrently for filters, hash-join probes, partial
  aggregation, and DISTINCT pre-deduplication; sort/limit/distinct-merge
  stay single-threaded so output order is deterministic. Per-morsel
  results are merged **in morsel order**, so scheduling never leaks into
  results.
* ``"row"`` is the original tuple-at-a-time interpreter, kept for
  differential testing and as an executable specification.

The modes are *observationally identical*: same rows, in the same
order, the same ``work``/``operator_work`` numbers — work is charged from
observed cardinalities, never from implementation details, which is what
keeps "cost gap == misestimation damage" true in every mode — and the
same per-node ``actual_rows`` counters, which feed the EXPLAIN ANALYZE
view and the optimizer's cardinality-feedback loop.

Results are fully materialized (these are analytics-scale experiments, not
a streaming engine).
"""

import threading
import time

import numpy as np

from repro.common import ExecutionError
from repro.engine.config import (  # noqa: F401 - EXECUTOR_MODES re-exported
    EXECUTOR_MODES,
    default_fusion_enabled,
    default_zone_map_pruning,
)
from repro.engine.fusion import fuse_plan
from repro.engine.morsels import (
    MorselPool,
    default_morsel_rows,
    default_worker_count,
    morsel_slices,
)
from repro.engine.operators import (  # noqa: F401 - relations re-exported
    OPS,
    ColumnarRelation,
    Relation,
    operator_for,
)
from repro.engine.operators.kernels import (
    cross_indices,
    join_indices,
    predicate_mask,
)
from repro.engine.optimizer.cost import CostModel
from repro.engine.telemetry import ExecutionTelemetry, q_error

#: Executor mode → the PhysicalOperator backend it dispatches to.
_MODE_BACKENDS = {"row": "row", "vectorized": "vectorized",
                  "parallel": "morsel"}


class ExecutionResult:
    """Executor output: the result relation plus the work accounting."""

    def __init__(self, relation, work, operator_work, telemetry=None):
        self.relation = relation
        self.work = work
        self.operator_work = operator_work
        self._telemetry = telemetry

    @property
    def telemetry(self):
        """Per-run :class:`ExecutionTelemetry` (the supported accessor —
        callers should read it here rather than reaching into the
        executor's per-run state)."""
        return self._telemetry

    @property
    def rows(self):
        """Result rows (list of tuples)."""
        return self.relation.rows

    @property
    def columns(self):
        """Result column labels."""
        return self.relation.columns

    def __repr__(self):
        return "ExecutionResult(rows=%d, work=%.1f)" % (len(self.rows), self.work)


class Executor:
    """Executes physical plans against a catalog.

    The executor doubles as the *evaluation context* handed to every
    :class:`~repro.engine.operators.PhysicalOperator` backend: operators
    call :meth:`run` to evaluate children, :meth:`charge` for work
    accounting, :meth:`count` for actual-row attribution, and
    :meth:`mask`/:meth:`morsels`/:meth:`pmap` for morsel parallelism.

    Args:
        catalog: the :class:`~repro.engine.catalog.Catalog`.
        cost_model: the :class:`CostModel` whose constants weight the work
            accounting (pass the knob-derived model so knob settings change
            measured work, closing the tuning feedback loop).
        mode: ``"vectorized"`` (default, columnar NumPy batches),
            ``"parallel"`` (morsel-driven vectorized execution on a
            work-stealing thread pool), or ``"row"`` (tuple-at-a-time
            interpreter). All modes return the same rows in the same order
            and charge identical work.
        morsel_rows: rows per morsel in parallel mode (``None`` reads
            ``REPRO_MORSEL_SIZE`` via :mod:`repro.engine.config`, default
            16384). Inputs smaller than two morsels run on the
            single-threaded vectorized path.
        n_workers: worker count in parallel mode (``None`` reads
            ``REPRO_PARALLEL_WORKERS``, default CPU-derived).
        fusion_enabled: whether ``execute`` collapses eligible
            Filter→Project/Aggregate plan tails into one
            :class:`~repro.engine.plans.FusedPipelineOp` pass (``None``
            reads ``REPRO_FUSION``, default on). Fusion never changes
            rows, order, or work accounting — only how many intermediate
            relations get materialized.
        pruning_enabled: whether scans may skip whole column segments
            whose zone maps prove a pushed-down predicate matches no
            (or every) row (``None`` reads ``REPRO_ZONE_MAP_PRUNING``,
            default on). Pruning never changes rows, order, or work —
            only wall time and the ``segments_pruned``/``bytes_decoded``
            telemetry.
    """

    def __init__(self, catalog, cost_model=None, mode="vectorized",
                 morsel_rows=None, n_workers=None, fusion_enabled=None,
                 pruning_enabled=None):
        if mode not in EXECUTOR_MODES:
            raise ExecutionError(
                "executor mode must be one of %r, got %r"
                % (EXECUTOR_MODES, mode)
            )
        self._catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.mode = mode
        self._backend = _MODE_BACKENDS[mode]
        self.morsel_rows = (
            default_morsel_rows() if morsel_rows is None else int(morsel_rows)
        )
        if self.morsel_rows < 1:
            raise ExecutionError("morsel_rows must be >= 1")
        self.n_workers = (
            default_worker_count() if n_workers is None else int(n_workers)
        )
        self.fusion_enabled = (
            default_fusion_enabled()
            if fusion_enabled is None
            else bool(fusion_enabled)
        )
        self.pruning_enabled = (
            default_zone_map_pruning()
            if pruning_enabled is None
            else bool(pruning_enabled)
        )
        self._pool = MorselPool(self.n_workers) if mode == "parallel" else None
        # Per-run accounting lives in a thread-local so concurrent
        # ``execute()`` calls on one shared Executor (the pipeline
        # thread-safety tests do this) never mix their work counters.
        self._tls = threading.local()

    # -- per-run state (thread-local) -----------------------------------
    @property
    def catalog(self):
        """The catalog operators read from — per-run overridable.

        Normally the live :class:`~repro.engine.catalog.Catalog` the
        executor was built with; during an ``execute(plan, catalog=...)``
        run it resolves (per thread) to the caller-supplied
        :class:`~repro.engine.catalog.CatalogSnapshot`, which is how
        snapshot-pinned reads execute through the shared operator layer.
        """
        override = getattr(self._tls, "catalog", None)
        return self._catalog if override is None else override

    @catalog.setter
    def catalog(self, value):
        self._catalog = value

    @property
    def _work(self):
        return self._tls.work

    @_work.setter
    def _work(self, value):
        self._tls.work = value

    @property
    def _op_work(self):
        return self._tls.op_work

    @_op_work.setter
    def _op_work(self, value):
        self._tls.op_work = value

    @property
    def _telemetry(self):
        return self._tls.telemetry

    @_telemetry.setter
    def _telemetry(self, value):
        self._tls.telemetry = value

    @property
    def _child_seconds(self):
        return self._tls.child_seconds

    @_child_seconds.setter
    def _child_seconds(self, value):
        self._tls.child_seconds = value

    @property
    def _node_rows(self):
        return self._tls.node_rows

    @_node_rows.setter
    def _node_rows(self, value):
        self._tls.node_rows = value

    def execute(self, plan, catalog=None):
        """Run ``plan``; returns an :class:`ExecutionResult`.

        When :attr:`fusion_enabled` is set, the plan's tail is first run
        through :func:`~repro.engine.fusion.fuse_plan`. The rewrite is
        per-execution (the caller's plan object — and any plan cache
        holding it — is never mutated), and the fused pass charges work
        through the original operator nodes, so results and accounting
        are identical either way.

        ``catalog`` pins this one run to a different read surface —
        typically a :class:`~repro.engine.catalog.CatalogSnapshot` — via
        a thread-local override of :attr:`catalog`, so concurrent runs on
        a shared executor can mix live and snapshot reads freely.

        After the run, per-node actual output cardinalities (attributed
        to the *original* plan's nodes even under fusion) are folded into
        the telemetry as ``node_stats`` — the est-vs-actual view behind
        EXPLAIN ANALYZE and the optimizer's cardinality feedback — along
        with the version vector of the catalog state the run read.
        """
        original = plan
        fused_ops = 0
        if self.fusion_enabled:
            plan, fused_ops = fuse_plan(plan)
        self._tls.catalog = catalog
        try:
            self._work = 0.0
            self._op_work = {}
            self._telemetry = ExecutionTelemetry(mode=self.mode)
            self._telemetry.fused_ops = fused_ops
            self._child_seconds = [0.0]
            self._node_rows = {}
            start = time.perf_counter()
            relation = self.run(plan)
            if self.mode != "row":
                relation = relation.to_relation()
            self._telemetry.total_seconds = time.perf_counter() - start
            self._telemetry.total_work = self._work
            self._telemetry.set_node_stats(self._collect_node_stats(original))
            version_vector = getattr(self.catalog, "version_vector", None)
            if version_vector is not None:
                self._telemetry.catalog_versions = dict(version_vector())
            return ExecutionResult(
                relation, self._work, dict(self._op_work), self._telemetry
            )
        finally:
            self._tls.catalog = None

    def _collect_node_stats(self, original):
        """Per-node ``{op, est_rows, actual_rows, q_error}`` in preorder."""
        rows = self._node_rows
        stats = []
        for node in original.walk():
            actual = rows.get(id(node))
            est = node.est_rows
            stats.append({
                "op": node.op_name,
                "est_rows": est,
                "actual_rows": actual,
                "q_error": q_error(est, actual),
            })
        return stats

    # -- evaluation context (called by operator backends) ----------------
    def run(self, node):
        """Evaluate ``node`` via its registered operator's backend.

        Also times the node (self-time, excluding children) and
        auto-records its actual output cardinality; fused pipelines then
        override the counters of the operators they absorbed via
        :meth:`count`, so every original plan node ends up with the
        cardinality its unfused twin would have produced.
        """
        op = operator_for(node)
        method = getattr(op, self._backend)
        self._child_seconds.append(0.0)
        t0 = time.perf_counter()
        out = method(self, node)
        elapsed = time.perf_counter() - t0
        child_time = self._child_seconds.pop()
        self._child_seconds[-1] += elapsed
        self._telemetry.record(
            node.op_name, rows=len(out), seconds=elapsed - child_time
        )
        self.count(node, len(out))
        return out

    def charge(self, node, amount):
        """Charge ``amount`` of work to ``node``'s operator family."""
        self._work += amount
        key = node.op_name
        self._op_work[key] = self._op_work.get(key, 0.0) + amount

    def count(self, node, n):
        """Record ``node``'s actual output cardinality (assignment, not
        accumulation — later, more specific attributions win).

        Resolves the node's ``origin`` back-reference first, so counts
        against the bare scan copies :func:`~repro.engine.fusion.fuse_plan`
        creates land on the original plan's nodes.
        """
        origin = getattr(node, "origin", node)
        self._node_rows[id(origin)] = int(n)

    def record_leaf(self, node, n):
        """Book-keep a leaf a fused pipeline evaluated without ``run``.

        The late-materializing fused path consumes a scan's segments
        directly instead of recursing into :meth:`run`, so it records the
        scan's telemetry row count (self-time is folded into the fused
        operator) and cardinality here — exactly what ``run`` would have
        recorded for the same output size.
        """
        self._telemetry.record(node.op_name, rows=int(n), seconds=0.0)
        self.count(node, n)

    def record_segments(self, total, pruned, bytes_decoded):
        """Accumulate one scan's segment-pruning counters."""
        self._telemetry.record_segments(total, pruned, bytes_decoded)

    # -- morsel plumbing (parallel mode) --------------------------------
    def morsels(self, n_rows):
        """This input's morsel ranges, or ``[]`` when not worth splitting.

        Only parallel mode splits, and only when the input spans at least
        two morsels — otherwise the caller uses the identical
        single-threaded vectorized path, so tiny batches pay no overhead.
        """
        if self.mode != "parallel" or n_rows < 2:
            return []
        slices = morsel_slices(n_rows, self.morsel_rows)
        return slices if len(slices) >= 2 else []

    def pmap(self, node, fn, n_tasks):
        """Run ``fn(i)`` over morsel indices; results in morsel order."""
        results, worker_stats = self._pool.run(fn, n_tasks)
        self._telemetry.record_parallel(node.op_name, n_tasks, worker_stats)
        return results

    def mask(self, node, relation, predicates):
        """Conjunction mask, morsel-parallel when the batch is large."""
        slices = self.morsels(len(relation))
        if not slices or not node.morsel_parallel:
            return predicate_mask(relation, predicates)
        compiled = [
            (relation.arrays[relation.col_pos(p.table, p.column)],
             OPS[p.op], p.value)
            for p in predicates
        ]

        def task(i):
            start, stop = slices[i]
            mask = None
            for arr, op, value in compiled:
                m = np.asarray(op(arr[start:stop], value))
                if m.ndim == 0:
                    m = np.full(stop - start, bool(m))
                m = m.astype(bool, copy=False)
                mask = m if mask is None else mask & m
            return mask

        return np.concatenate(self.pmap(node, task, len(slices)))


def count_join_rows(catalog, query, tables):
    """True cardinality of the filtered join over ``tables`` (oracle helper).

    Used by :class:`~repro.engine.optimizer.cardinality.TrueCardinalityEstimator`
    and by tests. Joins columnar batches with the vectorized kernels in a
    connectivity-respecting order and does not charge any work accounting.
    """
    wanted = {x.lower() for x in tables}
    names = [t for t in query.tables if t.lower() in wanted]
    if not names:
        return 0

    def filtered(table_name):
        tbl = catalog.table(table_name)
        columns = [(tbl.name, c.name) for c in tbl.schema.columns]
        arrays = [tbl.column_array(c.name) for c in tbl.schema.columns]
        rel = ColumnarRelation(columns, arrays, n_rows=tbl.n_rows)
        preds = query.predicates_on(table_name)
        if preds:
            rel = rel.take(predicate_mask(rel, preds))
        return rel

    current = filtered(names[0])
    joined = [names[0]]
    remaining = names[1:]
    while remaining:
        nxt = None
        for t in remaining:
            if query.edges_between(joined, t):
                nxt = t
                break
        if nxt is None:
            nxt = remaining[0]
        rel_t = filtered(nxt)
        edges = query.edges_between(joined, nxt)
        if edges:
            current_index = current._index
            left_pos, right_pos = [], []
            for e in edges:
                if (e.left_table.lower(), e.left_column.lower()) in current_index:
                    left_pos.append(current.col_pos(e.left_table, e.left_column))
                    right_pos.append(rel_t.col_pos(e.right_table, e.right_column))
                else:
                    left_pos.append(current.col_pos(e.right_table, e.right_column))
                    right_pos.append(rel_t.col_pos(e.left_table, e.left_column))
            il, ir = join_indices(
                [current.arrays[p] for p in left_pos],
                [rel_t.arrays[p] for p in right_pos],
            )
        else:
            il, ir = cross_indices(len(current), len(rel_t))
        current = ColumnarRelation(
            current.columns + rel_t.columns,
            [a[il] for a in current.arrays] + [a[ir] for a in rel_t.arrays],
            n_rows=len(il),
        )
        joined.append(nxt)
        remaining.remove(nxt)
    return len(current)
