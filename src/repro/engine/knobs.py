"""Knob registry and performance-response simulator.

Real knob tuners (CDBTune [87], QTune [42], OtterTune [3]) observe only
``knob vector -> performance`` on a live server. This module substitutes a
seeded nonconvex response surface with the properties that make tuning
hard and interesting:

* per-knob optima at workload-dependent positions (no single default wins),
* pairwise knob interactions (work_mem x parallelism, buffers x cache),
* diminishing returns and cliffs (too many connections collapses throughput),
* workload sensitivity (an OLTP-optimal config is OLAP-suboptimal).

The surface is deterministic given the seed, so experiments are exactly
reproducible, and an optional noise term models run-to-run variance.
"""

import numpy as np

from repro.common import ReproError, ensure_rng


class KnobSpec:
    """Definition of one tunable knob (continuous, on a normalized scale).

    Attributes:
        name: knob name.
        low, high: raw value range.
        default: raw default value.
        log_scale: whether the raw scale is logarithmic (memory sizes).
    """

    def __init__(self, name, low, high, default, log_scale=False):
        if not low < high:
            raise ReproError("knob %r needs low < high" % (name,))
        if not low <= default <= high:
            raise ReproError("knob %r default outside range" % (name,))
        self.name = name
        self.low = float(low)
        self.high = float(high)
        self.default = float(default)
        self.log_scale = log_scale

    def normalize(self, raw):
        """Map a raw value into [0, 1]."""
        raw = min(max(raw, self.low), self.high)
        if self.log_scale:
            lo, hi = np.log(self.low), np.log(self.high)
            return float((np.log(raw) - lo) / (hi - lo))
        return float((raw - self.low) / (self.high - self.low))

    def denormalize(self, unit):
        """Map [0, 1] back to a raw value."""
        unit = min(max(float(unit), 0.0), 1.0)
        if self.log_scale:
            lo, hi = np.log(self.low), np.log(self.high)
            return float(np.exp(lo + unit * (hi - lo)))
        return self.low + unit * (self.high - self.low)

    def __repr__(self):
        return "KnobSpec(%r, [%g, %g], default=%g)" % (
            self.name, self.low, self.high, self.default
        )


def default_knobs():
    """The 8-knob registry used by the E1 experiment (PostgreSQL-flavored)."""
    return [
        KnobSpec("shared_buffers_mb", 16, 8192, 128, log_scale=True),
        KnobSpec("work_mem_mb", 1, 1024, 4, log_scale=True),
        KnobSpec("effective_cache_size_mb", 64, 16384, 4096, log_scale=True),
        KnobSpec("max_connections", 10, 1000, 100),
        KnobSpec("random_page_cost", 1.0, 8.0, 4.0),
        KnobSpec("checkpoint_timeout_s", 30, 3600, 300, log_scale=True),
        KnobSpec("max_parallel_workers", 0, 32, 2),
        KnobSpec("autovacuum_cost_limit", 100, 10000, 200, log_scale=True),
    ]


def executor_knobs():
    """Knobs that configure the real engine's parallel executor.

    Kept separate from :func:`default_knobs` — the E1 response surface is
    seeded on the 8-knob registry, so extending that list would silently
    reshuffle every seeded experiment. These knobs instead map directly
    onto :class:`~repro.engine.executor.Executor` construction via
    :func:`executor_params`.
    """
    return [
        KnobSpec("morsel_size_rows", 1024, 262144, 16384, log_scale=True),
        KnobSpec("parallel_workers", 1, 32, 4),
        KnobSpec("fusion_enabled", 0.0, 1.0, 1.0),
    ]


def executor_params(unit_vector, knobs=None):
    """Map normalized executor-knob settings to ``Executor`` kwargs.

    Returns ``{"morsel_rows": int, "n_workers": int,
    "fusion_enabled": bool}`` suitable for ``Executor(...)`` /
    ``Database(morsel_rows=..., parallel_workers=..., fusion_enabled=...)``.
    Vectors shorter than the knob list (e.g. the pre-fusion 2-dim
    tuning vectors) keep working: missing trailing knobs take their spec
    defaults. The fusion knob is continuous for the tuners but maps to a
    boolean at 0.5.
    """
    knobs = list(knobs) if knobs is not None else executor_knobs()
    raw = [k.denormalize(u) for k, u in zip(knobs, unit_vector)]
    raw += [k.default for k in knobs[len(raw):]]
    params = {
        "morsel_rows": max(1, int(round(raw[0]))),
        "n_workers": max(1, int(round(raw[1]))),
    }
    if len(raw) >= 3:
        params["fusion_enabled"] = bool(raw[2] >= 0.5)
    return params


class WorkloadProfile:
    """A workload descriptor the response surface is conditioned on.

    Attributes:
        read_ratio: fraction of reads (1.0 = read-only OLAP).
        scan_heaviness: how much of the work is large scans vs point access.
        concurrency: normalized client concurrency in [0, 1].
        working_set_gb: approximate hot-data size.
    """

    def __init__(self, name, read_ratio, scan_heaviness, concurrency,
                 working_set_gb):
        self.name = name
        self.read_ratio = float(read_ratio)
        self.scan_heaviness = float(scan_heaviness)
        self.concurrency = float(concurrency)
        self.working_set_gb = float(working_set_gb)

    def as_vector(self):
        """Feature vector used by query-aware tuners (QTune-lite)."""
        return np.array(
            [self.read_ratio, self.scan_heaviness, self.concurrency,
             min(1.0, self.working_set_gb / 32.0)]
        )

    def __repr__(self):
        return "WorkloadProfile(%r)" % (self.name,)


def standard_workloads():
    """Three canonical workload mixes (OLTP, OLAP, HTAP) for E1."""
    return [
        WorkloadProfile("oltp", read_ratio=0.6, scan_heaviness=0.1,
                        concurrency=0.8, working_set_gb=4.0),
        WorkloadProfile("olap", read_ratio=0.98, scan_heaviness=0.9,
                        concurrency=0.2, working_set_gb=24.0),
        WorkloadProfile("htap", read_ratio=0.8, scan_heaviness=0.5,
                        concurrency=0.5, working_set_gb=12.0),
    ]


class KnobResponseSimulator:
    """Deterministic throughput surface over normalized knob vectors.

    Args:
        knobs: list of :class:`KnobSpec` (defaults to :func:`default_knobs`).
        seed: seeds the hidden surface parameters (peak positions, widths,
            interaction weights).
        noise: std-dev of multiplicative observation noise (0 = noiseless).

    The observable is ``throughput(knob_vector, workload)`` in transactions
    per second; ``latency = 1e4 / throughput`` is also exposed. Peaks are
    placed per (knob, workload-feature) so that different workloads prefer
    different configurations.
    """

    def __init__(self, knobs=None, seed=0, noise=0.0):
        self.knobs = list(knobs) if knobs is not None else default_knobs()
        self.noise = float(noise)
        rng = ensure_rng(seed)
        d = len(self.knobs)
        # Hidden structure: per-knob base peak + workload-feature shifts.
        self._base_peak = rng.uniform(0.2, 0.8, size=d)
        self._peak_shift = rng.uniform(-0.35, 0.35, size=(d, 4))
        self._width = rng.uniform(0.25, 0.6, size=d)
        self._weight = rng.uniform(0.5, 1.5, size=d)
        # Pairwise 2-D bumps: roughly half the response mass lives in knob
        # interactions, which one-knob-at-a-time (grid) search cannot see —
        # the property that motivates learned tuners in the first place.
        n_bumps = max(2, d // 2)
        pair_idx = rng.choice(d, size=(n_bumps, 2), replace=True)
        pair_idx = np.array([
            (i, j) if i != j else (i, (j + 1) % d) for i, j in pair_idx
        ])
        self._bump_pairs = pair_idx
        self._bump_peak = rng.uniform(0.15, 0.85, size=(n_bumps, 2))
        self._bump_shift = rng.uniform(-0.25, 0.25, size=(n_bumps, 2, 4))
        self._bump_width = rng.uniform(0.12, 0.3, size=n_bumps)
        self._bump_weight = rng.uniform(0.6, 1.2, size=n_bumps)
        self._base_tps = 1000.0
        self._noise_rng = ensure_rng(rng.integers(0, 2**31 - 1))
        self.evaluations = 0

    @property
    def dim(self):
        """Number of knobs."""
        return len(self.knobs)

    def default_vector(self):
        """Normalized vector of knob defaults."""
        return np.array([k.normalize(k.default) for k in self.knobs])

    def _peaks_for(self, workload):
        w = workload.as_vector()
        peaks = self._base_peak + self._peak_shift @ w
        return np.clip(peaks, 0.05, 0.95)

    def score(self, unit_vector, workload):
        """Noiseless normalized performance score in roughly [0, ~2]."""
        x = np.clip(np.asarray(unit_vector, dtype=float), 0.0, 1.0)
        if x.shape[0] != self.dim:
            raise ReproError(
                "knob vector has %d dims, expected %d" % (x.shape[0], self.dim)
            )
        peaks = self._peaks_for(workload)
        bumps = self._weight * np.exp(-((x - peaks) ** 2) / (self._width**2))
        additive = bumps.sum() / self._weight.sum()
        w = workload.as_vector()
        inter = 0.0
        for b, (i, j) in enumerate(self._bump_pairs):
            peak = np.clip(self._bump_peak[b] + self._bump_shift[b] @ w, 0.05, 0.95)
            d2 = (x[i] - peak[0]) ** 2 + (x[j] - peak[1]) ** 2
            inter += self._bump_weight[b] * np.exp(-d2 / (self._bump_width[b] ** 2))
        inter /= self._bump_weight.sum()
        score = 0.55 * additive + 0.75 * inter
        # Connection-overload cliff: knob 3 (max_connections) beyond its
        # workload-appropriate level collapses throughput under concurrency.
        overload = max(0.0, x[3] - (0.4 + 0.5 * (1 - workload.concurrency)))
        score *= 1.0 / (1.0 + 6.0 * overload * workload.concurrency)
        return max(score, 0.01)

    def throughput(self, unit_vector, workload):
        """Observed throughput (tps), with noise when configured."""
        self.evaluations += 1
        tps = self._base_tps * self.score(unit_vector, workload)
        if self.noise > 0:
            tps *= float(
                np.exp(self._noise_rng.normal(0.0, self.noise))
            )
        return tps

    def latency_ms(self, unit_vector, workload):
        """Observed mean latency in milliseconds (inverse of throughput)."""
        return 1e4 / self.throughput(unit_vector, workload)

    def metrics(self, unit_vector, workload):
        """A CDBTune-style internal-metrics state vector (deterministic).

        Returns a vector combining the knob vector's physical effects with
        workload features — the "database state" an RL tuner conditions on.
        """
        x = np.clip(np.asarray(unit_vector, dtype=float), 0.0, 1.0)
        score = self.score(x, workload)
        buffer_hit = 0.5 + 0.5 * x[0] * (1 - 0.3 * workload.scan_heaviness)
        lock_waits = workload.concurrency * (1 - score / 2.0)
        io_util = workload.scan_heaviness * (1 - 0.6 * x[2])
        cpu_util = min(1.0, 0.3 + 0.5 * workload.concurrency + 0.2 * x[6])
        return np.array([score, buffer_hit, lock_waits, io_util, cpu_util])

    def best_score_estimate(self, workload, n_samples=20000, seed=123):
        """Monte-Carlo estimate of the surface optimum (for regret reporting)."""
        rng = ensure_rng(seed)
        best = 0.0
        for __ in range(n_samples // 256):
            xs = rng.random((256, self.dim))
            scores = [self.score(x, workload) for x in xs]
            best = max(best, max(scores))
        return best * self._base_tps

    def cost_model_params(self, unit_vector):
        """Map knob settings onto engine cost-model constants.

        Connects the simulator world to the real engine: ``work_mem`` sets
        the hash-spill threshold, ``random_page_cost`` the index-probe cost.
        """
        work_mem_raw = self.knobs[1].denormalize(unit_vector[1])
        rpc = self.knobs[4].denormalize(unit_vector[4])
        return {
            "work_mem_rows": int(work_mem_raw * 1000),
            "index_probe_cost": float(rpc),
        }

    def executor_params(self, unit_vector):
        """Map the tuner's ``max_parallel_workers`` knob (index 6) onto the
        parallel executor's worker count (floored at one worker)."""
        workers = self.knobs[6].denormalize(unit_vector[6])
        return {"n_workers": max(1, int(round(workers)))}
