"""The fused Filter→Project/Aggregate(→Limit) pipeline operator.

Evaluates a :class:`~repro.engine.plans.FusedPipelineOp` tail in one pass
over the source relation: predicate mask, gather of only the columns the
tail reads, aggregation/dedup/limit — without materializing the filtered
intermediate. When the source is a bare ``SeqScan`` the columnar
backends go further and *late-materialize*: predicates are pushed into
the table's row groups (zone-map pruning plus encoded-space masks) and
only the columns the tail reads are decoded, only for surviving
segments. Work is charged through the absorbed operator nodes with
the same cardinalities and in the same order as the unfused
interpreters, so ``work``/``operator_work`` are bit-identical with
fusion on or off.

Actual-row attribution follows the same rule: every absorbed node is
credited the output cardinality its unfused twin would have produced —
the filter stage (or the source scan whose pushed predicates were lifted
into the fused op) gets the survivor count, Project gets its pre-limit
output (full dedup count under DISTINCT), HashAggregate gets the
pre-limit group count, and Limit gets the final row count. The
differential fuzzer compares these per-node counters across fused and
unfused runs.
"""

import numpy as np

from repro.common import ExecutionError
from repro.engine import plans as P
from repro.engine.operators.base import (
    OPS,
    UNSET,
    ColumnarRelation,
    PhysicalOperator,
    Relation,
    register,
)
from repro.engine.operators.kernels import agg_input_columns, agg_partial, factorize
from repro.engine.operators.aggregate import (
    aggregate_columnar,
    merge_partials,
    output_columns,
)
from repro.engine.operators.scan import gather_group, segment_filter


def _count_filter_stage(ctx, node, n1):
    """Credit the mask's survivor count to the stage that owns it.

    Either an absorbed standalone ``Filter`` or the source scan whose
    pushed predicates were lifted into the fused op (``ctx.count``
    resolves the bare scan copy back to the original plan node). With no
    predicates at all the source's own auto-count is already right.
    """
    if node.filter_node is not None:
        ctx.count(node.filter_node, n1)
    elif node.predicates:
        ctx.count(node.children[0], n1)


def _fused_limit(ctx, node, rel):
    """Apply (and credit) the absorbed Limit, if any."""
    ln = node.limit_node
    if ln is None:
        return rel
    if ln.n >= len(rel):
        ctx.count(ln, len(rel))
        return rel
    ctx.count(ln, ln.n)
    return ColumnarRelation(
        rel.columns, [a[: ln.n] for a in rel.arrays], n_rows=ln.n
    )


def _fused_aggregate(ctx, node, source, keep, n1):
    agg = node.agg_node
    labels, positions = agg_input_columns(agg, source)
    arrays = [
        source.arrays[p] if keep is None else source.arrays[p][keep]
        for p in positions
    ]
    sub = ColumnarRelation(labels, arrays, n_rows=n1)
    return _fused_limit(ctx, node, aggregate_columnar(ctx, agg, sub))


def _fused_project(ctx, node, source, keep, n1):
    proj = node.project_node
    positions = [source.col_pos(t, c) for t, c in proj.columns]
    ctx.charge(proj, ctx.cost_model.params["cpu_tuple_cost"] * n1)
    if proj.distinct:
        arrays = [
            source.arrays[p] if keep is None else source.arrays[p][keep]
            for p in positions
        ]
        n = n1
        if n:
            codes = factorize(arrays)
            __, first = np.unique(codes, return_index=True)
            firsts = np.sort(first)  # first-occurrence order
            arrays = [a[firsts] for a in arrays]
            n = len(firsts)
        ctx.count(proj, n)
        return _fused_limit(
            ctx, node, ColumnarRelation(proj.columns, arrays, n_rows=n)
        )
    ctx.count(proj, n1)
    if keep is None:
        out = ColumnarRelation(
            proj.columns,
            [source.arrays[p] for p in positions],
            n_rows=n1,
        )
        return _fused_limit(ctx, node, out)
    limit = None if node.limit_node is None else node.limit_node.n
    if limit is not None and limit < n1:
        keep = keep[:limit]  # rows past the limit are never gathered
    arrays = [source.arrays[p][keep] for p in positions]
    out = ColumnarRelation(proj.columns, arrays, n_rows=len(keep))
    if node.limit_node is not None:
        ctx.count(node.limit_node, len(out))
    return out


def fused_tail(ctx, node, source):
    """Columnar fused tail: mask once, gather only what the tail reads.

    In parallel mode the mask still evaluates morsel-parallel via
    ``ctx.mask`` (``FusedPipelineOp`` is morsel-parallel).
    """
    n0 = len(source)
    if node.filter_node is not None:
        ctx.charge(
            node.filter_node,
            ctx.cost_model.params["cpu_tuple_cost"] * n0,
        )
    if node.predicates:
        keep = np.flatnonzero(ctx.mask(node, source, node.predicates))
        n1 = len(keep)
    else:
        keep, n1 = None, n0
    _count_filter_stage(ctx, node, n1)
    if node.agg_node is not None:
        return _fused_aggregate(ctx, node, source, keep, n1)
    return _fused_project(ctx, node, source, keep, n1)


def _row_fused_project(ctx, node, source, passes, limit):
    proj = node.project_node
    positions = [source.col_pos(t, c) for t, c in proj.columns]
    out = []
    seen = set() if proj.distinct else None
    n1 = 0
    for row in source.rows:
        if not passes(row):
            continue
        n1 += 1
        if seen is None:
            if limit is not None and len(out) >= limit:
                continue  # keep counting survivors for the Project charge
            out.append(tuple(row[p] for p in positions))
            continue
        # DISTINCT keeps deduplicating past the limit so the Project
        # stage's actual-row count equals the unfused Project's full
        # dedup output; only the append is limit-gated.
        projected = tuple(row[p] for p in positions)
        if projected in seen:
            continue
        seen.add(projected)
        if limit is None or len(out) < limit:
            out.append(projected)
    ctx.charge(proj, ctx.cost_model.params["cpu_tuple_cost"] * n1)
    _count_filter_stage(ctx, node, n1)
    ctx.count(proj, n1 if seen is None else len(seen))
    if node.limit_node is not None:
        ctx.count(node.limit_node, len(out))
    return Relation(proj.columns, out)


def _row_fused_aggregate(ctx, node, source, passes, limit):
    agg = node.agg_node
    key_pos = [source.col_pos(t, c) for t, c in agg.group_by]
    agg_pos = [
        None if a.column is None else source.col_pos(a.table, a.column)
        for a in agg.aggregates
    ]
    groups = {}
    n1 = 0
    for row in source.rows:
        if not passes(row):
            continue
        n1 += 1
        key = tuple(row[p] for p in key_pos)
        states = groups.get(key)
        if states is None:
            states = groups[key] = [
                0 if a.func in ("count", "sum")
                else ([0, 0] if a.func == "avg" else UNSET)
                for a in agg.aggregates
            ]
        for j, (a, pos) in enumerate(zip(agg.aggregates, agg_pos)):
            if a.func == "count":
                states[j] += 1
                continue
            value = row[pos]
            if a.func == "sum":
                states[j] = states[j] + value
            elif a.func == "avg":
                states[j][0] += value
                states[j][1] += 1
            elif a.func == "min":
                if states[j] is UNSET or value < states[j]:
                    states[j] = value
            elif a.func == "max":
                if states[j] is UNSET or value > states[j]:
                    states[j] = value
            else:
                raise ExecutionError(
                    "unknown aggregate %r" % (a.func,)
                )
    out = []
    for key, states in groups.items():
        values = []
        for a, state in zip(agg.aggregates, states):
            if a.func == "avg":
                values.append(state[0] / state[1])
            elif state is UNSET:
                values.append(None)
            else:
                values.append(state)
        out.append(key + tuple(values))
    if not groups and not key_pos:
        # Global aggregate over zero surviving rows: one output row.
        out.append(tuple(
            0 if a.func == "count" else None for a in agg.aggregates
        ))
    ctx.charge(agg, ctx.cost_model.aggregate(n1, len(out)))
    _count_filter_stage(ctx, node, n1)
    ctx.count(agg, len(out))
    if limit is not None:
        out = out[: limit]
    if node.limit_node is not None:
        ctx.count(node.limit_node, len(out))
    return Relation(output_columns(agg), out)


def _pfused_aggregate(ctx, node, source, slices):
    """Grouped fused tail, morsel-parallel: mask + partial per morsel.

    Each morsel masks its slice of the *source* and partially
    aggregates the survivors in one task — the filtered relation is
    never materialized, not even per-morsel. The merge is the same
    morsel-order merge as unfused parallel aggregation (including the
    (sum, count) AVG carry); group order is the global
    first-appearance order among surviving rows, so rows and order
    match the other modes.
    """
    agg = node.agg_node
    if node.filter_node is not None:
        ctx.charge(
            node.filter_node,
            ctx.cost_model.params["cpu_tuple_cost"] * len(source),
        )
    key_cols = [
        source.arrays[source.col_pos(t, c)] for t, c in agg.group_by
    ]
    agg_cols = [
        None if a.column is None
        else source.arrays[source.col_pos(a.table, a.column)]
        for a in agg.aggregates
    ]
    compiled = [
        (source.arrays[source.col_pos(p.table, p.column)],
         OPS[p.op], p.value)
        for p in node.predicates
    ]

    def task(i):
        start, stop = slices[i]
        if compiled:
            mask = None
            for arr, op, value in compiled:
                m = np.asarray(op(arr[start:stop], value))
                if m.ndim == 0:
                    m = np.full(stop - start, bool(m))
                m = m.astype(bool, copy=False)
                mask = m if mask is None else mask & m
            keep = np.flatnonzero(mask) + start
            keys = [k[keep] for k in key_cols]
            vals = [None if c is None else c[keep] for c in agg_cols]
            n_local = len(keep)
        else:
            keys = [k[start:stop] for k in key_cols]
            vals = [
                None if c is None else c[start:stop] for c in agg_cols
            ]
            n_local = stop - start
        return n_local, agg_partial(agg.aggregates, keys, vals)

    results = ctx.pmap(node, task, len(slices))
    n1 = sum(r[0] for r in results)
    _count_filter_stage(ctx, node, n1)
    out = merge_partials(ctx, agg, [r[1] for r in results], n1)
    return _fused_limit(ctx, node, out)


def _lazy_scan_shape(table, n_rows):
    """A column-labels-only relation standing in for a scan's output.

    The late-materializing paths resolve column positions against this
    shape (positions equal schema order, exactly like a real scan batch)
    without decoding a single segment.
    """
    columns = [(table.name, c.name) for c in table.schema.columns]
    return ColumnarRelation(columns, [None] * len(columns), n_rows=n_rows)


def _lazy_filter_groups(ctx, node, table, parallel):
    """Zone-classify and mask every row group against the fused predicates.

    Returns ``(n_groups, survivors, n1, n_pruned)``; ``survivors`` is a
    list of ``(group, ids)`` pairs in table order (``ids=None`` means the
    whole group survives, proven by its zone maps alone).
    """
    groups = table.row_groups()
    pruning = ctx.pruning_enabled
    predicates = node.predicates

    def eval_group(i):
        return segment_filter(groups[i], predicates, pruning)

    if parallel and len(groups) >= 2 and node.morsel_parallel:
        results = ctx.pmap(node, eval_group, len(groups))
    else:
        results = [eval_group(i) for i in range(len(groups))]
    survivors = []
    n1 = 0
    n_pruned = 0
    for g, (ids, was_pruned) in zip(groups, results):
        if was_pruned:
            n_pruned += 1
            continue
        if ids is not None and len(ids) == 0:
            continue
        survivors.append((g, ids))
        n1 += g.n_rows if ids is None else len(ids)
    return len(groups), survivors, n1, n_pruned


def _lazy_gather(table, survivors, keys):
    """Concatenated arrays for ``keys`` over the surviving rows.

    Decodes only the named columns, only within surviving groups, and
    concatenates in table order — bit-identical to masking the flat
    columns. Returns ``(arrays, bytes_decoded)``.
    """
    dtypes = {
        c.name.lower(): c.dtype.numpy_dtype for c in table.schema.columns
    }
    parts = [[] for __ in keys]
    nbytes = 0
    for g, ids in survivors:
        arrays, nb = gather_group(g, keys, ids)
        nbytes += nb
        for j, a in enumerate(arrays):
            parts[j].append(a)
    out = []
    for k, p in zip(keys, parts):
        if not p:
            out.append(np.empty(0, dtype=dtypes[k]))
        elif len(p) == 1:
            out.append(p[0])
        else:
            out.append(np.concatenate(p))
    return out, nbytes


def _lazy_aggregate(ctx, node, table, survivors, n1):
    agg = node.agg_node
    shape = _lazy_scan_shape(table, n1)
    labels, positions = agg_input_columns(agg, shape)
    keys = [table.schema.columns[p].name.lower() for p in positions]
    arrays, nbytes = _lazy_gather(table, survivors, keys)
    sub = ColumnarRelation(labels, arrays, n_rows=n1)
    out = _fused_limit(ctx, node, aggregate_columnar(ctx, agg, sub))
    return out, nbytes


def _lazy_project(ctx, node, table, survivors, n1):
    proj = node.project_node
    shape = _lazy_scan_shape(table, n1)
    positions = [shape.col_pos(t, c) for t, c in proj.columns]
    keys = [table.schema.columns[p].name.lower() for p in positions]
    uniq = list(dict.fromkeys(keys))
    ctx.charge(proj, ctx.cost_model.params["cpu_tuple_cost"] * n1)
    if proj.distinct:
        gathered, nbytes = _lazy_gather(table, survivors, uniq)
        by_key = dict(zip(uniq, gathered))
        arrays = [by_key[k] for k in keys]
        n = n1
        if n:
            codes = factorize(arrays)
            __, first = np.unique(codes, return_index=True)
            firsts = np.sort(first)  # first-occurrence order
            arrays = [a[firsts] for a in arrays]
            n = len(firsts)
        ctx.count(proj, n)
        out = _fused_limit(
            ctx, node, ColumnarRelation(proj.columns, arrays, n_rows=n)
        )
        return out, nbytes
    ctx.count(proj, n1)
    limit = None if node.limit_node is None else node.limit_node.n
    take = survivors
    n_out = n1
    if limit is not None and limit < n1:
        # Rows (and whole groups) past the limit are never gathered.
        take = []
        remaining = limit
        for g, ids in survivors:
            n_loc = g.n_rows if ids is None else len(ids)
            if n_loc <= remaining:
                take.append((g, ids))
                remaining -= n_loc
            else:
                trimmed = (
                    np.arange(remaining, dtype=np.int64)
                    if ids is None else ids[:remaining]
                )
                take.append((g, trimmed))
                remaining = 0
            if remaining == 0:
                break
        n_out = limit
    gathered, nbytes = _lazy_gather(table, take, uniq)
    by_key = dict(zip(uniq, gathered))
    arrays = [by_key[k] for k in keys]
    out = ColumnarRelation(proj.columns, arrays, n_rows=n_out)
    if node.limit_node is not None:
        ctx.count(node.limit_node, len(out))
    return out, nbytes


def _lazy_tail(ctx, node, child, parallel):
    """Late-materializing fused tail over a bare SeqScan's segments.

    Instead of running the scan (which would decode every column of
    every segment), the fused predicates are pushed all the way into the
    row groups: zone maps skip whole segments, residual predicates
    evaluate in encoded space, and only the columns the tail actually
    reads are decoded — only for surviving rows. Charges and counts
    replay the general path exactly (scan charge, scan row count, filter
    charge, survivor attribution), so rows/order/work stay bit-identical
    with late materialization on or off.
    """
    table = ctx.catalog.table(child.table)
    n0 = table.n_rows
    ctx.charge(child, ctx.cost_model.seq_scan(n0))
    ctx.record_leaf(child, n0)
    if node.filter_node is not None:
        ctx.charge(
            node.filter_node,
            ctx.cost_model.params["cpu_tuple_cost"] * n0,
        )
    n_groups, survivors, n1, n_pruned = _lazy_filter_groups(
        ctx, node, table, parallel
    )
    _count_filter_stage(ctx, node, n1)
    if node.agg_node is not None:
        out, nbytes = _lazy_aggregate(ctx, node, table, survivors, n1)
    else:
        out, nbytes = _lazy_project(ctx, node, table, survivors, n1)
    ctx.record_segments(n_groups, n_pruned, nbytes)
    return out


def _plazy_aggregate(ctx, node, child):
    """Grouped fused tail over segments, morsel-parallel.

    Row groups are the morsel boundaries: each pool task zone-classifies
    one group, masks it in encoded space, decodes only the key/value
    columns of survivors, and partially aggregates them. The merge is
    the same group-order merge as :func:`_pfused_aggregate` (partials
    arrive in table order, so group first-appearance order is global).
    """
    agg = node.agg_node
    table = ctx.catalog.table(child.table)
    n0 = table.n_rows
    ctx.charge(child, ctx.cost_model.seq_scan(n0))
    ctx.record_leaf(child, n0)
    if node.filter_node is not None:
        ctx.charge(
            node.filter_node,
            ctx.cost_model.params["cpu_tuple_cost"] * n0,
        )
    shape = _lazy_scan_shape(table, n0)
    key_keys = [
        table.schema.columns[shape.col_pos(t, c)].name.lower()
        for t, c in agg.group_by
    ]
    val_keys = [
        None if a.column is None
        else table.schema.columns[shape.col_pos(a.table, a.column)].name.lower()
        for a in agg.aggregates
    ]
    need = list(dict.fromkeys(
        key_keys + [k for k in val_keys if k is not None]
    ))
    groups = table.row_groups()
    pruning = ctx.pruning_enabled
    predicates = node.predicates

    def task(i):
        g = groups[i]
        ids, was_pruned = segment_filter(g, predicates, pruning)
        if was_pruned:
            return 0, None, 0, True
        if ids is not None and len(ids) == 0:
            return 0, None, 0, False
        n_local = g.n_rows if ids is None else len(ids)
        arrays, nb = gather_group(g, need, ids)
        by_key = dict(zip(need, arrays))
        keys = [by_key[k] for k in key_keys]
        vals = [None if k is None else by_key[k] for k in val_keys]
        return n_local, agg_partial(agg.aggregates, keys, vals), nb, False

    if len(groups) >= 2 and node.morsel_parallel:
        results = ctx.pmap(node, task, len(groups))
    else:
        results = [task(i) for i in range(len(groups))]
    ctx.record_segments(
        len(groups),
        sum(1 for r in results if r[3]),
        sum(r[2] for r in results),
    )
    n1 = sum(r[0] for r in results)
    _count_filter_stage(ctx, node, n1)
    partials = [r[1] for r in results if r[1] is not None]
    out = merge_partials(ctx, agg, partials, n1)
    return _fused_limit(ctx, node, out)


def _lazy_child(node):
    """The fused tail's source scan when it is late-materializable.

    Only a bare (predicate-free) ``SeqScan`` qualifies: index probes and
    view scans have their own access paths, and a scan that still
    carries pushed predicates was not absorbed by this fused op.
    """
    child = node.children[0]
    if isinstance(child, P.SeqScan) and not child.predicates:
        return child
    return None


@register(P.FusedPipelineOp)
class FusedPipelineOpEval(PhysicalOperator):
    """Evaluates a fused tail in all three backends."""

    def row(self, ctx, node):
        """Row-mode fused tail: one streaming pass over the source rows.

        The accumulators fold values in row order starting from the same
        identities the unfused interpreter's ``sum``/``min``/``max`` use,
        so the outputs are bit-identical, and work is charged through the
        absorbed operator nodes in the unfused charge order.
        """
        source = ctx.run(node.children[0])
        n0 = len(source.rows)
        if node.filter_node is not None:
            ctx.charge(
                node.filter_node,
                ctx.cost_model.params["cpu_tuple_cost"] * n0,
            )
        compiled = [
            (source.col_pos(p.table, p.column), OPS[p.op], p.value)
            for p in node.predicates
        ]

        def passes(row):
            for pos, op, value in compiled:
                if not op(row[pos], value):
                    return False
            return True

        limit = None if node.limit_node is None else node.limit_node.n
        if node.agg_node is not None:
            return _row_fused_aggregate(ctx, node, source, passes, limit)
        return _row_fused_project(ctx, node, source, passes, limit)

    def vectorized(self, ctx, node):
        child = _lazy_child(node)
        if child is not None:
            return _lazy_tail(ctx, node, child, parallel=False)
        return fused_tail(ctx, node, ctx.run(node.children[0]))

    def morsel(self, ctx, node):
        child = _lazy_child(node)
        agg = node.agg_node
        if child is not None:
            if agg is not None and agg.group_by:
                return _plazy_aggregate(ctx, node, child)
            return _lazy_tail(ctx, node, child, parallel=True)
        source = ctx.run(node.children[0])
        if agg is not None and agg.group_by:
            slices = ctx.morsels(len(source))
            if slices:
                return _pfused_aggregate(ctx, node, source, slices)
        # Non-grouped tails: the mask still evaluates morsel-parallel via
        # ``ctx.mask``; gather/dedup/limit stay single-threaded, matching
        # the unfused operators' merge phases.
        return fused_tail(ctx, node, source)
