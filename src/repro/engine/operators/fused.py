"""The fused Filter→Project/Aggregate(→Limit) pipeline operator.

Evaluates a :class:`~repro.engine.plans.FusedPipelineOp` tail in one pass
over the source relation: predicate mask, gather of only the columns the
tail reads, aggregation/dedup/limit — without materializing the filtered
intermediate. Work is charged through the absorbed operator nodes with
the same cardinalities and in the same order as the unfused
interpreters, so ``work``/``operator_work`` are bit-identical with
fusion on or off.

Actual-row attribution follows the same rule: every absorbed node is
credited the output cardinality its unfused twin would have produced —
the filter stage (or the source scan whose pushed predicates were lifted
into the fused op) gets the survivor count, Project gets its pre-limit
output (full dedup count under DISTINCT), HashAggregate gets the
pre-limit group count, and Limit gets the final row count. The
differential fuzzer compares these per-node counters across fused and
unfused runs.
"""

import numpy as np

from repro.common import ExecutionError
from repro.engine import plans as P
from repro.engine.operators.base import (
    OPS,
    UNSET,
    ColumnarRelation,
    PhysicalOperator,
    Relation,
    register,
)
from repro.engine.operators.kernels import agg_input_columns, agg_partial, factorize
from repro.engine.operators.aggregate import (
    aggregate_columnar,
    merge_partials,
    output_columns,
)


def _count_filter_stage(ctx, node, n1):
    """Credit the mask's survivor count to the stage that owns it.

    Either an absorbed standalone ``Filter`` or the source scan whose
    pushed predicates were lifted into the fused op (``ctx.count``
    resolves the bare scan copy back to the original plan node). With no
    predicates at all the source's own auto-count is already right.
    """
    if node.filter_node is not None:
        ctx.count(node.filter_node, n1)
    elif node.predicates:
        ctx.count(node.children[0], n1)


def _fused_limit(ctx, node, rel):
    """Apply (and credit) the absorbed Limit, if any."""
    ln = node.limit_node
    if ln is None:
        return rel
    if ln.n >= len(rel):
        ctx.count(ln, len(rel))
        return rel
    ctx.count(ln, ln.n)
    return ColumnarRelation(
        rel.columns, [a[: ln.n] for a in rel.arrays], n_rows=ln.n
    )


def _fused_aggregate(ctx, node, source, keep, n1):
    agg = node.agg_node
    labels, positions = agg_input_columns(agg, source)
    arrays = [
        source.arrays[p] if keep is None else source.arrays[p][keep]
        for p in positions
    ]
    sub = ColumnarRelation(labels, arrays, n_rows=n1)
    return _fused_limit(ctx, node, aggregate_columnar(ctx, agg, sub))


def _fused_project(ctx, node, source, keep, n1):
    proj = node.project_node
    positions = [source.col_pos(t, c) for t, c in proj.columns]
    ctx.charge(proj, ctx.cost_model.params["cpu_tuple_cost"] * n1)
    if proj.distinct:
        arrays = [
            source.arrays[p] if keep is None else source.arrays[p][keep]
            for p in positions
        ]
        n = n1
        if n:
            codes = factorize(arrays)
            __, first = np.unique(codes, return_index=True)
            firsts = np.sort(first)  # first-occurrence order
            arrays = [a[firsts] for a in arrays]
            n = len(firsts)
        ctx.count(proj, n)
        return _fused_limit(
            ctx, node, ColumnarRelation(proj.columns, arrays, n_rows=n)
        )
    ctx.count(proj, n1)
    if keep is None:
        out = ColumnarRelation(
            proj.columns,
            [source.arrays[p] for p in positions],
            n_rows=n1,
        )
        return _fused_limit(ctx, node, out)
    limit = None if node.limit_node is None else node.limit_node.n
    if limit is not None and limit < n1:
        keep = keep[:limit]  # rows past the limit are never gathered
    arrays = [source.arrays[p][keep] for p in positions]
    out = ColumnarRelation(proj.columns, arrays, n_rows=len(keep))
    if node.limit_node is not None:
        ctx.count(node.limit_node, len(out))
    return out


def fused_tail(ctx, node, source):
    """Columnar fused tail: mask once, gather only what the tail reads.

    In parallel mode the mask still evaluates morsel-parallel via
    ``ctx.mask`` (``FusedPipelineOp`` is morsel-parallel).
    """
    n0 = len(source)
    if node.filter_node is not None:
        ctx.charge(
            node.filter_node,
            ctx.cost_model.params["cpu_tuple_cost"] * n0,
        )
    if node.predicates:
        keep = np.flatnonzero(ctx.mask(node, source, node.predicates))
        n1 = len(keep)
    else:
        keep, n1 = None, n0
    _count_filter_stage(ctx, node, n1)
    if node.agg_node is not None:
        return _fused_aggregate(ctx, node, source, keep, n1)
    return _fused_project(ctx, node, source, keep, n1)


def _row_fused_project(ctx, node, source, passes, limit):
    proj = node.project_node
    positions = [source.col_pos(t, c) for t, c in proj.columns]
    out = []
    seen = set() if proj.distinct else None
    n1 = 0
    for row in source.rows:
        if not passes(row):
            continue
        n1 += 1
        if seen is None:
            if limit is not None and len(out) >= limit:
                continue  # keep counting survivors for the Project charge
            out.append(tuple(row[p] for p in positions))
            continue
        # DISTINCT keeps deduplicating past the limit so the Project
        # stage's actual-row count equals the unfused Project's full
        # dedup output; only the append is limit-gated.
        projected = tuple(row[p] for p in positions)
        if projected in seen:
            continue
        seen.add(projected)
        if limit is None or len(out) < limit:
            out.append(projected)
    ctx.charge(proj, ctx.cost_model.params["cpu_tuple_cost"] * n1)
    _count_filter_stage(ctx, node, n1)
    ctx.count(proj, n1 if seen is None else len(seen))
    if node.limit_node is not None:
        ctx.count(node.limit_node, len(out))
    return Relation(proj.columns, out)


def _row_fused_aggregate(ctx, node, source, passes, limit):
    agg = node.agg_node
    key_pos = [source.col_pos(t, c) for t, c in agg.group_by]
    agg_pos = [
        None if a.column is None else source.col_pos(a.table, a.column)
        for a in agg.aggregates
    ]
    groups = {}
    n1 = 0
    for row in source.rows:
        if not passes(row):
            continue
        n1 += 1
        key = tuple(row[p] for p in key_pos)
        states = groups.get(key)
        if states is None:
            states = groups[key] = [
                0 if a.func in ("count", "sum")
                else ([0, 0] if a.func == "avg" else UNSET)
                for a in agg.aggregates
            ]
        for j, (a, pos) in enumerate(zip(agg.aggregates, agg_pos)):
            if a.func == "count":
                states[j] += 1
                continue
            value = row[pos]
            if a.func == "sum":
                states[j] = states[j] + value
            elif a.func == "avg":
                states[j][0] += value
                states[j][1] += 1
            elif a.func == "min":
                if states[j] is UNSET or value < states[j]:
                    states[j] = value
            elif a.func == "max":
                if states[j] is UNSET or value > states[j]:
                    states[j] = value
            else:
                raise ExecutionError(
                    "unknown aggregate %r" % (a.func,)
                )
    out = []
    for key, states in groups.items():
        values = []
        for a, state in zip(agg.aggregates, states):
            if a.func == "avg":
                values.append(state[0] / state[1])
            elif state is UNSET:
                values.append(None)
            else:
                values.append(state)
        out.append(key + tuple(values))
    if not groups and not key_pos:
        # Global aggregate over zero surviving rows: one output row.
        out.append(tuple(
            0 if a.func == "count" else None for a in agg.aggregates
        ))
    ctx.charge(agg, ctx.cost_model.aggregate(n1, len(out)))
    _count_filter_stage(ctx, node, n1)
    ctx.count(agg, len(out))
    if limit is not None:
        out = out[: limit]
    if node.limit_node is not None:
        ctx.count(node.limit_node, len(out))
    return Relation(output_columns(agg), out)


def _pfused_aggregate(ctx, node, source, slices):
    """Grouped fused tail, morsel-parallel: mask + partial per morsel.

    Each morsel masks its slice of the *source* and partially
    aggregates the survivors in one task — the filtered relation is
    never materialized, not even per-morsel. The merge is the same
    morsel-order merge as unfused parallel aggregation (including the
    (sum, count) AVG carry); group order is the global
    first-appearance order among surviving rows, so rows and order
    match the other modes.
    """
    agg = node.agg_node
    if node.filter_node is not None:
        ctx.charge(
            node.filter_node,
            ctx.cost_model.params["cpu_tuple_cost"] * len(source),
        )
    key_cols = [
        source.arrays[source.col_pos(t, c)] for t, c in agg.group_by
    ]
    agg_cols = [
        None if a.column is None
        else source.arrays[source.col_pos(a.table, a.column)]
        for a in agg.aggregates
    ]
    compiled = [
        (source.arrays[source.col_pos(p.table, p.column)],
         OPS[p.op], p.value)
        for p in node.predicates
    ]

    def task(i):
        start, stop = slices[i]
        if compiled:
            mask = None
            for arr, op, value in compiled:
                m = np.asarray(op(arr[start:stop], value))
                if m.ndim == 0:
                    m = np.full(stop - start, bool(m))
                m = m.astype(bool, copy=False)
                mask = m if mask is None else mask & m
            keep = np.flatnonzero(mask) + start
            keys = [k[keep] for k in key_cols]
            vals = [None if c is None else c[keep] for c in agg_cols]
            n_local = len(keep)
        else:
            keys = [k[start:stop] for k in key_cols]
            vals = [
                None if c is None else c[start:stop] for c in agg_cols
            ]
            n_local = stop - start
        return n_local, agg_partial(agg.aggregates, keys, vals)

    results = ctx.pmap(node, task, len(slices))
    n1 = sum(r[0] for r in results)
    _count_filter_stage(ctx, node, n1)
    out = merge_partials(ctx, agg, [r[1] for r in results], n1)
    return _fused_limit(ctx, node, out)


@register(P.FusedPipelineOp)
class FusedPipelineOpEval(PhysicalOperator):
    """Evaluates a fused tail in all three backends."""

    def row(self, ctx, node):
        """Row-mode fused tail: one streaming pass over the source rows.

        The accumulators fold values in row order starting from the same
        identities the unfused interpreter's ``sum``/``min``/``max`` use,
        so the outputs are bit-identical, and work is charged through the
        absorbed operator nodes in the unfused charge order.
        """
        source = ctx.run(node.children[0])
        n0 = len(source.rows)
        if node.filter_node is not None:
            ctx.charge(
                node.filter_node,
                ctx.cost_model.params["cpu_tuple_cost"] * n0,
            )
        compiled = [
            (source.col_pos(p.table, p.column), OPS[p.op], p.value)
            for p in node.predicates
        ]

        def passes(row):
            for pos, op, value in compiled:
                if not op(row[pos], value):
                    return False
            return True

        limit = None if node.limit_node is None else node.limit_node.n
        if node.agg_node is not None:
            return _row_fused_aggregate(ctx, node, source, passes, limit)
        return _row_fused_project(ctx, node, source, passes, limit)

    def vectorized(self, ctx, node):
        return fused_tail(ctx, node, ctx.run(node.children[0]))

    def morsel(self, ctx, node):
        source = ctx.run(node.children[0])
        agg = node.agg_node
        if agg is not None and agg.group_by:
            slices = ctx.morsels(len(source))
            if slices:
                return _pfused_aggregate(ctx, node, source, slices)
        # Non-grouped tails: the mask still evaluates morsel-parallel via
        # ``ctx.mask``; gather/dedup/limit stay single-threaded, matching
        # the unfused operators' merge phases.
        return fused_tail(ctx, node, source)
