"""Vectorized NumPy kernels shared across operator families.

These are the pure array routines the columnar backends are built from:
factorization (dense key codes), the build/probe halves of the
factorized equi-join, predicate masks, segmented reductions for grouped
aggregation, and order-preserving sort permutations. They are also used
by :func:`repro.engine.executor.count_join_rows` (the oracle cardinality
helper), which is why they live apart from any single operator module.

Every kernel is deterministic and order-preserving by construction —
join probes emit left-major row order, groups surface in first-appearance
order, sorts are stable — because the row interpreter defines the
engine's observable semantics and the vectorized kernels must reproduce
it bit-for-bit.
"""

import numpy as np

from repro.common import ExecutionError
from repro.engine.operators.base import OPS


def column_codes(arr):
    """Dense int64 codes for one column (equal values ⇒ equal codes).

    Non-object dtypes use ``np.unique``. Object columns (TEXT, nullable)
    use a first-appearance dict instead: sort-based ``np.unique`` would
    try to order the values and raise ``TypeError`` on ``None`` or mixed
    types, while dict equality matches the row interpreter's hash-based
    semantics exactly (``None == None`` groups/joins, no ordering needed).
    """
    if arr.dtype == object:
        codes = np.empty(len(arr), dtype=np.int64)
        seen = {}
        for i, value in enumerate(arr):
            code = seen.get(value)
            if code is None:
                code = seen[value] = len(seen)
            codes[i] = code
        return codes
    __, inv = np.unique(arr, return_inverse=True)
    return np.ascontiguousarray(inv, dtype=np.int64).ravel()


def factorize(columns):
    """Dense int64 codes identifying each row's tuple over ``columns``.

    Rows with equal key tuples receive equal codes; codes are compacted
    after every column so multi-column keys cannot overflow.
    """
    codes = None
    for arr in columns:
        inv = column_codes(arr)
        if codes is None:
            codes = inv
        else:
            width = int(inv.max()) + 1 if len(inv) else 1
            codes = codes * width + inv
            __, codes = np.unique(codes, return_inverse=True)
            codes = np.ascontiguousarray(codes, dtype=np.int64).ravel()
    return codes


def join_build(left_cols, right_cols):
    """Build phase of the factorized equi-join: shared key codes.

    Factorizes the concatenated key columns once (so left and right codes
    are consistent) and sorts the right side. Returns
    ``(left_codes, right_codes_sorted, right_order)`` — everything a probe
    needs; probes over disjoint left ranges are independent, which is what
    the parallel executor exploits.
    """
    nl = len(left_cols[0])
    codes = factorize(
        [np.concatenate([l, r]) for l, r in zip(left_cols, right_cols)]
    )
    lc, rc = codes[:nl], codes[nl:]
    order = np.argsort(rc, kind="stable")
    return lc, rc[order], order


def join_probe(lc, rc_sorted, order, base=0):
    """Probe phase: row-id pairs for probe codes ``lc``.

    ``base`` offsets the emitted left row ids, so a morsel covering
    ``lc[start:stop]`` passes ``base=start`` and the concatenation of
    per-morsel outputs (in morsel order) equals the monolithic probe.
    """
    nl = len(lc)
    empty = np.empty(0, dtype=np.int64)
    starts = np.searchsorted(rc_sorted, lc, side="left")
    counts = np.searchsorted(rc_sorted, lc, side="right") - starts
    total = int(counts.sum())
    il = np.repeat(np.arange(base, base + nl, dtype=np.int64), counts)
    if total == 0:
        return il, empty
    offsets = np.cumsum(counts) - counts
    pos = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )
    return il, order[pos]


def join_indices(left_cols, right_cols):
    """Row-id pairs ``(il, ir)`` of the equi-join of two key-column sets.

    Output order matches the row interpreter's hash join exactly: left
    rows in order, and for each left row its right matches in original
    right order (the stable argsort keeps within-key right order intact).
    """
    nl, nr = len(left_cols[0]), len(right_cols[0])
    empty = np.empty(0, dtype=np.int64)
    if nl == 0 or nr == 0:
        return empty, empty.copy()
    lc, rc_sorted, order = join_build(left_cols, right_cols)
    return join_probe(lc, rc_sorted, order)


def cross_indices(nl, nr):
    """Row-id pairs of the Cartesian product, left-major (row order)."""
    il = np.repeat(np.arange(nl, dtype=np.int64), nr)
    ir = np.tile(np.arange(nr, dtype=np.int64), nl)
    return il, ir


def predicate_mask(relation, predicates):
    """One boolean mask for a conjunction of predicates (vectorized)."""
    n = len(relation)
    mask = None
    for p in predicates:
        arr = relation.arrays[relation.col_pos(p.table, p.column)]
        m = np.asarray(OPS[p.op](arr, p.value))
        if m.ndim == 0:  # incomparable types collapse to a scalar verdict
            m = np.full(n, bool(m))
        m = m.astype(bool, copy=False)
        mask = m if mask is None else mask & m
    return mask


def _coerce_numeric(sorted_vals, func):
    """Numeric view of an object array of homogeneous Python scalars.

    Returns ``None`` when the values are not uniformly ``int`` or
    uniformly ``float`` (``bool`` is deliberately excluded — it is a
    distinct type under Python's aggregate semantics), or when an int
    sum could overflow int64; callers then keep the Python fallback.
    """
    if not len(sorted_vals):
        return None
    head = type(sorted_vals[0])
    if head is int:
        for v in sorted_vals:
            if type(v) is not int:
                return None
        try:
            vals = sorted_vals.astype(np.int64)
        except (OverflowError, TypeError, ValueError):
            return None
        if func in ("sum", "avg"):
            bound = max(abs(int(vals.min())), abs(int(vals.max())))
            if bound * len(vals) >= 2 ** 63:
                return None
        return vals
    if head is float:
        for v in sorted_vals:
            if type(v) is not float:
                return None
        return sorted_vals.astype(np.float64)
    return None


def segment_reduce(func, sorted_vals, seg_starts, counts):
    """Per-group reduction over values pre-sorted so groups are contiguous.

    Object-dtype inputs holding uniformly ``int`` or uniformly ``float``
    scalars are coerced to a numeric dtype so the reductions run through
    ``np.ufunc.reduceat`` (int sums only when provably overflow-free);
    genuinely mixed object values keep the per-group Python fallback.
    """
    if sorted_vals.dtype == object:
        coerced = _coerce_numeric(sorted_vals, func)
        if coerced is not None:
            return segment_reduce(func, coerced, seg_starts, counts)
        bounds = np.r_[seg_starts, len(sorted_vals)]
        segments = [
            sorted_vals[bounds[i]:bounds[i + 1]].tolist()
            for i in range(len(seg_starts))
        ]
        if func == "sum":
            vals = [sum(s) for s in segments]
        elif func == "avg":
            vals = [sum(s) / len(s) for s in segments]
        elif func == "min":
            vals = [min(s) for s in segments]
        elif func == "max":
            vals = [max(s) for s in segments]
        else:
            raise ExecutionError("unknown aggregate %r" % (func,))
        out = np.empty(len(vals), dtype=object)
        out[:] = vals
        return out
    if func == "sum":
        return np.add.reduceat(sorted_vals, seg_starts)
    if func == "avg":
        return np.add.reduceat(sorted_vals, seg_starts) / counts
    if func == "min":
        return np.minimum.reduceat(sorted_vals, seg_starts)
    if func == "max":
        return np.maximum.reduceat(sorted_vals, seg_starts)
    raise ExecutionError("unknown aggregate %r" % (func,))


def stable_sort_indices(key, descending):
    """Stable sort permutation matching ``sorted(..., reverse=descending)``."""
    n = len(key)
    if not descending:
        return np.argsort(key, kind="stable")
    # Descending with ties in original order == stable ascending argsort of
    # the reversed array, reversed and mapped back to original positions.
    return (n - 1) - np.argsort(key[::-1], kind="stable")[::-1]


def agg_input_columns(agg_node, source):
    """``(labels, positions)`` of the columns an aggregate actually reads.

    The fused path gathers only these through the predicate's surviving
    row ids — the full-width filtered relation is never materialized.
    """
    seen = {}
    for t, c in agg_node.group_by:
        key = (t.lower(), c.lower())
        if key not in seen:
            seen[key] = source.col_pos(t, c)
    for a in agg_node.aggregates:
        if a.column is not None:
            key = (a.table.lower(), a.column.lower())
            if key not in seen:
                seen[key] = source.col_pos(a.table, a.column)
    return list(seen), list(seen.values())


def agg_partial(aggregates, keys, vals):
    """One morsel's partial aggregation, groups in appearance order.

    ``keys``/``vals`` are this morsel's (already masked) key and argument
    arrays. Returns ``(group_keys, states)`` where ``group_keys`` lists
    each group's key tuple and ``states[j][g]`` is aggregate ``j``'s
    partial state for group ``g``: a count, a sum, a min/max, or a
    ``(sum, count)`` pair for AVG — the carry that lets the merge stay
    exact instead of averaging averages.
    """
    n = len(keys[0]) if keys else 0
    if n == 0:
        # A fused morsel can be filtered down to nothing; emit no groups.
        return [], [[] for __ in aggregates]
    codes = factorize(keys)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    seg_starts = np.flatnonzero(
        np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
    )
    counts = np.diff(np.r_[seg_starts, n])
    first_rows = order[seg_starts]
    rank = np.argsort(first_rows, kind="stable")
    group_keys = list(zip(
        *(k[first_rows[rank]].tolist() for k in keys)
    ))
    states = []
    for agg, col in zip(aggregates, vals):
        if agg.func == "count":
            states.append(counts[rank].tolist())
            continue
        sorted_vals = col[order]
        if agg.func == "avg":
            sums = segment_reduce("sum", sorted_vals, seg_starts, counts)
            states.append(list(zip(
                np.asarray(sums)[rank].tolist(),
                counts[rank].tolist(),
            )))
        else:
            reduced = segment_reduce(agg.func, sorted_vals, seg_starts,
                                     counts)
            states.append(np.asarray(reduced)[rank].tolist())
    return group_keys, states
