"""Physical-operator layer: one module per operator family.

Each plan-node class maps to a stateless :class:`PhysicalOperator`
singleton registered in this package's registry. Operators expose up to
three evaluation backends — ``row`` (tuple-at-a-time interpreter),
``vectorized`` (columnar NumPy batches), and ``morsel`` (morsel-driven
parallel; defaults to the vectorized backend when an operator has no
profitable parallel strategy). The executor stays a thin driver: it
resolves node → operator → backend and supplies the evaluation context
(catalog, cost model, work/row accounting, morsel plumbing).

Layering: this package sits below the optimizer and must never import
from :mod:`repro.ai4db` (guarded by a test).
"""

from repro.engine.operators.base import (
    BACKENDS,
    OPS,
    UNSET,
    ColumnarRelation,
    PhysicalOperator,
    Relation,
    eval_predicates,
    operator_for,
    register,
    registered_node_types,
)

# Importing the family modules registers their operators.
from repro.engine.operators import scan  # noqa: F401  (registration)
from repro.engine.operators import join  # noqa: F401  (registration)
from repro.engine.operators import filter as filter_ops  # noqa: F401
from repro.engine.operators import aggregate  # noqa: F401  (registration)
from repro.engine.operators import sort  # noqa: F401  (registration)
from repro.engine.operators import fused  # noqa: F401  (registration)

__all__ = [
    "BACKENDS",
    "OPS",
    "UNSET",
    "ColumnarRelation",
    "PhysicalOperator",
    "Relation",
    "eval_predicates",
    "operator_for",
    "register",
    "registered_node_types",
]
