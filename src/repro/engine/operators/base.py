"""Operator-layer foundations: relations, the ``PhysicalOperator``
contract, and the plan-node → operator registry.

Every physical operator family lives in its own module in this package
(scan, join, filter/project, aggregate, sort/limit, fused pipeline) and
subclasses :class:`PhysicalOperator`, implementing up to three evaluation
backends:

* :meth:`PhysicalOperator.row` — the tuple-at-a-time interpreter (the
  executable specification);
* :meth:`PhysicalOperator.vectorized` — columnar NumPy batches;
* :meth:`PhysicalOperator.morsel` — the morsel-driven parallel variant;
  it defaults to the vectorized backend, which is exactly the old
  executor's fallback rule (operators without a dedicated parallel
  handler ran their vectorized implementation — whose predicate masks
  already split per-morsel through ``ctx.mask``).

Backends receive ``(ctx, node)`` where ``ctx`` is the
:class:`~repro.engine.executor.Executor` driving the plan. The executor
exposes the per-run services operators need: ``ctx.run(child)`` for
recursive evaluation, ``ctx.charge(node, amount)`` for work accounting,
``ctx.count(node, n)`` for the per-node actual-row counters,
``ctx.mask``/``ctx.morsels``/``ctx.pmap`` for morsel-parallel plumbing,
plus ``ctx.catalog``/``ctx.cost_model``/``ctx.mode``.

All three backends of one operator are observationally identical: same
rows in the same order, same ``work``/``operator_work`` charges, and the
same per-node ``actual_rows`` — the differential fuzzer races them
against each other to enforce it.
"""

import operator

from repro.common import ExecutionError

#: Comparison operators predicates may use, shared by every backend.
OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Sentinel distinguishing "no value seen yet" from a stored ``None`` in
#: the row-mode fused aggregation accumulators.
UNSET = object()

#: The three evaluation backends an operator may implement. ``"parallel"``
#: executor mode maps to the ``morsel`` backend.
BACKENDS = ("row", "vectorized", "morsel")


class Relation:
    """An intermediate result: column labels plus materialized rows.

    Attributes:
        columns: list of ``(table, column)`` labels (lowercased).
        rows: list of tuples aligned with ``columns``.
    """

    __slots__ = ("columns", "rows", "_index")

    def __init__(self, columns, rows):
        self.columns = [(t.lower(), c.lower()) for t, c in columns]
        self.rows = rows
        self._index = {tc: i for i, tc in enumerate(self.columns)}

    def col_pos(self, table, column):
        """Position of ``table.column`` in each row tuple."""
        key = (table.lower(), column.lower())
        if key not in self._index:
            raise ExecutionError(
                "intermediate result has no column %s.%s" % (table, column)
            )
        return self._index[key]

    def __len__(self):
        return len(self.rows)


class ColumnarRelation:
    """An intermediate result carried as aligned NumPy column arrays.

    The vectorized twin of :class:`Relation`: ``arrays[i]`` holds every
    value of ``columns[i]``. Operators produce new ``ColumnarRelation``
    batches via masks and fancy indexing; rows are only materialized when
    the final result is converted with :meth:`to_relation`.
    """

    __slots__ = ("columns", "arrays", "_index", "_n")

    def __init__(self, columns, arrays, n_rows=None):
        self.columns = [(t.lower(), c.lower()) for t, c in columns]
        self.arrays = list(arrays)
        self._index = {tc: i for i, tc in enumerate(self.columns)}
        if n_rows is not None:
            self._n = int(n_rows)
        else:
            self._n = len(self.arrays[0]) if self.arrays else 0

    def col_pos(self, table, column):
        """Position of ``table.column`` in :attr:`arrays`."""
        key = (table.lower(), column.lower())
        if key not in self._index:
            raise ExecutionError(
                "intermediate result has no column %s.%s" % (table, column)
            )
        return self._index[key]

    def take(self, selector):
        """A new relation holding the rows picked by a mask or index array."""
        arrays = [a[selector] for a in self.arrays]
        return ColumnarRelation(self.columns, arrays)

    def to_relation(self):
        """Materialize as a row :class:`Relation` (Python scalar tuples)."""
        if not self.arrays or self._n == 0:
            return Relation(self.columns, [])
        return Relation(
            self.columns, list(zip(*(a.tolist() for a in self.arrays)))
        )

    def __len__(self):
        return self._n


def eval_predicates(relation, predicates):
    """Rows of a row :class:`Relation` surviving a predicate conjunction."""
    if not predicates:
        return relation.rows
    compiled = [
        (relation.col_pos(p.table, p.column), OPS[p.op], p.value)
        for p in predicates
    ]
    out = []
    for row in relation.rows:
        ok = True
        for pos, op, value in compiled:
            if not op(row[pos], value):
                ok = False
                break
        if ok:
            out.append(row)
    return out


class PhysicalOperator:
    """Uniform interface of one physical operator family.

    Subclasses are stateless singletons registered per plan-node type via
    :func:`register`; the executor resolves ``node → operator`` once per
    node and calls the backend matching its mode. A backend a family does
    not implement raises; :meth:`morsel` defaults to the vectorized
    backend (the engine-wide parallel fallback rule).
    """

    def row(self, ctx, node):
        raise ExecutionError(
            "executor does not support %r in row mode" % (node,)
        )

    def vectorized(self, ctx, node):
        raise ExecutionError(
            "executor does not support %r in vectorized mode" % (node,)
        )

    def morsel(self, ctx, node):
        return self.vectorized(ctx, node)


#: Plan-node class → operator singleton.
_REGISTRY = {}


def register(*node_types):
    """Class decorator binding an operator to its plan-node type(s)."""

    def bind(op_cls):
        instance = op_cls()
        for node_type in node_types:
            _REGISTRY[node_type] = instance
        return op_cls

    return bind


def operator_for(node):
    """The registered :class:`PhysicalOperator` evaluating ``node``."""
    op = _REGISTRY.get(type(node))
    if op is None:
        raise ExecutionError("executor does not support %r" % (node,))
    return op


def registered_node_types():
    """The plan-node classes the operator layer can evaluate (sorted)."""
    return sorted(_REGISTRY, key=lambda cls: cls.__name__)
