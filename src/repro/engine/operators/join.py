"""Join operators: HashJoin, NestedLoopJoin, CrossJoin.

All joins emit rows in the row interpreter's order — left rows in order,
each left row's right matches in original right order — so the three
backends are interchangeable. The morsel backend builds once and probes
per-morsel; morsel-order concatenation reproduces the monolithic probe.
Work is charged from observed cardinalities via the cost-model formula
matching the join algorithm, never from implementation details.
"""

import numpy as np

from repro.engine import plans as P
from repro.engine.operators.base import (
    ColumnarRelation,
    PhysicalOperator,
    Relation,
    register,
)
from repro.engine.operators.kernels import (
    cross_indices,
    join_build,
    join_indices,
    join_probe,
)


def join_keys(node, left, right):
    """Positions of the join-key columns in the two child relations."""
    left_index = left._index
    left_pos, right_pos = [], []
    for e in node.edges:
        if (e.left_table.lower(), e.left_column.lower()) in left_index:
            lp = left.col_pos(e.left_table, e.left_column)
            rp = right.col_pos(e.right_table, e.right_column)
        else:
            lp = left.col_pos(e.right_table, e.right_column)
            rp = right.col_pos(e.left_table, e.left_column)
        left_pos.append(lp)
        right_pos.append(rp)
    return left_pos, right_pos


def _v_join(ctx, node, charge):
    """Single-threaded columnar equi-join shared by hash and NL charges."""
    left = ctx.run(node.children[0])
    right = ctx.run(node.children[1])
    left_pos, right_pos = join_keys(node, left, right)
    il, ir = join_indices(
        [left.arrays[p] for p in left_pos],
        [right.arrays[p] for p in right_pos],
    )
    out = ColumnarRelation(
        left.columns + right.columns,
        [a[il] for a in left.arrays] + [a[ir] for a in right.arrays],
        n_rows=len(il),
    )
    ctx.charge(node, charge(len(left), len(right), len(out)))
    return out


def _p_join(ctx, node, charge):
    """Morsel-parallel probe: build once, probe disjoint left ranges."""
    left = ctx.run(node.children[0])
    right = ctx.run(node.children[1])
    left_pos, right_pos = join_keys(node, left, right)
    left_cols = [left.arrays[p] for p in left_pos]
    right_cols = [right.arrays[p] for p in right_pos]
    nl, nr = len(left), len(right)
    slices = ctx.morsels(nl) if nr else []
    if not slices:
        il, ir = join_indices(left_cols, right_cols)
    else:
        # Build once (shared key codes + sorted build side), probe
        # per morsel; morsel-order concatenation reproduces the
        # monolithic probe's left-major output order exactly.
        lc, rc_sorted, order = join_build(left_cols, right_cols)

        def task(i):
            start, stop = slices[i]
            return join_probe(lc[start:stop], rc_sorted, order, base=start)

        parts = ctx.pmap(node, task, len(slices))
        il = np.concatenate([p[0] for p in parts])
        ir = np.concatenate([p[1] for p in parts])
    out = ColumnarRelation(
        left.columns + right.columns,
        [a[il] for a in left.arrays] + [a[ir] for a in right.arrays],
        n_rows=len(il),
    )
    ctx.charge(node, charge(nl, nr, len(out)))
    return out


@register(P.HashJoin)
class HashJoinOp(PhysicalOperator):
    """Hash join (right child is the build side)."""

    def row(self, ctx, node):
        left = ctx.run(node.children[0])
        right = ctx.run(node.children[1])
        left_pos, right_pos = join_keys(node, left, right)
        buckets = {}
        for row in right.rows:
            key = tuple(row[p] for p in right_pos)
            buckets.setdefault(key, []).append(row)
        out = []
        for row in left.rows:
            key = tuple(row[p] for p in left_pos)
            for match in buckets.get(key, ()):
                out.append(row + match)
        ctx.charge(
            node,
            ctx.cost_model.hash_join(len(left.rows), len(right.rows), len(out)),
        )
        return Relation(left.columns + right.columns, out)

    def vectorized(self, ctx, node):
        return _v_join(ctx, node, ctx.cost_model.hash_join)

    def morsel(self, ctx, node):
        return _p_join(ctx, node, ctx.cost_model.hash_join)


@register(P.NestedLoopJoin)
class NestedLoopJoinOp(PhysicalOperator):
    """Nested loops over the join edges (equi only)."""

    def row(self, ctx, node):
        left = ctx.run(node.children[0])
        right = ctx.run(node.children[1])
        left_pos, right_pos = join_keys(node, left, right)
        out = []
        for lrow in left.rows:
            lkey = tuple(lrow[p] for p in left_pos)
            for rrow in right.rows:
                if lkey == tuple(rrow[p] for p in right_pos):
                    out.append(lrow + rrow)
        ctx.charge(
            node,
            ctx.cost_model.nested_loop_join(
                len(left.rows), len(right.rows), len(out)
            ),
        )
        return Relation(left.columns + right.columns, out)

    def vectorized(self, ctx, node):
        # Same matches as the tuple interpreter; only the charge differs.
        return _v_join(ctx, node, ctx.cost_model.nested_loop_join)

    def morsel(self, ctx, node):
        return _p_join(ctx, node, ctx.cost_model.nested_loop_join)


@register(P.CrossJoin)
class CrossJoinOp(PhysicalOperator):
    """Cartesian product, left-major order; never morsel-split."""

    def row(self, ctx, node):
        left = ctx.run(node.children[0])
        right = ctx.run(node.children[1])
        out = [l + r for l in left.rows for r in right.rows]
        ctx.charge(
            node, ctx.cost_model.cross_join(len(left.rows), len(right.rows))
        )
        return Relation(left.columns + right.columns, out)

    def vectorized(self, ctx, node):
        left = ctx.run(node.children[0])
        right = ctx.run(node.children[1])
        il, ir = cross_indices(len(left), len(right))
        out = ColumnarRelation(
            left.columns + right.columns,
            [a[il] for a in left.arrays] + [a[ir] for a in right.arrays],
            n_rows=len(il),
        )
        ctx.charge(node, ctx.cost_model.cross_join(len(left), len(right)))
        return out
