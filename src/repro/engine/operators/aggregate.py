"""HashAggregate: grouped and global aggregation in all three backends.

The columnar helpers here (:func:`aggregate_columnar`,
:func:`merge_partials`, :func:`global_aggregate`) are shared with the
fused-pipeline operator, which runs the same aggregation over a
filtered-but-never-materialized input. Both helpers record the
aggregate node's actual output cardinality via ``ctx.count`` — the
group count *before* any LIMIT — so per-node actual-row telemetry is
identical whether the aggregate ran standalone or absorbed into a fused
tail.

Group output order is first-appearance order of each key among input
rows, in every backend (the stable argsort recovers it vectorized; the
morsel merge assigns positions in morsel order, which equals it).
"""

import numpy as np

from repro.common import ExecutionError
from repro.engine import plans as P
from repro.engine.operators.base import (
    ColumnarRelation,
    PhysicalOperator,
    Relation,
    register,
)
from repro.engine.operators.kernels import agg_partial, factorize, segment_reduce


def output_columns(node):
    """Column labels of an aggregate's output relation."""
    return list(node.group_by) + [
        ("agg", "%s_%d" % (a.func, i)) for i, a in enumerate(node.aggregates)
    ]


def global_aggregate(agg, arr, n):
    """One global aggregate value over a full column (or ``None``)."""
    if agg.func == "count":
        return n
    if n == 0:
        return None
    if arr.dtype == object:
        col = arr.tolist()
        if agg.func == "sum":
            return sum(col)
        if agg.func == "avg":
            return sum(col) / len(col)
        if agg.func == "min":
            return min(col)
        if agg.func == "max":
            return max(col)
    else:
        if agg.func == "sum":
            return arr.sum()
        if agg.func == "avg":
            return arr.sum() / n
        if agg.func == "min":
            return arr.min()
        if agg.func == "max":
            return arr.max()
    raise ExecutionError("unknown aggregate %r" % (agg.func,))


def aggregate_columnar(ctx, node, child):
    """Single-threaded grouped/global aggregation over ``child``."""
    n = len(child)
    key_pos = [child.col_pos(t, c) for t, c in node.group_by]
    agg_pos = [
        None if a.column is None else child.col_pos(a.table, a.column)
        for a in node.aggregates
    ]
    columns = output_columns(node)
    if not key_pos:
        # Global aggregate: always exactly one output row, even on empty
        # input (count -> 0, other aggregates -> None).
        values = []
        for agg, pos in zip(node.aggregates, agg_pos):
            values.append(
                global_aggregate(
                    agg, None if pos is None else child.arrays[pos], n
                )
            )
        arrays = []
        for v in values:
            if v is None:
                a = np.empty(1, dtype=object)
                a[0] = None
            else:
                a = np.asarray([v])
            arrays.append(a)
        ctx.charge(node, ctx.cost_model.aggregate(n, 1))
        ctx.count(node, 1)
        return ColumnarRelation(columns, arrays, n_rows=1)
    if n == 0:
        ctx.charge(node, ctx.cost_model.aggregate(0, 0))
        ctx.count(node, 0)
        arrays = [np.empty(0, dtype=object) for __ in columns]
        return ColumnarRelation(columns, arrays, n_rows=0)
    codes = factorize([child.arrays[p] for p in key_pos])
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    seg_starts = np.flatnonzero(
        np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
    )
    counts = np.diff(np.r_[seg_starts, n])
    first_rows = order[seg_starts]  # stable sort -> global first occurrence
    group_rank = np.argsort(first_rows, kind="stable")  # appearance order
    key_arrays = [
        child.arrays[p][first_rows[group_rank]] for p in key_pos
    ]
    agg_arrays = []
    for agg, pos in zip(node.aggregates, agg_pos):
        if agg.func == "count":
            vals = counts
        else:
            vals = segment_reduce(
                agg.func, child.arrays[pos][order], seg_starts, counts
            )
        agg_arrays.append(np.asarray(vals)[group_rank])
    n_groups = len(counts)
    ctx.charge(node, ctx.cost_model.aggregate(n, n_groups))
    ctx.count(node, n_groups)
    return ColumnarRelation(columns, key_arrays + agg_arrays, n_rows=n_groups)


def merge_partials(ctx, node, parts, n_input):
    """Merge per-morsel partial aggregates, in morsel order.

    The first morsel that contains a key defines its output position,
    which equals the sequential first-appearance order. AVG partials
    carry ``(sum, count)`` and divide once here. The aggregate charge
    uses ``n_input`` — the operator's logical input cardinality — so
    accounting is identical to the single-threaded paths.
    """
    group_index = {}
    merged_keys = []
    merged = [[] for __ in node.aggregates]
    for group_keys, states in parts:
        for local, key in enumerate(group_keys):
            g = group_index.get(key)
            if g is None:
                g = group_index[key] = len(merged_keys)
                merged_keys.append(key)
                for state, agg_states in zip(states, merged):
                    agg_states.append(state[local])
                continue
            for agg, state, agg_states in zip(
                node.aggregates, states, merged
            ):
                if agg.func in ("count", "sum"):
                    agg_states[g] = agg_states[g] + state[local]
                elif agg.func == "min":
                    agg_states[g] = min(agg_states[g], state[local])
                elif agg.func == "max":
                    agg_states[g] = max(agg_states[g], state[local])
                else:  # avg carries (sum, count) partials
                    s, c = agg_states[g]
                    ds, dc = state[local]
                    agg_states[g] = (s + ds, c + dc)
    n_groups = len(merged_keys)
    key_arrays = [
        np.asarray(col)
        for col in ([list(c) for c in zip(*merged_keys)] or
                    [[] for __ in node.group_by])
    ]
    agg_arrays = []
    for agg, agg_states in zip(node.aggregates, merged):
        if agg.func == "avg":
            agg_states = [s / c for s, c in agg_states]
        agg_arrays.append(np.asarray(agg_states))
    ctx.charge(node, ctx.cost_model.aggregate(n_input, n_groups))
    ctx.count(node, n_groups)
    return ColumnarRelation(output_columns(node), key_arrays + agg_arrays,
                            n_rows=n_groups)


@register(P.HashAggregate)
class HashAggregateOp(PhysicalOperator):
    """Group-by + aggregate evaluation via hashing."""

    def row(self, ctx, node):
        child = ctx.run(node.children[0])
        key_pos = [child.col_pos(t, c) for t, c in node.group_by]
        agg_pos = []
        for agg in node.aggregates:
            if agg.column is None:
                agg_pos.append(None)
            else:
                agg_pos.append(child.col_pos(agg.table, agg.column))
        groups = {}
        for row in child.rows:
            key = tuple(row[p] for p in key_pos)
            groups.setdefault(key, []).append(row)
        if not groups and not node.group_by:
            groups[()] = []
        out = []
        for key, rows in groups.items():
            values = []
            for agg, pos in zip(node.aggregates, agg_pos):
                if agg.func == "count":
                    values.append(len(rows))
                    continue
                col = [r[pos] for r in rows]
                if not col:
                    values.append(None)
                elif agg.func == "sum":
                    values.append(sum(col))
                elif agg.func == "avg":
                    values.append(sum(col) / len(col))
                elif agg.func == "min":
                    values.append(min(col))
                elif agg.func == "max":
                    values.append(max(col))
                else:
                    raise ExecutionError("unknown aggregate %r" % (agg.func,))
            out.append(key + tuple(values))
        ctx.charge(node, ctx.cost_model.aggregate(len(child.rows), len(out)))
        return Relation(output_columns(node), out)

    def vectorized(self, ctx, node):
        return aggregate_columnar(ctx, node, ctx.run(node.children[0]))

    def morsel(self, ctx, node):
        child = ctx.run(node.children[0])
        n = len(child)
        key_pos = [child.col_pos(t, c) for t, c in node.group_by]
        slices = ctx.morsels(n) if key_pos else []
        if not slices:
            # Global aggregates (always one output row) and sub-morsel
            # inputs take the single-threaded path.
            return aggregate_columnar(ctx, node, child)
        key_cols = [child.arrays[p] for p in key_pos]
        agg_cols = [
            None if a.column is None
            else child.arrays[child.col_pos(a.table, a.column)]
            for a in node.aggregates
        ]

        def partial(i):
            start, stop = slices[i]
            return agg_partial(
                node.aggregates,
                [k[start:stop] for k in key_cols],
                [None if c is None else c[start:stop] for c in agg_cols],
            )

        parts = ctx.pmap(node, partial, len(slices))
        return merge_partials(ctx, node, parts, n)
