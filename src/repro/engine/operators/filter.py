"""Filter and Project operators (Project includes DISTINCT dedup).

Filter's vectorized mask goes through ``ctx.mask`` and therefore splits
into morsels in parallel mode without a dedicated morsel backend.
Project's morsel backend parallelizes DISTINCT pre-deduplication: each
morsel keeps its local first occurrences and a single-threaded merge
walks the surviving candidates in global row order, so the final keep
set equals the sequential first-occurrence dedup exactly.
"""

import numpy as np

from repro.engine import plans as P
from repro.engine.operators.base import (
    ColumnarRelation,
    PhysicalOperator,
    Relation,
    eval_predicates,
    register,
)
from repro.engine.operators.kernels import factorize


@register(P.Filter)
class FilterOp(PhysicalOperator):
    """Standalone predicate filter (predicates not pushed into a scan)."""

    def row(self, ctx, node):
        child = ctx.run(node.children[0])
        ctx.charge(
            node, ctx.cost_model.params["cpu_tuple_cost"] * len(child.rows)
        )
        rows = eval_predicates(child, node.predicates)
        return Relation(child.columns, rows)

    def vectorized(self, ctx, node):
        child = ctx.run(node.children[0])
        ctx.charge(node, ctx.cost_model.params["cpu_tuple_cost"] * len(child))
        if node.predicates:
            child = child.take(ctx.mask(node, child, node.predicates))
        return child


@register(P.Project)
class ProjectOp(PhysicalOperator):
    """Column projection with optional first-occurrence DISTINCT."""

    def row(self, ctx, node):
        child = ctx.run(node.children[0])
        positions = [child.col_pos(t, c) for t, c in node.columns]
        ctx.charge(
            node, ctx.cost_model.params["cpu_tuple_cost"] * len(child.rows)
        )
        rows = [tuple(row[p] for p in positions) for row in child.rows]
        if node.distinct:
            seen = set()
            deduped = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            rows = deduped
        return Relation(node.columns, rows)

    def vectorized(self, ctx, node):
        child = ctx.run(node.children[0])
        positions = [child.col_pos(t, c) for t, c in node.columns]
        ctx.charge(node, ctx.cost_model.params["cpu_tuple_cost"] * len(child))
        arrays = [child.arrays[p] for p in positions]
        n = len(child)
        if node.distinct and n:
            codes = factorize(arrays)
            __, first = np.unique(codes, return_index=True)
            keep = np.sort(first)  # first-occurrence order, like the dict dedup
            arrays = [a[keep] for a in arrays]
            n = len(keep)
        return ColumnarRelation(node.columns, arrays, n_rows=n)

    def morsel(self, ctx, node):
        child = ctx.run(node.children[0])
        positions = [child.col_pos(t, c) for t, c in node.columns]
        ctx.charge(node, ctx.cost_model.params["cpu_tuple_cost"] * len(child))
        arrays = [child.arrays[p] for p in positions]
        n = len(child)
        slices = ctx.morsels(n) if node.distinct else []
        if node.distinct and not slices and n:
            codes = factorize(arrays)
            __, first = np.unique(codes, return_index=True)
            keep = np.sort(first)
            arrays = [a[keep] for a in arrays]
            n = len(keep)
        elif slices:
            # Parallel partial dedup: each morsel keeps its local first
            # occurrences; the single-threaded merge then walks the
            # surviving candidates in global row order, so the final keep
            # set is the global first occurrence per key — identical to
            # the sequential dedup.
            def local_firsts(i):
                start, stop = slices[i]
                codes = factorize([a[start:stop] for a in arrays])
                __, first = np.unique(codes, return_index=True)
                return np.sort(first) + start

            candidates = np.concatenate(
                ctx.pmap(node, local_firsts, len(slices))
            )
            seen = set()
            keep = []
            candidate_rows = zip(
                *(a[candidates].tolist() for a in arrays)
            )
            for idx, key in zip(candidates.tolist(), candidate_rows):
                if key not in seen:
                    seen.add(key)
                    keep.append(idx)
            keep = np.asarray(keep, dtype=np.int64)
            arrays = [a[keep] for a in arrays]
            n = len(keep)
        return ColumnarRelation(node.columns, arrays, n_rows=n)
