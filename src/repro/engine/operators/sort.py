"""Sort and Limit operators.

Both are order-defining, so they never split into morsels: in parallel
mode they run their vectorized backends single-threaded (the engine-wide
fallback), acting as the merge phase that pins down output order.
"""

from repro.engine import plans as P
from repro.engine.operators.base import (
    ColumnarRelation,
    PhysicalOperator,
    Relation,
    register,
)
from repro.engine.operators.kernels import stable_sort_indices


@register(P.Sort)
class SortOp(PhysicalOperator):
    """Stable sort on one key."""

    def row(self, ctx, node):
        child = ctx.run(node.children[0])
        pos = child.col_pos(*node.key)
        ctx.charge(node, ctx.cost_model.sort(len(child.rows)))
        rows = sorted(child.rows, key=lambda r: r[pos],
                      reverse=node.descending)
        return Relation(child.columns, rows)

    def vectorized(self, ctx, node):
        child = ctx.run(node.children[0])
        pos = child.col_pos(*node.key)
        ctx.charge(node, ctx.cost_model.sort(len(child)))
        if len(child) == 0:
            return child
        idx = stable_sort_indices(child.arrays[pos], node.descending)
        return child.take(idx)


@register(P.Limit)
class LimitOp(PhysicalOperator):
    """Truncate output to the first ``n`` rows (charge-free)."""

    def row(self, ctx, node):
        child = ctx.run(node.children[0])
        return Relation(child.columns, child.rows[: node.n])

    def vectorized(self, ctx, node):
        child = ctx.run(node.children[0])
        if node.n >= len(child):
            return child
        return ColumnarRelation(
            child.columns, [a[: node.n] for a in child.arrays], n_rows=node.n
        )
