"""Scan operators: SeqScan, IndexScan, ViewScan, EmptyResult.

Scans are leaves — they read base-table (or materialized-view) storage
into a relation and apply pushed-down predicates. The vectorized backend
builds the predicate mask through ``ctx.mask``, which splits into morsels
in parallel mode, so scans need no dedicated morsel backend.
"""

import numpy as np

from repro.common import ExecutionError
from repro.engine import plans as P
from repro.engine.operators.base import (
    ColumnarRelation,
    PhysicalOperator,
    Relation,
    eval_predicates,
    register,
)


def table_relation(ctx, table_name):
    """``(table, column_labels)`` for a base table (row backend)."""
    table = ctx.catalog.table(table_name)
    columns = [(table.name, c.name) for c in table.schema.columns]
    return table, columns


def v_table_relation(ctx, table_name, row_ids=None):
    """``(table, ColumnarRelation)`` of a base table's column arrays."""
    table = ctx.catalog.table(table_name)
    columns = [(table.name, c.name) for c in table.schema.columns]
    data = table.column_arrays(row_ids)
    arrays = [data[c.name.lower()] for c in table.schema.columns]
    n = table.n_rows if row_ids is None else len(row_ids)
    return table, ColumnarRelation(columns, arrays, n_rows=n)


def index_row_ids(ctx, node):
    """Resolve an IndexScan's probe to a sorted NumPy row-id array."""
    idx = None
    for cand in ctx.catalog.indexes(node.table):
        if cand.name == node.index_name:
            idx = cand
            break
    if idx is None:
        raise ExecutionError("index %r not found" % (node.index_name,))
    if idx.hypothetical:
        raise ExecutionError(
            "cannot execute a plan using hypothetical index %r" % (idx.name,)
        )
    pred = node.predicate
    structure = idx.structure
    if pred.op == "=":
        row_ids = structure.search(pred.value)
    elif idx.kind == "hash":
        raise ExecutionError("hash index supports only equality probes")
    elif pred.op == "<":
        row_ids = structure.range_search(high=pred.value, inclusive=(True, False))
    elif pred.op == "<=":
        row_ids = structure.range_search(high=pred.value, inclusive=(True, True))
    elif pred.op == ">":
        row_ids = structure.range_search(low=pred.value, inclusive=(False, True))
    elif pred.op == ">=":
        row_ids = structure.range_search(low=pred.value, inclusive=(True, True))
    else:
        raise ExecutionError("index scan cannot evaluate %r" % (pred,))
    return np.sort(np.asarray(row_ids, dtype=np.int64))


@register(P.SeqScan)
class SeqScanOp(PhysicalOperator):
    """Full table scan applying pushed-down predicates."""

    def row(self, ctx, node):
        table, columns = table_relation(ctx, node.table)
        ctx.charge(node, ctx.cost_model.seq_scan(table.n_rows))
        relation = Relation(columns, table.rows())
        rows = eval_predicates(relation, node.predicates)
        return Relation(columns, rows)

    def vectorized(self, ctx, node):
        table, rel = v_table_relation(ctx, node.table)
        ctx.charge(node, ctx.cost_model.seq_scan(table.n_rows))
        if node.predicates:
            rel = rel.take(ctx.mask(node, rel, node.predicates))
        return rel


@register(P.IndexScan)
class IndexScanOp(PhysicalOperator):
    """Index probe/range scan plus residual predicates."""

    def row(self, ctx, node):
        row_ids = index_row_ids(ctx, node)
        table, columns = table_relation(ctx, node.table)
        ctx.charge(node, ctx.cost_model.index_scan(len(row_ids)))
        relation = Relation(columns, table.rows(row_ids))
        rows = eval_predicates(relation, node.residual)
        return Relation(columns, rows)

    def vectorized(self, ctx, node):
        row_ids = index_row_ids(ctx, node)
        __, rel = v_table_relation(ctx, node.table, row_ids)
        ctx.charge(node, ctx.cost_model.index_scan(len(row_ids)))
        if node.residual:
            rel = rel.take(ctx.mask(node, rel, node.residual))
        return rel


@register(P.ViewScan)
class ViewScanOp(PhysicalOperator):
    """Scan of a materialized view with residual predicates."""

    def row(self, ctx, node):
        view_table = node.view.table
        columns = []
        for name in view_table.schema.column_names:
            t, __, c = name.partition("__")
            columns.append((t, c))
        ctx.charge(node, ctx.cost_model.seq_scan(view_table.n_rows))
        relation = Relation(columns, view_table.rows())
        rows = eval_predicates(relation, node.residual)
        return Relation(columns, rows)

    def vectorized(self, ctx, node):
        view_table = node.view.table
        columns = []
        arrays = []
        for name in view_table.schema.column_names:
            t, __, c = name.partition("__")
            columns.append((t, c))
            arrays.append(view_table.column_array(name))
        ctx.charge(node, ctx.cost_model.seq_scan(view_table.n_rows))
        rel = ColumnarRelation(columns, arrays, n_rows=view_table.n_rows)
        if node.residual:
            rel = rel.take(ctx.mask(node, rel, node.residual))
        return rel


@register(P.EmptyResult)
class EmptyResultOp(PhysicalOperator):
    """Zero-row result (contradictory predicates, LIMIT 0)."""

    def row(self, ctx, node):
        return Relation(node.columns, [])

    def vectorized(self, ctx, node):
        arrays = [np.empty(0, dtype=object) for __ in node.columns]
        return ColumnarRelation(node.columns, arrays, n_rows=0)
