"""Scan operators: SeqScan, IndexScan, ViewScan, EmptyResult.

Scans are leaves — they read base-table (or materialized-view) storage
into a relation and apply pushed-down predicates. The vectorized SeqScan
works segment-at-a-time: each row group's zone maps are classified
against the pushed-down predicates (skipping groups that provably match
nothing), surviving groups evaluate the predicates in *encoded* space
(dictionary codes / run values), and only surviving rows are decoded. In
parallel mode row groups are the natural morsel boundaries — each group
is one pool task. Pruning never changes rows, order, or charged work;
the flat-layout results are reproduced bit for bit.
"""

import numpy as np

from repro.common import ExecutionError
from repro.engine import plans as P
from repro.engine.operators.base import (
    ColumnarRelation,
    PhysicalOperator,
    Relation,
    eval_predicates,
    register,
)
from repro.engine.segments import PARTIAL, PRUNED


def table_relation(ctx, table_name):
    """``(table, column_labels)`` for a base table (row backend)."""
    table = ctx.catalog.table(table_name)
    columns = [(table.name, c.name) for c in table.schema.columns]
    return table, columns


def v_table_relation(ctx, table_name, row_ids=None):
    """``(table, ColumnarRelation)`` of a base table's column arrays."""
    table = ctx.catalog.table(table_name)
    columns = [(table.name, c.name) for c in table.schema.columns]
    data = table.column_arrays(row_ids)
    arrays = [data[c.name.lower()] for c in table.schema.columns]
    n = table.n_rows if row_ids is None else len(row_ids)
    return table, ColumnarRelation(columns, arrays, n_rows=n)


def segment_filter(group, predicates, pruning):
    """Survivor row ids of one row group under a predicate conjunction.

    Returns ``(ids, was_pruned)``: ``ids`` is ``None`` when every row
    survives (no decoding needed to know that), otherwise an int64 array
    of group-local row ids; ``was_pruned`` marks a zone-map skip. A group
    is only skipped when no predicate is hazardous to leave unevaluated
    (see :meth:`ZoneMap.range_hazard`) — hazardous predicates are always
    evaluated so the segmented path raises exactly where the flat path
    would.
    """
    residual = []
    hazards = []
    pruned = False
    for p in predicates:
        seg = group.segments[p.column.lower()]
        zone = seg.zone_map
        if zone.range_hazard(p.op, p.value):
            residual.append(p)
            hazards.append(p)
            continue
        if not pruning:
            residual.append(p)
            continue
        verdict = zone.classify(p.op, p.value)
        if verdict == PRUNED:
            pruned = True
        elif verdict == PARTIAL:
            residual.append(p)
        # FULL: every row provably passes — the predicate drops out.
    if pruned:
        for p in hazards:
            group.segments[p.column.lower()].mask(p.op, p.value)
        return np.empty(0, dtype=np.int64), True
    mask = None
    for p in residual:
        m = group.segments[p.column.lower()].mask(p.op, p.value)
        mask = m if mask is None else mask & m
    if mask is None:
        return None, False
    return np.flatnonzero(mask), False


def gather_group(group, keys, ids):
    """Materialize ``keys`` columns of one group's surviving rows.

    Returns ``(arrays, bytes_decoded)``; ``ids=None`` decodes the whole
    group. ``bytes_decoded`` is the modeled encoded footprint of every
    segment that was materialized.
    """
    segs = [group.segments[k] for k in keys]
    if ids is None:
        arrays = [s.decode() for s in segs]
    else:
        arrays = [s.take(ids) for s in segs]
    return arrays, sum(s.encoded_bytes() for s in segs)


def index_row_ids(ctx, node):
    """Resolve an IndexScan's probe to a sorted NumPy row-id array."""
    idx = None
    for cand in ctx.catalog.indexes(node.table):
        if cand.name == node.index_name:
            idx = cand
            break
    if idx is None:
        raise ExecutionError("index %r not found" % (node.index_name,))
    if idx.hypothetical:
        raise ExecutionError(
            "cannot execute a plan using hypothetical index %r" % (idx.name,)
        )
    pred = node.predicate
    structure = idx.structure
    if pred.op == "=":
        row_ids = structure.search(pred.value)
    elif idx.kind == "hash":
        raise ExecutionError("hash index supports only equality probes")
    elif pred.op == "<":
        row_ids = structure.range_search(high=pred.value, inclusive=(True, False))
    elif pred.op == "<=":
        row_ids = structure.range_search(high=pred.value, inclusive=(True, True))
    elif pred.op == ">":
        row_ids = structure.range_search(low=pred.value, inclusive=(False, True))
    elif pred.op == ">=":
        row_ids = structure.range_search(low=pred.value, inclusive=(True, True))
    else:
        raise ExecutionError("index scan cannot evaluate %r" % (pred,))
    return np.sort(np.asarray(row_ids, dtype=np.int64))


@register(P.SeqScan)
class SeqScanOp(PhysicalOperator):
    """Full table scan applying pushed-down predicates."""

    def row(self, ctx, node):
        table, columns = table_relation(ctx, node.table)
        ctx.charge(node, ctx.cost_model.seq_scan(table.n_rows))
        relation = Relation(columns, table.rows())
        rows = eval_predicates(relation, node.predicates)
        return Relation(columns, rows)

    def vectorized(self, ctx, node):
        table = ctx.catalog.table(node.table)
        ctx.charge(node, ctx.cost_model.seq_scan(table.n_rows))
        columns = [(table.name, c.name) for c in table.schema.columns]
        keys = [c.name.lower() for c in table.schema.columns]
        groups = table.row_groups()
        pruning = ctx.pruning_enabled
        predicates = node.predicates

        def eval_group(i):
            g = groups[i]
            ids, was_pruned = segment_filter(g, predicates, pruning)
            if was_pruned:
                return 0, None, 0, True
            if ids is not None and len(ids) == 0:
                return 0, None, 0, False
            n_out = g.n_rows if ids is None else len(ids)
            arrays, nbytes = gather_group(g, keys, ids)
            return n_out, arrays, nbytes, False

        if (ctx.mode == "parallel" and len(groups) >= 2
                and node.morsel_parallel):
            results = ctx.pmap(node, eval_group, len(groups))
        else:
            results = [eval_group(i) for i in range(len(groups))]
        ctx.record_segments(
            len(groups),
            sum(1 for r in results if r[3]),
            sum(r[2] for r in results),
        )
        survivors = [r for r in results if r[1] is not None]
        n = sum(r[0] for r in survivors)
        arrays = []
        for j, col in enumerate(table.schema.columns):
            parts = [r[1][j] for r in survivors]
            if not parts:
                arrays.append(np.empty(0, dtype=col.dtype.numpy_dtype))
            elif len(parts) == 1:
                arrays.append(parts[0])
            else:
                arrays.append(np.concatenate(parts))
        return ColumnarRelation(columns, arrays, n_rows=n)


@register(P.IndexScan)
class IndexScanOp(PhysicalOperator):
    """Index probe/range scan plus residual predicates."""

    def row(self, ctx, node):
        row_ids = index_row_ids(ctx, node)
        table, columns = table_relation(ctx, node.table)
        ctx.charge(node, ctx.cost_model.index_scan(len(row_ids)))
        relation = Relation(columns, table.rows(row_ids))
        rows = eval_predicates(relation, node.residual)
        return Relation(columns, rows)

    def vectorized(self, ctx, node):
        row_ids = index_row_ids(ctx, node)
        __, rel = v_table_relation(ctx, node.table, row_ids)
        ctx.charge(node, ctx.cost_model.index_scan(len(row_ids)))
        if node.residual:
            rel = rel.take(ctx.mask(node, rel, node.residual))
        return rel


@register(P.ViewScan)
class ViewScanOp(PhysicalOperator):
    """Scan of a materialized view with residual predicates."""

    def row(self, ctx, node):
        view_table = node.view.table
        columns = []
        for name in view_table.schema.column_names:
            t, __, c = name.partition("__")
            columns.append((t, c))
        ctx.charge(node, ctx.cost_model.seq_scan(view_table.n_rows))
        relation = Relation(columns, view_table.rows())
        rows = eval_predicates(relation, node.residual)
        return Relation(columns, rows)

    def vectorized(self, ctx, node):
        view_table = node.view.table
        columns = []
        arrays = []
        for name in view_table.schema.column_names:
            t, __, c = name.partition("__")
            columns.append((t, c))
            arrays.append(view_table.column_array(name))
        ctx.charge(node, ctx.cost_model.seq_scan(view_table.n_rows))
        rel = ColumnarRelation(columns, arrays, n_rows=view_table.n_rows)
        if node.residual:
            rel = rel.take(ctx.mask(node, rel, node.residual))
        return rel


@register(P.EmptyResult)
class EmptyResultOp(PhysicalOperator):
    """Zero-row result (contradictory predicates, LIMIT 0)."""

    def row(self, ctx, node):
        return Relation(node.columns, [])

    def vectorized(self, ctx, node):
        arrays = [np.empty(0, dtype=object) for __ in node.columns]
        return ColumnarRelation(node.columns, arrays, n_rows=0)
