"""Table/column statistics: equi-depth histograms and selectivity math.

This is the *traditional* estimation machinery that the learned estimators
in :mod:`repro.ai4db.optimization` are benchmarked against. It deliberately
makes the classic assumptions — uniformity within buckets, attribute-value
independence across predicates — because those assumptions are exactly what
the learned approaches the tutorial surveys were built to fix.
"""

from collections import Counter

import numpy as np

from repro.common import CatalogError
from repro.engine.types import DataType


class EquiDepthHistogram:
    """Most-common values + equi-depth histogram over a numeric column.

    Mirrors the PostgreSQL statistics design: values frequent enough to
    distort an equi-depth bucketing are pulled out into an exact MCV list,
    and the histogram covers only the residual distribution. Without the
    MCV list, heavy hitters collapse quantile edges and wreck both point
    and range estimates.
    """

    def __init__(self, edges, counts, n_distinct, mcv=None, total=None):
        self.edges = np.asarray(edges, dtype=float)
        self.counts = np.asarray(counts, dtype=float)
        if len(self.edges) != len(self.counts) + 1:
            raise CatalogError("histogram needs len(edges) == len(counts)+1")
        self.n_distinct = max(1, int(n_distinct))
        #: exact counts of the most common values (value -> count)
        self.mcv = dict(mcv or {})
        self._mcv_total = float(sum(self.mcv.values()))
        self._resid_total = float(self.counts.sum())
        self.total = float(total) if total is not None else (
            self._mcv_total + self._resid_total
        )
        resid_ndv = self.n_distinct - len(self.mcv)
        self._resid_ndv = max(1, resid_ndv)

    @classmethod
    def build(cls, values, n_buckets=32):
        """Build from raw values: extract MCVs, bucket the residual."""
        values = np.asarray(values, dtype=float)
        values = values[~np.isnan(values)]
        if values.size == 0:
            return cls(np.array([0.0, 0.0]), np.array([0.0]), 1)
        uniq, freq = np.unique(values, return_counts=True)
        ndv = len(uniq)
        threshold = max(2.0, values.size / max(1, n_buckets))
        heavy = freq >= threshold
        mcv = {float(v): int(c) for v, c in zip(uniq[heavy], freq[heavy])}
        residual = values[~np.isin(values, uniq[heavy])]
        if residual.size == 0:
            lo = float(uniq[0])
            return cls(np.array([lo, lo]), np.array([0.0]), ndv, mcv=mcv)
        buckets = max(1, min(n_buckets, residual.size))
        qs = np.linspace(0.0, 1.0, buckets + 1)
        edges = np.unique(np.quantile(residual, qs))
        if len(edges) == 1:
            edges = np.array([edges[0], edges[0]])
        counts, __ = np.histogram(residual, bins=edges)
        return cls(edges, counts.astype(float), ndv, mcv=mcv)

    @property
    def min(self):
        """Column minimum (MCVs included)."""
        lo = float(self.edges[0])
        if self.mcv:
            lo = min(lo, min(self.mcv)) if self._resid_total else min(self.mcv)
        return lo

    @property
    def max(self):
        """Column maximum (MCVs included)."""
        hi = float(self.edges[-1])
        if self.mcv:
            hi = max(hi, max(self.mcv)) if self._resid_total else max(self.mcv)
        return hi

    def _resid_fraction_below(self, x, inclusive):
        """Fraction of *residual* values < x (or <= x when inclusive)."""
        if self._resid_total == 0:
            return 0.0
        if x < self.edges[0]:
            return 0.0
        if x > self.edges[-1] or (inclusive and x == self.edges[-1]):
            return 1.0
        acc = 0.0
        for i in range(len(self.counts)):
            lo, hi = self.edges[i], self.edges[i + 1]
            if x >= hi:
                acc += self.counts[i]
                continue
            if x <= lo:
                break
            span = hi - lo
            frac = (x - lo) / span if span > 0 else 0.5
            acc += self.counts[i] * frac
            break
        return min(1.0, acc / self._resid_total)

    def _fraction_below(self, x, inclusive):
        """Estimated fraction of all values < x (or <= x when inclusive)."""
        if self.total == 0:
            return 0.0
        mcv_below = sum(
            c for v, c in self.mcv.items()
            if v < x or (inclusive and v == x)
        )
        resid = self._resid_fraction_below(x, inclusive) * self._resid_total
        return min(1.0, (mcv_below + resid) / self.total)

    def selectivity(self, op, value):
        """Estimated selectivity of ``column <op> value``.

        Supported ops: ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.
        Equality on an MCV is exact; otherwise it uses the uniform-
        frequency assumption over the residual distinct values.
        """
        value = float(value)
        if op == "=":
            if self.total == 0:
                return 0.0
            if value in self.mcv:
                return self.mcv[value] / self.total
            if self._resid_total == 0:
                return 0.0
            if value < self.edges[0] or value > self.edges[-1]:
                return 0.0
            return (self._resid_total / self.total) / self._resid_ndv
        if op == "!=":
            return 1.0 - self.selectivity("=", value)
        if op == "<":
            return self._fraction_below(value, inclusive=False)
        if op == "<=":
            return self._fraction_below(value, inclusive=True)
        if op == ">":
            return 1.0 - self._fraction_below(value, inclusive=True)
        if op == ">=":
            return 1.0 - self._fraction_below(value, inclusive=False)
        raise CatalogError("unsupported operator %r" % (op,))

    def range_selectivity(self, low, high):
        """Estimated selectivity of ``low <= column <= high``."""
        if high < low:
            return 0.0
        return max(
            0.0,
            self._fraction_below(high, inclusive=True)
            - self._fraction_below(low, inclusive=False),
        )


class ColumnStats:
    """Statistics for one column: bounds, distinct count, histogram."""

    def __init__(self, name, dtype, n_rows, n_distinct, histogram=None,
                 top_values=None):
        self.name = name
        self.dtype = dtype
        self.n_rows = int(n_rows)
        self.n_distinct = max(1, int(n_distinct))
        self.histogram = histogram
        # (value -> frequency) for the most common values; used for TEXT.
        self.top_values = dict(top_values or {})

    @classmethod
    def build(cls, name, dtype, values, n_buckets=32, n_top=10):
        """Collect stats from a column array."""
        n_rows = len(values)
        if dtype is DataType.TEXT:
            # Hash-based counting: nullable TEXT columns hold None, which
            # sort-based np.unique cannot order. NULLs are excluded from
            # the NDV and the MCV list, as in PostgreSQL's stats.
            freq = Counter(v for v in values if v is not None)
            top = {
                str(v): int(c)
                for v, c in sorted(freq.items(), key=lambda kv: -kv[1])[:n_top]
            }
            return cls(name, dtype, n_rows, len(freq), histogram=None,
                       top_values=top)
        hist = EquiDepthHistogram.build(values, n_buckets=n_buckets)
        return cls(name, dtype, n_rows, hist.n_distinct, histogram=hist)

    @classmethod
    def build_from_counts(cls, name, dtype, counts, n_buckets=32, n_top=10):
        """Collect stats from a merged ``{value: count}`` map.

        The incremental ANALYZE path: segment value counts (free for
        dictionary segments, one pass over the runs for RLE) merge into
        ``counts`` instead of re-scanning the decoded column. Results
        are identical to :meth:`build` on the raw values — the merge
        preserves first-appearance order, so TEXT most-common-value ties
        resolve the same way, and numeric histograms are built from the
        expanded multiset, which equals the raw column's multiset.
        """
        n_rows = sum(counts.values())
        if dtype is DataType.TEXT:
            freq = {v: c for v, c in counts.items() if v is not None}
            top = {
                str(v): int(c)
                for v, c in sorted(freq.items(), key=lambda kv: -kv[1])[:n_top]
            }
            return cls(name, dtype, n_rows, len(freq), histogram=None,
                       top_values=top)
        values = np.repeat(
            np.asarray(list(counts), dtype=float),
            np.asarray(list(counts.values()), dtype=np.int64),
        )
        hist = EquiDepthHistogram.build(values, n_buckets=n_buckets)
        return cls(name, dtype, n_rows, hist.n_distinct, histogram=hist)

    def selectivity(self, op, value):
        """Selectivity of ``column <op> value`` using histogram or NDV."""
        if self.n_rows == 0:
            return 0.0
        if self.dtype is DataType.TEXT:
            if op == "=":
                key = str(value)
                if key in self.top_values:
                    return self.top_values[key] / self.n_rows
                return 1.0 / self.n_distinct
            if op == "!=":
                return 1.0 - self.selectivity("=", value)
            # Range predicates on text: fall back to a fixed guess, as real
            # systems do without collation histograms.
            return 1.0 / 3.0
        if self.histogram is None:
            return 1.0 / self.n_distinct if op == "=" else 1.0 / 3.0
        return self.histogram.selectivity(op, value)

    @property
    def min(self):
        """Column minimum (numeric columns only; None for TEXT)."""
        return self.histogram.min if self.histogram is not None else None

    @property
    def max(self):
        """Column maximum (numeric columns only; None for TEXT)."""
        return self.histogram.max if self.histogram is not None else None


class TableStats:
    """Statistics for one table: row count plus per-column stats."""

    def __init__(self, table_name, n_rows, column_stats):
        self.table_name = table_name
        self.n_rows = int(n_rows)
        self.columns = {c.name.lower(): c for c in column_stats}

    @classmethod
    def build(cls, table, n_buckets=32):
        """Collect statistics from a :class:`repro.engine.storage.Table`.

        Prefers the incremental per-segment path: each column's cached
        segment value counts merge into one map
        (:meth:`~repro.engine.storage.Table.column_value_counts`), so
        ANALYZE never decodes a dictionary or RLE segment. Columns a
        segment cannot count exactly (NaN-bearing FLOAT) fall back to
        the decoded array; both paths produce identical statistics.
        """
        value_counts = getattr(table, "column_value_counts", None)
        col_stats = []
        for col in table.schema.columns:
            counts = None if value_counts is None else value_counts(col.name)
            if counts is not None:
                col_stats.append(
                    ColumnStats.build_from_counts(
                        col.name, col.dtype, counts, n_buckets=n_buckets
                    )
                )
                continue
            values = table.column_array(col.name)
            col_stats.append(
                ColumnStats.build(col.name, col.dtype, values, n_buckets=n_buckets)
            )
        return cls(table.name, table.n_rows, col_stats)

    def column(self, name):
        """Per-column stats for ``name``."""
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise CatalogError(
                "no statistics for column %r of table %r"
                % (name, self.table_name)
            )

    def has_column(self, name):
        """Whether stats exist for the column."""
        return name.lower() in self.columns
