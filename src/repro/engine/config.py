"""The consolidated engine configuration surface.

Three PRs of growth scattered the engine's knobs across ``Database``
kwargs and ``REPRO_*`` environment variables read in three different
modules. :class:`EngineConfig` is the single owner of every engine knob:
a frozen dataclass whose instances fully determine how a
:class:`~repro.engine.database.Database` is wired (executor mode, morsel
size, worker count, plan-cache capacity, enumerator, view matching, cost
constants, operator fusion), and :meth:`EngineConfig.from_env` is the one
place in the engine that reads ``REPRO_*`` environment variables:

======================== ============================ ====================
environment variable      field                        default
======================== ============================ ====================
``REPRO_EXECUTOR_MODE``   ``executor_mode``            ``"vectorized"``
``REPRO_MORSEL_SIZE``     ``morsel_rows``              16384 (floor 16)
``REPRO_PARALLEL_WORKERS`` ``parallel_workers``        CPU-derived
``REPRO_FUSION``          ``fusion_enabled``           on (``0``/``off``
                                                       disables)
``REPRO_FEEDBACK``        ``feedback_enabled``         off (``1``/``on``
                                                       enables)
``REPRO_SEGMENT_ROWS``    ``segment_rows``             65536 (floor 16)
``REPRO_SEGMENT_ENCODINGS`` ``segment_encodings``      ``dict,rle,plain``
``REPRO_ZONE_MAP_PRUNING`` ``zone_map_pruning``        on (``0``/``off``
                                                       disables)
``REPRO_CACHE_SCOPE``     ``cache_scope``              ``"table"``
``REPRO_ADMISSION_POLICY`` ``admission_policy``        ``"fifo"``
``REPRO_TENANT_QUOTA``    ``tenant_quota``             200000 work units
``REPRO_QUOTA_REFILL``    ``quota_refill_rate``        100000 work/s
``REPRO_ADMISSION_QUEUE_DEPTH`` ``admission_queue_depth`` 256
``REPRO_PLAN_SELECTOR``   ``plan_selector``            ``"cost"``
``REPRO_REGRET_CAP``      ``regret_cap``               2.0
``REPRO_SEED``            ``seed``                     0
======================== ============================ ====================

This module sits at the bottom of the engine's import graph (it imports
only :mod:`repro.common`), so :mod:`repro.engine.morsels` and
:mod:`repro.engine.executor` can delegate their env-derived defaults here
without cycles.
"""

import os
from dataclasses import dataclass, field, replace

from repro.common import ExecutionError, ReproError

#: Supported executor modes (first entry is the default).
EXECUTOR_MODES = ("vectorized", "row", "parallel")

#: Supported join enumerators.
ENUMERATORS = ("dp", "greedy", "random")

#: Default morsel size, in rows (the HyPer paper's ballpark).
DEFAULT_MORSEL_ROWS = 16384

#: Hard floor on the morsel size knob — smaller morsels are all overhead.
MIN_MORSEL_ROWS = 16

#: Default LRU capacity of the pipeline's plan (and lowered-query) cache.
DEFAULT_PLAN_CACHE_SIZE = 256

#: Default capacity of one sealed column segment, in rows.
DEFAULT_SEGMENT_ROWS = 65536

#: Hard floor on the segment size knob — smaller segments are all overhead.
MIN_SEGMENT_ROWS = 16

#: Encodings a segment may be sealed with (order is documentation only;
#: the selection rules live in :func:`repro.engine.segments.choose_encoding`).
SEGMENT_ENCODINGS = ("plain", "dict", "rle")

#: Default encoding set offered to the encoder at seal time.
DEFAULT_SEGMENT_ENCODINGS = ("dict", "rle", "plain")

#: Supported plan-cache invalidation scopes (first entry is the default).
CACHE_SCOPES = ("table", "global")

#: Admission policies the query server's controller supports (first entry
#: is the default): ``fifo`` queues over-quota queries in strict arrival
#: order, ``fair-share`` queues per tenant and grants round-robin so one
#: flooding tenant cannot starve the rest, ``shed`` rejects immediately
#: and never blocks.
ADMISSION_POLICIES = ("fifo", "fair-share", "shed")

#: Default per-tenant token-bucket capacity, in work units (the executor's
#: deterministic ``work`` measurement is the admission currency).
DEFAULT_TENANT_QUOTA = 200_000.0

#: Default token-bucket refill rate, in work units per second.
DEFAULT_QUOTA_REFILL = 100_000.0

#: Default bound on queries waiting for admission across all tenants.
DEFAULT_ADMISSION_QUEUE_DEPTH = 256

#: Plan-selection strategies the pipeline's plan stage supports (first
#: entry is the default): ``cost`` is the legacy single-path planner,
#: ``bandit`` the BAO-lite contextual bandit over hint-set arms,
#: ``pessimistic`` always the UES upper-bound plan.
PLAN_SELECTORS = ("cost", "bandit", "pessimistic")

#: Default regret cap: a learned arm is eligible only while its estimated
#: cost is at most this multiple of the UES bound.
DEFAULT_REGRET_CAP = 2.0

#: Default engine seed (bandit Thompson sampling, random enumerator,
#: traffic drivers) — every stochastic component derives from it.
DEFAULT_SEED = 0

#: Values of ``REPRO_FUSION`` that disable operator fusion.
_FALSEY = {"0", "false", "off", "no"}


def _env_int(name):
    """Integer value of env var ``name``, or ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ExecutionError("%s must be an integer, got %r" % (name, raw))


def _env_float(name):
    """Float value of env var ``name``, or ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ExecutionError("%s must be a number, got %r" % (name, raw))


def env_executor_mode():
    """Executor mode from ``REPRO_EXECUTOR_MODE`` (default ``vectorized``)."""
    return os.environ.get("REPRO_EXECUTOR_MODE") or EXECUTOR_MODES[0]


def default_morsel_rows():
    """Morsel size from ``REPRO_MORSEL_SIZE`` (default 16384 rows)."""
    value = _env_int("REPRO_MORSEL_SIZE")
    if value is None:
        return DEFAULT_MORSEL_ROWS
    return max(MIN_MORSEL_ROWS, value)


def default_worker_count():
    """Worker count from ``REPRO_PARALLEL_WORKERS`` (default: CPU-derived).

    The default is ``min(8, max(2, cpu_count))`` so the parallel machinery
    is always exercised (even on one core) without oversubscribing wide
    hosts for the small batches this engine processes.
    """
    value = _env_int("REPRO_PARALLEL_WORKERS")
    if value is not None:
        return max(1, value)
    return min(8, max(2, os.cpu_count() or 1))


def default_fusion_enabled():
    """Fusion gate from ``REPRO_FUSION`` (default on; ``0``/``off``/…)."""
    raw = os.environ.get("REPRO_FUSION")
    if raw is None or raw == "":
        return True
    return raw.strip().lower() not in _FALSEY


def default_segment_rows():
    """Segment capacity from ``REPRO_SEGMENT_ROWS`` (default 65536 rows)."""
    value = _env_int("REPRO_SEGMENT_ROWS")
    if value is None:
        return DEFAULT_SEGMENT_ROWS
    return max(MIN_SEGMENT_ROWS, value)


def default_segment_encodings():
    """Allowed encodings from ``REPRO_SEGMENT_ENCODINGS`` (comma list).

    Defaults to ``("dict", "rle", "plain")``. ``plain`` is always a
    legal fallback at seal time even when left off the list — the knob
    restricts what the encoder may *choose*, not what it can store.
    """
    raw = os.environ.get("REPRO_SEGMENT_ENCODINGS")
    if raw is None or not raw.strip():
        return DEFAULT_SEGMENT_ENCODINGS
    names = tuple(
        part.strip().lower() for part in raw.split(",") if part.strip()
    )
    unknown = set(names) - set(SEGMENT_ENCODINGS)
    if unknown:
        raise ExecutionError(
            "REPRO_SEGMENT_ENCODINGS must name encodings among %r, got %r"
            % (SEGMENT_ENCODINGS, sorted(unknown))
        )
    return names


def default_zone_map_pruning():
    """Pruning gate from ``REPRO_ZONE_MAP_PRUNING`` (default on)."""
    raw = os.environ.get("REPRO_ZONE_MAP_PRUNING")
    if raw is None or raw == "":
        return True
    return raw.strip().lower() not in _FALSEY


def default_cache_scope():
    """Plan-cache invalidation scope from ``REPRO_CACHE_SCOPE``.

    ``"table"`` (the default) keys cached plans on the catalog's version
    vector restricted to the tables a query touches, so a hot writer on
    one table never evicts plans over others. ``"global"`` restores the
    legacy single-epoch token (any write anywhere invalidates every
    plan) — kept as a benchmark baseline and an escape hatch.
    """
    raw = os.environ.get("REPRO_CACHE_SCOPE")
    if raw is None or not raw.strip():
        return CACHE_SCOPES[0]
    value = raw.strip().lower()
    if value not in CACHE_SCOPES:
        raise ReproError(
            "REPRO_CACHE_SCOPE must be one of %r, got %r"
            % (CACHE_SCOPES, raw)
        )
    return value


def default_admission_policy():
    """Admission policy from ``REPRO_ADMISSION_POLICY`` (default ``fifo``)."""
    raw = os.environ.get("REPRO_ADMISSION_POLICY")
    if raw is None or not raw.strip():
        return ADMISSION_POLICIES[0]
    value = raw.strip().lower()
    if value not in ADMISSION_POLICIES:
        raise ReproError(
            "REPRO_ADMISSION_POLICY must be one of %r, got %r"
            % (ADMISSION_POLICIES, raw)
        )
    return value


def default_tenant_quota():
    """Per-tenant quota from ``REPRO_TENANT_QUOTA`` (work units)."""
    value = _env_float("REPRO_TENANT_QUOTA")
    if value is None:
        return DEFAULT_TENANT_QUOTA
    if value <= 0:
        raise ExecutionError("REPRO_TENANT_QUOTA must be > 0")
    return value


def default_quota_refill():
    """Refill rate from ``REPRO_QUOTA_REFILL`` (work units per second)."""
    value = _env_float("REPRO_QUOTA_REFILL")
    if value is None:
        return DEFAULT_QUOTA_REFILL
    if value < 0:
        raise ExecutionError("REPRO_QUOTA_REFILL must be >= 0")
    return value


def default_admission_queue_depth():
    """Queue bound from ``REPRO_ADMISSION_QUEUE_DEPTH`` (default 256)."""
    value = _env_int("REPRO_ADMISSION_QUEUE_DEPTH")
    if value is None:
        return DEFAULT_ADMISSION_QUEUE_DEPTH
    return max(1, value)


def default_plan_selector():
    """Plan-selection strategy from ``REPRO_PLAN_SELECTOR`` (default
    ``cost`` — the exact legacy single-path planner)."""
    raw = os.environ.get("REPRO_PLAN_SELECTOR")
    if raw is None or not raw.strip():
        return PLAN_SELECTORS[0]
    value = raw.strip().lower()
    if value not in PLAN_SELECTORS:
        raise ReproError(
            "REPRO_PLAN_SELECTOR must be one of %r, got %r"
            % (PLAN_SELECTORS, raw)
        )
    return value


def default_regret_cap():
    """Regret cap from ``REPRO_REGRET_CAP`` (default 2.0, must be >= 1)."""
    value = _env_float("REPRO_REGRET_CAP")
    if value is None:
        return DEFAULT_REGRET_CAP
    if value < 1.0:
        raise ExecutionError("REPRO_REGRET_CAP must be >= 1.0")
    return value


def default_seed():
    """Engine seed from ``REPRO_SEED`` (default 0)."""
    value = _env_int("REPRO_SEED")
    return DEFAULT_SEED if value is None else value


def default_feedback_enabled():
    """Cardinality-feedback gate from ``REPRO_FEEDBACK`` (default off).

    Off by default because feedback deliberately changes planning over
    time: observed actuals override estimates and drift bumps the plan
    cache's feedback version. Experiments that assume frozen estimator
    behavior (and the differential fuzzer's warm-cache assertions) stay
    byte-stable unless feedback is opted into.
    """
    raw = os.environ.get("REPRO_FEEDBACK")
    if raw is None or raw == "":
        return False
    return raw.strip().lower() not in _FALSEY


@dataclass(frozen=True)
class EngineConfig:
    """Every engine knob, in one immutable value.

    ``Database(config=EngineConfig(...))`` is the primary constructor
    surface; the legacy per-knob ``Database`` kwargs build one of these
    under the hood, so both spellings construct identical engines.
    Instances are frozen — derive variants with :meth:`with_changes`.

    Attributes:
        executor_mode: ``"vectorized"``, ``"row"``, or ``"parallel"``.
        morsel_rows: rows per morsel in parallel mode.
        parallel_workers: worker count in parallel mode.
        plan_cache_size: LRU capacity of the pipeline's plan cache.
        enumerator: join enumerator (``"dp"``/``"greedy"``/``"random"``).
        use_views: whether the planner may answer from materialized views.
        cost_params: overrides for cost-model constants (or ``None``).
        fusion_enabled: whether the executor collapses
            Filter→Project→Aggregate plan tails into a single
            :class:`~repro.engine.plans.FusedPipelineOp` pass.
        feedback_enabled: whether the database closes the cardinality
            feedback loop — ingesting per-node actual cardinalities into
            a :class:`~repro.engine.optimizer.feedback.QueryFeedbackStore`
            after each execution, correcting the planner's estimator
            from observed actuals, and keying the plan cache on the
            feedback version so drifted estimates trigger re-planning.
        segment_rows: capacity of one sealed column segment, in rows.
            Appends accumulate in a mutable tail that seals into an
            immutable, encoded segment once it reaches this size.
        segment_encodings: encodings the sealer may choose among
            (subset of ``("plain", "dict", "rle")``); ``plain`` is
            always a legal fallback even when omitted.
        zone_map_pruning: whether scans consult per-segment zone maps
            to skip segments that cannot satisfy pushed-down
            predicates. Pruning never changes results — only the
            ``segments_pruned`` / ``bytes_decoded`` telemetry.
        cache_scope: plan-cache invalidation scope — ``"table"`` keys
            entries on the per-table version vector restricted to the
            tables the query touches (writers on other tables leave them
            warm); ``"global"`` restores the legacy single-epoch token.
            Never changes results — only hit rates and warm latency.
        admission_policy: how the query server treats over-quota
            queries — ``"fifo"`` (queue in arrival order), ``"fair-share"``
            (queue per tenant, grant round-robin), or ``"shed"`` (reject
            immediately, never block).
        tenant_quota: per-tenant token-bucket capacity in work units —
            the deterministic executor ``work`` each admitted query
            charges its cost estimate against.
        quota_refill_rate: token-bucket refill rate, work units/second.
        admission_queue_depth: bound on queries waiting for admission
            across all tenants; arrivals beyond it are shed even under
            queueing policies.
        plan_selector: plan-selection strategy — ``"cost"`` (the legacy
            single-path planner, bit-identical to the pre-selection
            engine), ``"bandit"`` (BAO-lite: a contextual bandit racing
            hint-set arms, trained online from measured work), or
            ``"pessimistic"`` (always the UES upper-bound plan).
        regret_cap: bandit eligibility guard — an arm may only be picked
            while its estimated cost is ≤ ``regret_cap ×`` the UES
            bound for the same query. Must be ≥ 1.
        seed: engine seed; one :class:`numpy.random.Generator` derived
            from it drives every stochastic component (bandit Thompson
            sampling, the random join enumerator, traffic drivers), so
            runs are reproducible from their logged seed.
    """

    executor_mode: str = EXECUTOR_MODES[0]
    morsel_rows: int = DEFAULT_MORSEL_ROWS
    parallel_workers: int = 4
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE
    enumerator: str = "dp"
    use_views: bool = True
    cost_params: dict = field(default=None)
    fusion_enabled: bool = True
    feedback_enabled: bool = False
    segment_rows: int = DEFAULT_SEGMENT_ROWS
    segment_encodings: tuple = DEFAULT_SEGMENT_ENCODINGS
    zone_map_pruning: bool = True
    cache_scope: str = CACHE_SCOPES[0]
    admission_policy: str = ADMISSION_POLICIES[0]
    tenant_quota: float = DEFAULT_TENANT_QUOTA
    quota_refill_rate: float = DEFAULT_QUOTA_REFILL
    admission_queue_depth: int = DEFAULT_ADMISSION_QUEUE_DEPTH
    plan_selector: str = PLAN_SELECTORS[0]
    regret_cap: float = DEFAULT_REGRET_CAP
    seed: int = DEFAULT_SEED

    def __post_init__(self):
        if self.plan_selector not in PLAN_SELECTORS:
            raise ReproError(
                "plan_selector must be one of %r, got %r"
                % (PLAN_SELECTORS, self.plan_selector)
            )
        if float(self.regret_cap) < 1.0:
            raise ExecutionError("regret_cap must be >= 1.0")
        if self.cache_scope not in CACHE_SCOPES:
            raise ReproError(
                "cache_scope must be one of %r, got %r"
                % (CACHE_SCOPES, self.cache_scope)
            )
        if self.admission_policy not in ADMISSION_POLICIES:
            raise ReproError(
                "admission_policy must be one of %r, got %r"
                % (ADMISSION_POLICIES, self.admission_policy)
            )
        if float(self.tenant_quota) <= 0:
            raise ExecutionError("tenant_quota must be > 0")
        if float(self.quota_refill_rate) < 0:
            raise ExecutionError("quota_refill_rate must be >= 0")
        if int(self.admission_queue_depth) < 1:
            raise ExecutionError("admission_queue_depth must be >= 1")
        if self.executor_mode not in EXECUTOR_MODES:
            raise ExecutionError(
                "executor mode must be one of %r, got %r"
                % (EXECUTOR_MODES, self.executor_mode)
            )
        if self.enumerator not in ENUMERATORS:
            raise ReproError(
                "enumerator must be one of %r, got %r"
                % (ENUMERATORS, self.enumerator)
            )
        if int(self.morsel_rows) < 1:
            raise ExecutionError("morsel_rows must be >= 1")
        if int(self.parallel_workers) < 1:
            raise ExecutionError("parallel_workers must be >= 1")
        if int(self.plan_cache_size) < 1:
            raise ReproError("plan_cache_size must be >= 1")
        if int(self.segment_rows) < 1:
            raise ExecutionError("segment_rows must be >= 1")
        encodings = tuple(self.segment_encodings)
        unknown = set(encodings) - set(SEGMENT_ENCODINGS)
        if unknown:
            raise ExecutionError(
                "segment_encodings must be among %r, got %r"
                % (SEGMENT_ENCODINGS, sorted(unknown))
            )
        object.__setattr__(self, "segment_encodings", encodings)
        if self.cost_params is not None:
            # Copy so a caller-held dict cannot mutate a frozen config.
            object.__setattr__(self, "cost_params", dict(self.cost_params))

    @classmethod
    def from_env(cls, **overrides):
        """A config resolved from the ``REPRO_*`` environment variables.

        This is the *only* place the engine reads its environment
        configuration. Keyword ``overrides`` (ignored when ``None``) beat
        the environment, which beats the dataclass defaults — the same
        precedence the legacy ``Database`` kwargs always had.
        """
        values = {
            "executor_mode": env_executor_mode(),
            "morsel_rows": default_morsel_rows(),
            "parallel_workers": default_worker_count(),
            "fusion_enabled": default_fusion_enabled(),
            "feedback_enabled": default_feedback_enabled(),
            "segment_rows": default_segment_rows(),
            "segment_encodings": default_segment_encodings(),
            "zone_map_pruning": default_zone_map_pruning(),
            "cache_scope": default_cache_scope(),
            "admission_policy": default_admission_policy(),
            "tenant_quota": default_tenant_quota(),
            "quota_refill_rate": default_quota_refill(),
            "admission_queue_depth": default_admission_queue_depth(),
            "plan_selector": default_plan_selector(),
            "regret_cap": default_regret_cap(),
            "seed": default_seed(),
        }
        for key, value in overrides.items():
            if value is not None:
                values[key] = value
        return cls(**values)

    def with_changes(self, **changes):
        """A copy of this config with ``changes`` applied (frozen-safe)."""
        return replace(self, **changes)

    def executor_kwargs(self):
        """The keyword arguments this config implies for ``Executor``."""
        return {
            "mode": self.executor_mode,
            "morsel_rows": self.morsel_rows,
            "n_workers": self.parallel_workers,
            "fusion_enabled": self.fusion_enabled,
            "pruning_enabled": self.zone_map_pruning,
        }
