"""Columnar in-memory storage with a page model.

Tables store each column as a NumPy array. A simple page model (rows per
page, bytes per value) gives the cost model and the hardware-acceleration
experiments something physical to reason about without real I/O.
"""

import numpy as np

from repro.common import CatalogError
from repro.engine.types import DataType, TableSchema

#: Logical page size used by the cost model, in bytes.
PAGE_BYTES = 8192

#: Modeled width of one value, in bytes, per data type.
VALUE_BYTES = {DataType.INT: 8, DataType.FLOAT: 8, DataType.TEXT: 24}


class Table:
    """An in-memory table: a :class:`TableSchema` plus column arrays.

    Rows can be appended (``insert_rows``) and read either row-wise
    (``rows()``) or column-wise (``column_array``). The column arrays are
    the canonical representation; row views are materialized on demand.
    """

    def __init__(self, schema, columns=None):
        if not isinstance(schema, TableSchema):
            raise CatalogError("Table needs a TableSchema")
        self.schema = schema
        if columns is None:
            self._columns = {
                c.name.lower(): np.empty(0, dtype=c.dtype.numpy_dtype)
                for c in schema.columns
            }
            self._n_rows = 0
        else:
            normalized = {}
            n_rows = None
            for c in schema.columns:
                key = c.name.lower()
                if key not in {k.lower() for k in columns}:
                    raise CatalogError("missing data for column %r" % (c.name,))
                source = columns.get(c.name, columns.get(key))
                if source is None:
                    for k, v in columns.items():
                        if k.lower() == key:
                            source = v
                            break
                arr = np.asarray(source, dtype=c.dtype.numpy_dtype)
                if n_rows is None:
                    n_rows = len(arr)
                elif len(arr) != n_rows:
                    raise CatalogError(
                        "column %r has %d rows, expected %d"
                        % (c.name, len(arr), n_rows)
                    )
                normalized[key] = arr
            self._columns = normalized
            self._n_rows = n_rows or 0

    @property
    def name(self):
        """Table name from the schema."""
        return self.schema.name

    @property
    def n_rows(self):
        """Current row count."""
        return self._n_rows

    def column_array(self, name):
        """The NumPy array backing column ``name``."""
        key = name.lower()
        if key not in self._columns:
            raise CatalogError(
                "table %r has no column %r" % (self.name, name)
            )
        return self._columns[key]

    def rows(self, indices=None):
        """Materialize rows as a list of tuples (optionally a subset)."""
        arrays = [self._columns[c.name.lower()] for c in self.schema.columns]
        if not arrays:
            return []
        if indices is not None:
            idx = np.asarray(indices, dtype=np.int64)
            arrays = [a[idx] for a in arrays]
        return list(zip(*(a.tolist() for a in arrays)))

    def column_arrays(self, row_ids=None, columns=None):
        """Column arrays as ``{name: array}``, optionally gathered by row id.

        Args:
            row_ids: optional integer array/sequence selecting rows (one
                fancy-indexing gather per column); ``None`` returns the
                backing arrays themselves — callers must not mutate them.
            columns: optional iterable of column names to restrict to.
        """
        if columns is None:
            names = [c.name.lower() for c in self.schema.columns]
        else:
            names = [c.lower() for c in columns]
        out = {}
        if row_ids is None:
            for name in names:
                out[name] = self.column_array(name)
            return out
        idx = np.asarray(row_ids, dtype=np.int64)
        for name in names:
            out[name] = self.column_array(name)[idx]
        return out

    def row(self, index):
        """One row as a tuple."""
        if not 0 <= index < self._n_rows:
            raise IndexError("row index out of range")
        return tuple(
            self._columns[c.name.lower()][index] for c in self.schema.columns
        )

    def insert_rows(self, rows):
        """Append rows (iterable of sequences aligned with the schema)."""
        rows = list(rows)
        if not rows:
            return 0
        width = len(self.schema.columns)
        for r in rows:
            if len(r) != width:
                raise CatalogError(
                    "row width %d does not match schema width %d"
                    % (len(r), width)
                )
        for j, col in enumerate(self.schema.columns):
            new_vals = np.asarray(
                [col.dtype.coerce(r[j]) for r in rows],
                dtype=col.dtype.numpy_dtype,
            )
            key = col.name.lower()
            self._columns[key] = np.concatenate([self._columns[key], new_vals])
        self._n_rows += len(rows)
        return len(rows)

    def row_bytes(self):
        """Modeled bytes per row."""
        return sum(VALUE_BYTES[c.dtype] for c in self.schema.columns)

    def n_pages(self):
        """Modeled page count in a row-major layout."""
        per_page = max(1, PAGE_BYTES // max(1, self.row_bytes()))
        return max(1, -(-self._n_rows // per_page)) if self._n_rows else 0

    def column_pages(self, name):
        """Modeled page count for one column in a columnar layout."""
        col = self.schema.column(name)
        per_page = max(1, PAGE_BYTES // VALUE_BYTES[col.dtype])
        return max(1, -(-self._n_rows // per_page)) if self._n_rows else 0

    def __len__(self):
        return self._n_rows

    def __repr__(self):
        return "Table(%r, rows=%d)" % (self.name, self._n_rows)
