"""Columnar in-memory storage: segmented tables with a page model.

A :class:`Table` stores each column as a sequence of immutable, sealed
:class:`~repro.engine.segments.ColumnSegment` stripes (shared row-group
boundaries across columns) plus one mutable tail of Python lists.
Appends go to the tail and seal into encoded segments at
``segment_rows`` capacity, so batched inserts never re-copy already
sealed data. The page model (rows per page, bytes per value) gives the
cost model and the hardware-acceleration experiments something physical
to reason about without real I/O; since segments are encoded, the page
accounting reflects *encoded* bytes.
"""

import numpy as np

from repro.common import CatalogError
from repro.engine.config import DEFAULT_SEGMENT_ROWS
from repro.engine.segments import (
    DEFAULT_ENCODINGS,
    VALUE_BYTES,
    ColumnSegment,
    merge_value_counts,
)
from repro.engine.types import TableSchema

#: Logical page size used by the cost model, in bytes.
PAGE_BYTES = 8192


class RowGroup:
    """One horizontal stripe of sealed column segments.

    All segments in a group cover the same ``n_rows`` rows starting at
    table offset ``start``; ``segments`` maps lower-cased column name to
    its :class:`~repro.engine.segments.ColumnSegment`.
    """

    __slots__ = ("start", "n_rows", "segments")

    def __init__(self, start, n_rows, segments):
        self.start = int(start)
        self.n_rows = int(n_rows)
        self.segments = segments

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return "RowGroup(start=%d, rows=%d)" % (self.start, self.n_rows)


class Table:
    """An in-memory table: a :class:`TableSchema` plus column segments.

    Rows can be appended (``insert_rows``) and read either row-wise
    (``rows()``) or column-wise (``column_array``). Sealed segments are
    the canonical representation; full decoded arrays and row views are
    materialized on demand (and the decoded form is cached until the
    next write).
    """

    def __init__(self, schema, columns=None, segment_rows=None,
                 segment_encodings=None):
        if not isinstance(schema, TableSchema):
            raise CatalogError("Table needs a TableSchema")
        self.schema = schema
        self._segment_rows = (
            int(segment_rows) if segment_rows else DEFAULT_SEGMENT_ROWS
        )
        if self._segment_rows < 1:
            raise CatalogError("segment_rows must be >= 1")
        self._segment_encodings = (
            tuple(segment_encodings) if segment_encodings
            else DEFAULT_ENCODINGS
        )
        self._dtypes = {c.name.lower(): c.dtype for c in schema.columns}
        self._groups = []
        self._tail = {c.name.lower(): [] for c in schema.columns}
        self._tail_rows = 0
        self._tail_group = None
        self._n_rows = 0
        self._decoded = {}
        self._version = 0
        self._write_hooks = []
        if columns is not None:
            normalized = {}
            n_rows = None
            for c in schema.columns:
                key = c.name.lower()
                if key not in {k.lower() for k in columns}:
                    raise CatalogError("missing data for column %r" % (c.name,))
                source = columns.get(c.name, columns.get(key))
                if source is None:
                    for k, v in columns.items():
                        if k.lower() == key:
                            source = v
                            break
                arr = np.asarray(source, dtype=c.dtype.numpy_dtype)
                if n_rows is None:
                    n_rows = len(arr)
                elif len(arr) != n_rows:
                    raise CatalogError(
                        "column %r has %d rows, expected %d"
                        % (c.name, len(arr), n_rows)
                    )
                normalized[key] = arr
            self._n_rows = n_rows or 0
            cap = self._segment_rows
            sealed = (self._n_rows // cap) * cap
            for start in range(0, sealed, cap):
                segs = {}
                for c in schema.columns:
                    key = c.name.lower()
                    segs[key] = ColumnSegment.encode(
                        normalized[key][start:start + cap], c.dtype,
                        self._segment_encodings,
                    )
                self._groups.append(RowGroup(start, cap, segs))
            for c in schema.columns:
                key = c.name.lower()
                self._tail[key] = normalized[key][sealed:].tolist()
            self._tail_rows = self._n_rows - sealed
            # The caller's arrays double as the decoded cache, so
            # column_array() stays zero-copy for freshly built tables.
            self._decoded = normalized

    @property
    def name(self):
        """Table name from the schema."""
        return self.schema.name

    @property
    def n_rows(self):
        """Current row count."""
        return self._n_rows

    @property
    def segment_rows(self):
        """Capacity of one sealed segment, in rows."""
        return self._segment_rows

    @property
    def segment_encodings(self):
        """Encodings the sealer may choose among."""
        return self._segment_encodings

    @property
    def version(self):
        """Monotonic write counter: one bump per mutating call.

        Rows loaded through the constructor count as version 0 — the
        table is born at that state; every ``insert_rows`` /
        ``replace_column`` afterwards advances it by one.
        """
        return self._version

    def add_write_hook(self, hook):
        """Register ``hook(table)``, called after every mutating call.

        The catalog installs one of these so direct ``Table.insert_rows``
        bulk loads (the data generators) advance the per-table catalog
        version without any polling of row counts.
        """
        self._write_hooks.append(hook)
        return hook

    def remove_write_hook(self, hook):
        """Unregister a previously added write hook (missing is a no-op)."""
        try:
            self._write_hooks.remove(hook)
        except ValueError:
            pass

    def _notify_write(self):
        self._version += 1
        for hook in list(self._write_hooks):
            hook(self)

    def _column_key(self, name):
        key = name.lower()
        if key not in self._tail:
            raise CatalogError(
                "table %r has no column %r" % (self.name, name)
            )
        return key

    def _tail_array(self, key):
        return np.asarray(
            self._tail[key], dtype=self._dtypes[key].numpy_dtype
        )

    # -- segment access ------------------------------------------------
    def row_groups(self):
        """All row groups in table order, the tail as a synthetic group.

        The tail (when non-empty) is exposed as a plain-encoded group so
        scans see one uniform sequence of segments; it is rebuilt lazily
        after each write.
        """
        if not self._tail_rows:
            return list(self._groups)
        if self._tail_group is None:
            segs = {}
            for c in self.schema.columns:
                key = c.name.lower()
                segs[key] = ColumnSegment.encode(
                    self._tail_array(key), c.dtype, ("plain",)
                )
            self._tail_group = RowGroup(
                self._n_rows - self._tail_rows, self._tail_rows, segs
            )
        return list(self._groups) + [self._tail_group]

    @property
    def n_segments(self):
        """Number of row groups, counting the non-empty tail as one."""
        return len(self._groups) + (1 if self._tail_rows else 0)

    # -- reads ---------------------------------------------------------
    def column_array(self, name):
        """Column ``name`` as one decoded NumPy array (cached)."""
        key = self._column_key(name)
        cached = self._decoded.get(key)
        if cached is not None:
            return cached
        parts = [g.segments[key].decode() for g in self._groups]
        if self._tail_rows:
            parts.append(self._tail_array(key))
        if not parts:
            arr = np.empty(0, dtype=self._dtypes[key].numpy_dtype)
        elif len(parts) == 1:
            arr = parts[0]
        else:
            arr = np.concatenate(parts)
        self._decoded[key] = arr
        return arr

    def rows(self, indices=None):
        """Materialize rows as a list of tuples (optionally a subset)."""
        arrays = [self.column_array(c.name) for c in self.schema.columns]
        if not arrays:
            return []
        if indices is not None:
            idx = np.asarray(indices, dtype=np.int64)
            arrays = [a[idx] for a in arrays]
        return list(zip(*(a.tolist() for a in arrays)))

    def column_arrays(self, row_ids=None, columns=None):
        """Column arrays as ``{name: array}``, optionally gathered by row id.

        Args:
            row_ids: optional integer array/sequence selecting rows (one
                fancy-indexing gather per column); ``None`` returns the
                cached decoded arrays themselves — callers must not
                mutate them.
            columns: optional iterable of column names to restrict to.
        """
        if columns is None:
            names = [c.name.lower() for c in self.schema.columns]
        else:
            names = [c.lower() for c in columns]
        out = {}
        if row_ids is None:
            for name in names:
                out[name] = self.column_array(name)
            return out
        idx = np.asarray(row_ids, dtype=np.int64)
        for name in names:
            out[name] = self.column_array(name)[idx]
        return out

    def row(self, index):
        """One row as a tuple."""
        if not 0 <= index < self._n_rows:
            raise IndexError("row index out of range")
        return tuple(
            self.column_array(c.name)[index] for c in self.schema.columns
        )

    # -- writes --------------------------------------------------------
    def insert_rows(self, rows):
        """Append rows (iterable of sequences aligned with the schema).

        Rows accumulate in the mutable tail; once the tail reaches
        ``segment_rows`` it seals into encoded segments. Already sealed
        segments are never touched, so N batched inserts are O(total
        rows), not O(n²).
        """
        rows = list(rows)
        if not rows:
            return 0
        width = len(self.schema.columns)
        for r in rows:
            if len(r) != width:
                raise CatalogError(
                    "row width %d does not match schema width %d"
                    % (len(r), width)
                )
        for j, col in enumerate(self.schema.columns):
            coerce = col.dtype.coerce
            self._tail[col.name.lower()].extend(coerce(r[j]) for r in rows)
        self._tail_rows += len(rows)
        self._n_rows += len(rows)
        self._decoded = {}
        self._tail_group = None
        while self._tail_rows >= self._segment_rows:
            self._seal_tail_chunk()
        self._notify_write()
        return len(rows)

    def _seal_tail_chunk(self):
        cap = self._segment_rows
        start = self._n_rows - self._tail_rows
        segs = {}
        for c in self.schema.columns:
            key = c.name.lower()
            tail = self._tail[key]
            arr = np.asarray(tail[:cap], dtype=c.dtype.numpy_dtype)
            segs[key] = ColumnSegment.encode(
                arr, c.dtype, self._segment_encodings
            )
            del tail[:cap]
        self._groups.append(RowGroup(start, cap, segs))
        self._tail_rows -= cap

    def replace_column(self, name, values):
        """Replace one column's values wholesale (length must match).

        Re-seals the column's segments along the existing row-group
        boundaries; other columns are untouched. Fresh :class:`RowGroup`
        objects are built rather than mutated in place, so row groups a
        :class:`TableSnapshot` pinned before the replace keep serving the
        old values.
        """
        key = self._column_key(name)
        dtype = self._dtypes[key]
        arr = np.asarray(values, dtype=dtype.numpy_dtype)
        if len(arr) != self._n_rows:
            raise CatalogError(
                "column %r has %d rows, expected %d"
                % (name, len(arr), self._n_rows)
            )
        new_groups = []
        for g in self._groups:
            segments = dict(g.segments)
            segments[key] = ColumnSegment.encode(
                arr[g.start:g.start + g.n_rows], dtype,
                self._segment_encodings,
            )
            new_groups.append(RowGroup(g.start, g.n_rows, segments))
        self._groups = new_groups
        self._tail[key] = arr[self._n_rows - self._tail_rows:].tolist()
        self._tail_group = None
        self._decoded.pop(key, None)
        self._decoded[key] = arr
        self._notify_write()

    # -- statistics ----------------------------------------------------
    def column_value_counts(self, name):
        """Merged per-segment value counts, or ``None`` when unsound.

        Returns ``{value: count}`` with keys in first-appearance order
        (Python dicts preserve insertion order), merging each segment's
        cached counts — the incremental path ANALYZE uses instead of
        re-scanning the full column. ``None`` signals that some segment
        could not count exactly (NaN-bearing FLOAT), so the caller must
        fall back to the decoded column.
        """
        key = self._column_key(name)
        return merge_value_counts(g.segments[key] for g in self.row_groups())

    # -- page / byte model ---------------------------------------------
    def column_encoded_bytes(self, name):
        """Modeled encoded bytes of one column (tail counted as plain)."""
        key = self._column_key(name)
        total = sum(g.segments[key].encoded_bytes() for g in self._groups)
        return total + self._tail_rows * VALUE_BYTES[self._dtypes[key]]

    def encoded_bytes(self):
        """Modeled encoded bytes of the whole table."""
        return sum(
            self.column_encoded_bytes(c.name) for c in self.schema.columns
        )

    def row_bytes(self):
        """Modeled bytes per row, averaged over encoded segments.

        An integer whenever the average is integral (always true for
        all-plain storage, where it equals the schema's value-width sum).
        """
        if not self._n_rows:
            return sum(VALUE_BYTES[c.dtype] for c in self.schema.columns)
        per_row = self.encoded_bytes() / self._n_rows
        return int(per_row) if per_row == int(per_row) else per_row

    def n_pages(self):
        """Modeled page count in a row-major layout (encoded widths)."""
        per_page = max(1, int(PAGE_BYTES // max(1, self.row_bytes())))
        return max(1, -(-self._n_rows // per_page)) if self._n_rows else 0

    def column_pages(self, name):
        """Modeled page count for one column in a columnar layout.

        Encoding shrinks a column's effective row count (encoded bytes
        over the decoded value width); plain storage reproduces the
        unencoded page math exactly.
        """
        col = self.schema.column(name)
        if not self._n_rows:
            return 0
        per_page = max(1, PAGE_BYTES // VALUE_BYTES[col.dtype])
        effective_rows = (
            self.column_encoded_bytes(name) / VALUE_BYTES[col.dtype]
        )
        return max(1, int(-(-effective_rows // per_page)))

    # -- snapshots -----------------------------------------------------
    def snapshot(self):
        """An immutable :class:`TableSnapshot` of the current state.

        Cost is O(tail rows): sealed row groups are immutable and shared
        by reference; only the mutable tail is frozen into a plain-encoded
        group (the same lazy group ``row_groups`` builds, so a snapshot
        right after a scan is free).
        """
        return TableSnapshot(self)

    def restore_point(self):
        """A :class:`TableRestorePoint` that can rewind this table.

        The write-side sibling of :meth:`snapshot`: where a snapshot is a
        detached immutable *view*, a restore point remembers enough of
        this table's physical state (sealed groups by reference, tail by
        copy) to put the table itself back bit-identically via
        ``restore()`` — the primitive the session API's ``rollback()``
        is built on. Cost is O(tail rows), like a snapshot.
        """
        return TableRestorePoint(self)

    def __len__(self):
        return self._n_rows

    def __repr__(self):
        return "Table(%r, rows=%d, segments=%d)" % (
            self.name, self._n_rows, self.n_segments
        )


class TableRestorePoint:
    """A rewind handle for one :class:`Table`.

    Captures the table's physical state — the sealed row-group list by
    reference (sealed groups are immutable: ``insert_rows`` only appends
    groups and ``replace_column`` builds fresh ones) plus a copy of the
    mutable tail and the row/version counters. ``restore()`` puts the
    table back exactly as captured: same groups, same tail, same
    ``version``; decoded-array caches are dropped so subsequent reads
    rematerialize from the restored segments.

    Restoring deliberately does **not** fire the table's write hooks:
    the catalog-level :class:`~repro.engine.catalog.CatalogRestorePoint`
    owns version bookkeeping for the rewind as a whole.
    """

    __slots__ = ("_table", "_groups", "_tail", "_tail_rows", "_n_rows",
                 "_version")

    def __init__(self, table):
        self._table = table
        self._groups = list(table._groups)
        self._tail = {k: list(v) for k, v in table._tail.items()}
        self._tail_rows = table._tail_rows
        self._n_rows = table._n_rows
        self._version = table._version

    @property
    def table(self):
        """The live :class:`Table` this point rewinds."""
        return self._table

    @property
    def n_rows(self):
        """Row count at capture time (what ``restore()`` returns to)."""
        return self._n_rows

    def restore(self):
        """Rewind the table to the captured state (idempotent)."""
        t = self._table
        t._groups = list(self._groups)
        t._tail = {k: list(v) for k, v in self._tail.items()}
        t._tail_rows = self._tail_rows
        t._n_rows = self._n_rows
        t._version = self._version
        t._tail_group = None
        t._decoded = {}

    def __repr__(self):
        return "TableRestorePoint(%r, rows=%d, version=%d)" % (
            self._table.name, self._n_rows, self._version
        )


class TableSnapshot:
    """An immutable point-in-time view of a :class:`Table`.

    Pins the table's sealed row groups by reference — they are never
    mutated after sealing (``replace_column`` builds fresh groups) — plus
    the frozen plain-encoded tail group, so a writer appending to (or
    re-sealing) the live table never disturbs readers holding the
    snapshot. Implements the executor-facing read surface of ``Table``
    (``row_groups``/``column_array``/``rows``/``column_arrays``/
    ``column_value_counts``/``schema``/``n_rows``), so scans and fused
    pipelines run against one exactly as against the live table.
    """

    __slots__ = ("schema", "version", "_groups", "_n_rows", "_dtypes",
                 "_decoded")

    def __init__(self, table):
        self.schema = table.schema
        self.version = table.version
        self._groups = table.row_groups()
        self._n_rows = table.n_rows
        self._dtypes = {c.name.lower(): c.dtype for c in table.schema.columns}
        self._decoded = {}

    @property
    def name(self):
        """Table name from the schema."""
        return self.schema.name

    @property
    def n_rows(self):
        """Row count at snapshot time."""
        return self._n_rows

    @property
    def n_segments(self):
        """Number of pinned row groups (the frozen tail counts as one)."""
        return len(self._groups)

    def row_groups(self):
        """The pinned row groups, in table order."""
        return list(self._groups)

    def _column_key(self, name):
        key = name.lower()
        if key not in self._dtypes:
            raise CatalogError(
                "table %r has no column %r" % (self.name, name)
            )
        return key

    def column_array(self, name):
        """Column ``name`` as one decoded NumPy array (cached)."""
        key = self._column_key(name)
        cached = self._decoded.get(key)
        if cached is not None:
            return cached
        parts = [g.segments[key].decode() for g in self._groups]
        if not parts:
            arr = np.empty(0, dtype=self._dtypes[key].numpy_dtype)
        elif len(parts) == 1:
            arr = parts[0]
        else:
            arr = np.concatenate(parts)
        self._decoded[key] = arr
        return arr

    def rows(self, indices=None):
        """Materialize rows as a list of tuples (optionally a subset)."""
        arrays = [self.column_array(c.name) for c in self.schema.columns]
        if not arrays:
            return []
        if indices is not None:
            idx = np.asarray(indices, dtype=np.int64)
            arrays = [a[idx] for a in arrays]
        return list(zip(*(a.tolist() for a in arrays)))

    def column_arrays(self, row_ids=None, columns=None):
        """Column arrays as ``{name: array}``, optionally gathered by id."""
        if columns is None:
            names = [c.name.lower() for c in self.schema.columns]
        else:
            names = [c.lower() for c in columns]
        out = {}
        if row_ids is None:
            for name in names:
                out[name] = self.column_array(name)
            return out
        idx = np.asarray(row_ids, dtype=np.int64)
        for name in names:
            out[name] = self.column_array(name)[idx]
        return out

    def row(self, index):
        """One row as a tuple."""
        if not 0 <= index < self._n_rows:
            raise IndexError("row index out of range")
        return tuple(
            self.column_array(c.name)[index] for c in self.schema.columns
        )

    def column_value_counts(self, name):
        """Merged per-segment value counts (see ``Table``), or ``None``."""
        key = self._column_key(name)
        return merge_value_counts(g.segments[key] for g in self._groups)

    def snapshot(self):
        """Snapshots are already immutable; return self."""
        return self

    def __len__(self):
        return self._n_rows

    def __repr__(self):
        return "TableSnapshot(%r, rows=%d, version=%d)" % (
            self.name, self._n_rows, self.version
        )
