"""Encoded column segments and zone maps — the physical storage layer.

A :class:`~repro.engine.storage.Table` stores each column as a sequence
of immutable fixed-capacity segments (plus one mutable tail). Every
sealed segment carries

* an **encoding** — ``"plain"`` (raw NumPy values), ``"dict"``
  (narrow integer codes into a first-appearance dictionary of distinct
  values; the win for low-cardinality TEXT/INT), or ``"rle"``
  (run-length: one value + length per run; the win for sorted or
  constant stretches) — chosen automatically at seal time by
  :func:`choose_encoding`, and
* a **zone map** (:class:`ZoneMap`) — min/max over non-NULL values,
  NULL count, and a distinct estimate — letting the scan path prune the
  whole segment against a pushed-down predicate without touching data.

Everything here preserves the engine's observational contract exactly:
``decode()`` reproduces the original values bit-for-bit (value-for-value
for objects), ``mask(op, value)`` returns the same boolean vector the
flat NumPy evaluation would (including the scalar-collapse rule for
incomparable types, and raising the same ``TypeError`` a flat
object-array comparison would raise), and :meth:`ZoneMap.classify` only
returns ``PRUNED``/``FULL`` verdicts that the flat evaluation provably
agrees with — anything uncertain (NaN bounds, mixed types, NULLs under
range operators) degrades to ``PARTIAL``, which just means "evaluate
normally".

This module sits below :mod:`repro.engine.storage` and imports only
:mod:`repro.engine.types`; the comparison-operator table is intentionally
duplicated from the operator layer (six entries) to keep the storage
layer at the bottom of the import graph.
"""

import operator

import numpy as np

from repro.common import ExecutionError
from repro.engine.types import DataType

#: Modeled width of one decoded value, in bytes, per data type.
VALUE_BYTES = {DataType.INT: 8, DataType.FLOAT: 8, DataType.TEXT: 24}

#: Modeled per-run overhead of run-length encoding (value + 4-byte length).
RLE_LENGTH_BYTES = 4

#: Supported segment encodings.
ENCODINGS = ("plain", "dict", "rle")

#: Default encodings a table may choose from at seal time.
DEFAULT_ENCODINGS = ("dict", "rle", "plain")

#: Dictionary encoding applies only while the dictionary stays bounded.
MAX_DICT_SIZE = 65536

#: Average run length at which run-length encoding starts paying off.
MIN_AVG_RUN = 4.0

#: Zone-map verdicts for one predicate against one segment.
PRUNED, FULL, PARTIAL = "pruned", "full", "partial"

#: Comparison operators, mirroring the operator layer's table.
_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_RANGE_OPS = ("<", "<=", ">", ">=")


def _narrow_code_dtype(n_distinct):
    """Smallest unsigned dtype able to index ``n_distinct`` dictionary slots."""
    if n_distinct <= 0xFF:
        return np.uint8
    if n_distinct <= 0xFFFF:
        return np.uint16
    return np.uint32


def _object_factorize(arr):
    """First-appearance codes + dictionary for an object column.

    Hash-based (dict equality) rather than sort-based, so ``None`` and
    mixed types factorize exactly like the row interpreter groups them.
    """
    codes = np.empty(len(arr), dtype=np.int64)
    seen = {}
    for i, value in enumerate(arr.tolist()):
        code = seen.get(value)
        if code is None:
            code = seen[value] = len(seen)
        codes[i] = code
    dictionary = np.empty(len(seen), dtype=object)
    dictionary[:] = list(seen)
    return codes, dictionary


def _numeric_factorize(arr):
    """First-appearance codes + dictionary for an int64/float64 column."""
    uniq, first, inv = np.unique(arr, return_index=True, return_inverse=True)
    inv = np.ascontiguousarray(inv, dtype=np.int64).ravel()
    order = np.argsort(first, kind="stable")
    dictionary = uniq[order]
    remap = np.empty(len(uniq), dtype=np.int64)
    remap[order] = np.arange(len(uniq), dtype=np.int64)
    return remap[inv], dictionary


def _run_bounds(arr):
    """Start indices of the value runs in ``arr`` (first index included)."""
    n = len(arr)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if arr.dtype == object:
        neq = np.asarray(
            np.not_equal(arr[1:], arr[:-1]), dtype=object
        ).astype(bool)
        # ``None != None`` is elementwise False, so NULL runs coalesce —
        # exactly what decode must reproduce (np.repeat puts None back).
    else:
        neq = arr[1:] != arr[:-1]
    return np.flatnonzero(np.r_[True, neq])


class ZoneMap:
    """Min/max + NULL count + distinct estimate for one sealed segment.

    ``min``/``max`` cover non-NULL values only and are ``None`` when the
    segment is empty, all-NULL, or its values are not mutually comparable
    (mixed types); :meth:`classify` then answers ``PARTIAL`` for
    everything, which is always safe.
    """

    __slots__ = ("min", "max", "null_count", "distinct_est")

    def __init__(self, min_value, max_value, null_count, distinct_est):
        self.min = min_value
        self.max = max_value
        self.null_count = int(null_count)
        self.distinct_est = int(distinct_est)
        try:
            if min_value is not None and not (min_value <= max_value):
                # NaN bounds (or other incoherent ordering): no zone.
                self.min = self.max = None
        except TypeError:
            self.min = self.max = None

    @classmethod
    def build(cls, arr, dtype, distinct_est=None):
        """Compute the zone map of one segment's raw values."""
        n = len(arr)
        if dtype is DataType.TEXT:
            values = arr.tolist()
            non_null = [v for v in values if v is not None]
            nulls = n - len(non_null)
            lo = hi = None
            if non_null:
                try:
                    lo, hi = min(non_null), max(non_null)
                except TypeError:  # mixed incomparable types
                    lo = hi = None
            ndv = distinct_est
            if ndv is None:
                ndv = len(set(values) - {None})
            return cls(lo, hi, nulls, ndv)
        if n == 0:
            return cls(None, None, 0, 0)
        lo = arr.min()
        hi = arr.max()
        if dtype is DataType.FLOAT and (np.isnan(lo) or np.isnan(hi)):
            lo = hi = None
        else:
            lo, hi = lo.item(), hi.item()
        ndv = distinct_est if distinct_est is not None else len(np.unique(arr))
        return cls(lo, hi, 0, ndv)

    def classify(self, op, value):
        """``PRUNED`` / ``FULL`` / ``PARTIAL`` verdict for one predicate.

        Only returns a non-``PARTIAL`` verdict when the flat evaluation
        provably agrees for every row:

        * NULLs fail ``=`` and all range operators but *pass* ``!=``
          (``None != x`` is elementwise True), so ``=`` may still prune a
          NULL-bearing segment while ``FULL`` requires zero NULLs — and
          ``!=`` is the mirror image.
        * Range operators never prune a NULL-bearing TEXT segment: the
          flat comparison would raise ``TypeError``, and pruning must not
          hide an error the unsegmented engine raises.
        * Any ``TypeError`` while comparing the literal against the
          bounds degrades to ``PARTIAL`` (the flat path's scalar-collapse
          semantics then apply during normal evaluation).
        """
        lo, hi = self.min, self.max
        if lo is None:
            return PARTIAL
        nulls = self.null_count
        try:
            if op == "=":
                if value < lo or value > hi:
                    return PRUNED
                if lo == hi and lo == value and nulls == 0:
                    return FULL
                return PARTIAL
            if op == "!=":
                if value < lo or value > hi:
                    return FULL
                if lo == hi and lo == value and nulls == 0:
                    return PRUNED
                return PARTIAL
            if op not in _RANGE_OPS:
                return PARTIAL
            if nulls:
                return PARTIAL
            if op == "<":
                if lo >= value:
                    return PRUNED
                if hi < value:
                    return FULL
            elif op == "<=":
                if lo > value:
                    return PRUNED
                if hi <= value:
                    return FULL
            elif op == ">":
                if hi <= value:
                    return PRUNED
                if lo > value:
                    return FULL
            elif op == ">=":
                if hi < value:
                    return PRUNED
                if lo >= value:
                    return FULL
            return PARTIAL
        except TypeError:
            return PARTIAL

    def range_hazard(self, op, value):
        """Whether evaluating ``op`` on this segment could raise.

        The flat engine raises ``TypeError`` for range comparisons over
        NULL-bearing or mixed-type object columns (and for incomparable
        literals); a zone-map skip must never hide that error. A group
        may therefore only be pruned when none of its predicates are
        hazardous — hazardous predicates are always evaluated, exactly
        to reproduce the error the flat path would raise. Conservative:
        ``True`` for any segment whose bounds are unknown.
        """
        if op not in _RANGE_OPS:
            return False
        if self.min is None or self.null_count:
            return True
        try:
            bool(self.min <= value)
            bool(value <= self.max)
        except TypeError:
            return True
        return False

    def __repr__(self):
        return "ZoneMap(min=%r, max=%r, nulls=%d, ndv=%d)" % (
            self.min, self.max, self.null_count, self.distinct_est
        )


def choose_encoding(arr, dtype, allowed=DEFAULT_ENCODINGS):
    """Pick the encoding for one segment's values at seal time.

    Rules (first match wins):

    * FLOAT segments containing NaN stay ``plain`` — NaN breaks the
      equality semantics both dictionary and run-length rely on.
    * ``"rle"`` when the average run length is at least
      :data:`MIN_AVG_RUN` (sorted/constant stretches).
    * ``"dict"`` when the distinct count is at most a quarter of the
      rows and the dictionary stays under :data:`MAX_DICT_SIZE` slots.
    * ``"plain"`` otherwise (always available as the fallback).

    Returns the chosen encoding name.
    """
    n = len(arr)
    if n == 0:
        return "plain"
    if dtype is DataType.FLOAT and bool(np.isnan(arr).any()):
        return "plain"
    if "rle" in allowed:
        n_runs = len(_run_bounds(arr))
        if n / max(1, n_runs) >= MIN_AVG_RUN:
            return "rle"
    if "dict" in allowed:
        if dtype is DataType.TEXT:
            ndv = len(set(arr.tolist()))
        else:
            ndv = len(np.unique(arr))
        if ndv <= min(n // 4, MAX_DICT_SIZE):
            return "dict"
    return "plain"


class ColumnSegment:
    """One immutable encoded run of a column, with its zone map.

    Build via :meth:`encode`; the payload depends on :attr:`encoding`:

    * ``plain`` — ``values`` (the raw NumPy array);
    * ``dict`` — ``codes`` (narrow unsigned ints) + ``dictionary``
      (distinct values in first-appearance order);
    * ``rle`` — ``values`` (one per run) + ``run_lengths``.
    """

    __slots__ = ("encoding", "dtype", "n_rows", "values", "codes",
                 "dictionary", "run_lengths", "_run_ends", "zone_map",
                 "_value_counts")

    def __init__(self, encoding, dtype, n_rows, values=None, codes=None,
                 dictionary=None, run_lengths=None, zone_map=None):
        self.encoding = encoding
        self.dtype = dtype
        self.n_rows = int(n_rows)
        self.values = values
        self.codes = codes
        self.dictionary = dictionary
        self.run_lengths = run_lengths
        self._run_ends = (
            None if run_lengths is None else np.cumsum(run_lengths)
        )
        self.zone_map = zone_map
        self._value_counts = None

    @classmethod
    def encode(cls, arr, dtype, allowed=DEFAULT_ENCODINGS):
        """Seal ``arr`` (already in the column's NumPy dtype) into a segment."""
        encoding = choose_encoding(arr, dtype, allowed)
        if encoding == "rle":
            starts = _run_bounds(arr)
            lengths = np.diff(np.r_[starts, len(arr)]).astype(np.int64)
            run_values = arr[starts]
            zone = ZoneMap.build(run_values, dtype)
            if dtype is DataType.TEXT and zone.null_count:
                # Count NULL *rows*, not NULL runs.
                null_runs = [i for i, v in enumerate(run_values.tolist())
                             if v is None]
                zone.null_count = int(lengths[null_runs].sum())
            return cls("rle", dtype, len(arr), values=run_values,
                       run_lengths=lengths, zone_map=zone)
        if encoding == "dict":
            if dtype is DataType.TEXT:
                codes, dictionary = _object_factorize(arr)
            else:
                codes, dictionary = _numeric_factorize(arr)
            narrow = codes.astype(_narrow_code_dtype(len(dictionary)))
            zone = ZoneMap.build(dictionary, dtype,
                                 distinct_est=len(dictionary))
            if dtype is DataType.TEXT and zone.null_count:
                # Count NULL *rows*, not the dictionary's single None slot.
                null_code = next(
                    i for i, v in enumerate(dictionary.tolist())
                    if v is None
                )
                zone.null_count = int((codes == null_code).sum())
            return cls("dict", dtype, len(arr), codes=narrow,
                       dictionary=dictionary, zone_map=zone)
        # ``plain`` keeps a reference (segments are immutable by contract).
        return cls("plain", dtype, len(arr), values=arr,
                   zone_map=ZoneMap.build(arr, dtype))

    # -- access --------------------------------------------------------
    def decode(self):
        """The segment's values as a full NumPy array (original dtype)."""
        if self.encoding == "plain":
            return self.values
        if self.encoding == "dict":
            return self.dictionary[self.codes]
        return np.repeat(self.values, self.run_lengths)

    def take(self, ids):
        """Gather rows by segment-local ids without decoding the rest."""
        if self.encoding == "plain":
            return self.values[ids]
        if self.encoding == "dict":
            return self.dictionary[self.codes[ids]]
        runs = np.searchsorted(self._run_ends, ids, side="right")
        return self.values[runs]

    def mask(self, op, value):
        """Boolean mask of ``column <op> value`` evaluated in encoded space.

        Dictionary segments compare the *dictionary* (one comparison per
        distinct value) and map the verdicts through the codes;
        run-length segments compare one value per run and repeat.
        Identical to the flat evaluation, including the scalar-collapse
        rule for incomparable types (a scalar verdict applies to every
        row) and any ``TypeError`` an object-array comparison raises.
        """
        fn = _OPS.get(op)
        if fn is None:
            raise ExecutionError("unknown predicate operator %r" % (op,))
        if self.encoding == "dict":
            hits = np.asarray(fn(self.dictionary, value))
            if hits.ndim == 0:
                return np.full(self.n_rows, bool(hits))
            return hits.astype(bool, copy=False)[self.codes]
        if self.encoding == "rle":
            hits = np.asarray(fn(self.values, value))
            if hits.ndim == 0:
                return np.full(self.n_rows, bool(hits))
            return np.repeat(hits.astype(bool, copy=False),
                             self.run_lengths)
        m = np.asarray(fn(self.values, value))
        if m.ndim == 0:
            return np.full(self.n_rows, bool(m))
        return m.astype(bool, copy=False)

    # -- statistics ----------------------------------------------------
    def value_counts(self):
        """``(values, counts)`` in first-appearance order, or ``None``.

        Free for dictionary segments, one pass over the runs for RLE,
        computed once and cached for plain segments. Returns ``None``
        when exact counting is unsound (FLOAT segments containing NaN),
        signalling callers to fall back to a full-column scan.
        """
        if self._value_counts is not None:
            return self._value_counts
        if self.n_rows == 0:
            empty = np.empty(0, dtype=self.dtype.numpy_dtype)
            self._value_counts = (empty, np.empty(0, dtype=np.int64))
            return self._value_counts
        if self.encoding == "dict":
            counts = np.bincount(self.codes, minlength=len(self.dictionary))
            self._value_counts = (self.dictionary,
                                  counts.astype(np.int64))
            return self._value_counts
        if self.encoding == "rle":
            if self.dtype is DataType.TEXT:
                codes, dictionary = _object_factorize(self.values)
            else:
                codes, dictionary = _numeric_factorize(self.values)
            counts = np.zeros(len(dictionary), dtype=np.int64)
            np.add.at(counts, codes, self.run_lengths)
            self._value_counts = (dictionary, counts)
            return self._value_counts
        arr = self.values
        if self.dtype is DataType.FLOAT and bool(np.isnan(arr).any()):
            return None
        if self.dtype is DataType.TEXT:
            codes, dictionary = _object_factorize(arr)
            counts = np.bincount(codes, minlength=len(dictionary))
        else:
            codes, dictionary = _numeric_factorize(arr)
            counts = np.bincount(codes, minlength=len(dictionary))
        self._value_counts = (dictionary, counts.astype(np.int64))
        return self._value_counts

    def encoded_bytes(self):
        """Modeled storage footprint of this segment, in bytes."""
        width = VALUE_BYTES[self.dtype]
        if self.encoding == "plain":
            return self.n_rows * width
        if self.encoding == "dict":
            return (self.n_rows * self.codes.dtype.itemsize
                    + len(self.dictionary) * width)
        return len(self.values) * (width + RLE_LENGTH_BYTES)

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return "ColumnSegment(%s, rows=%d, bytes=%d)" % (
            self.encoding, self.n_rows, self.encoded_bytes()
        )


def merge_value_counts(segments):
    """Merged exact value counts across ``segments``, or ``None``.

    Returns ``{value: count}`` with keys in first-appearance order
    (Python dicts preserve insertion order) — the incremental statistics
    path ANALYZE uses instead of re-scanning a full column. ``None``
    signals that some segment could not count exactly (NaN-bearing
    FLOAT), so the caller must fall back to the decoded column. Shared by
    :class:`~repro.engine.storage.Table` and
    :class:`~repro.engine.storage.TableSnapshot`.
    """
    merged = {}
    for seg in segments:
        vc = seg.value_counts()
        if vc is None:
            return None
        values, counts = vc
        for v, c in zip(values.tolist(), counts.tolist()):
            merged[v] = merged.get(v, 0) + c
    return merged
