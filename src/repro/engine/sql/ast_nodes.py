"""AST node classes produced by the SQL parser."""


class ColumnRef:
    """A (possibly qualified) column reference ``[table.]column``."""

    __slots__ = ("table", "column")

    def __init__(self, column, table=None):
        self.table = table
        self.column = column

    def __repr__(self):
        if self.table:
            return "%s.%s" % (self.table, self.column)
        return self.column


class Literal:
    """A constant: int, float, or string."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return repr(self.value)


class Comparison:
    """A binary comparison ``left <op> right`` in a WHERE/ON clause.

    ``left`` is always a :class:`ColumnRef`; ``right`` is a
    :class:`ColumnRef` (join predicate) or :class:`Literal` (filter).
    """

    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right):
        self.left = left
        self.op = op
        self.right = right

    @property
    def is_join(self):
        """Whether both sides are column references."""
        return isinstance(self.right, ColumnRef)

    def __repr__(self):
        return "%r %s %r" % (self.left, self.op, self.right)


class AggCall:
    """An aggregate call ``func(column)`` or ``COUNT(*)``."""

    __slots__ = ("func", "arg")

    def __init__(self, func, arg):
        self.func = func.lower()
        self.arg = arg  # ColumnRef or None for COUNT(*)

    def __repr__(self):
        return "%s(%s)" % (self.func, "*" if self.arg is None else repr(self.arg))


class TableRef:
    """A table in the FROM clause, with an optional alias."""

    __slots__ = ("name", "alias")

    def __init__(self, name, alias=None):
        self.name = name
        self.alias = alias

    @property
    def effective_name(self):
        """Alias if present, else the table name."""
        return self.alias or self.name

    def __repr__(self):
        if self.alias:
            return "%s AS %s" % (self.name, self.alias)
        return self.name


class SelectStmt:
    """A parsed SELECT statement.

    Attributes:
        items: list of :class:`ColumnRef`/:class:`AggCall`, or the string
            ``"*"`` for select-all.
        tables: list of :class:`TableRef` from FROM (comma list).
        joins: list of ``(TableRef, Comparison)`` from explicit JOIN ... ON.
        where: list of :class:`Comparison` (AND-ed); OR is not supported by
            the core grammar.
        group_by: list of :class:`ColumnRef`.
        order_by: optional ``(ColumnRef, descending)``.
        limit: optional int.
        distinct: whether SELECT DISTINCT was used.
    """

    def __init__(self, items, tables, joins=(), where=(), group_by=(),
                 order_by=None, limit=None, distinct=False):
        self.items = items
        self.tables = list(tables)
        self.joins = list(joins)
        self.where = list(where)
        self.group_by = list(group_by)
        self.order_by = order_by
        self.limit = limit
        self.distinct = distinct

    def __repr__(self):
        return "SelectStmt(tables=%r, joins=%d, where=%d)" % (
            [t.effective_name for t in self.tables],
            len(self.joins),
            len(self.where),
        )


class CreateTableStmt:
    """``CREATE TABLE name (col type, ...)``."""

    def __init__(self, name, columns):
        self.name = name
        self.columns = list(columns)  # list of (name, type_name)

    def __repr__(self):
        return "CreateTableStmt(%r, %d columns)" % (self.name, len(self.columns))


class CreateIndexStmt:
    """``CREATE [HYPOTHETICAL] INDEX name ON table (column) [USING kind]``."""

    def __init__(self, name, table, column, kind="btree", hypothetical=False):
        self.name = name
        self.table = table
        self.column = column
        self.kind = kind
        self.hypothetical = hypothetical

    def __repr__(self):
        return "CreateIndexStmt(%r on %s.%s)" % (self.name, self.table, self.column)


class InsertStmt:
    """``INSERT INTO name [(cols)] VALUES (...), (...)``."""

    def __init__(self, table, columns, rows):
        self.table = table
        self.columns = list(columns) if columns else None
        self.rows = [list(r) for r in rows]

    def __repr__(self):
        return "InsertStmt(%r, %d rows)" % (self.table, len(self.rows))


class AnalyzeStmt:
    """``ANALYZE [table]``."""

    def __init__(self, table=None):
        self.table = table

    def __repr__(self):
        return "AnalyzeStmt(%r)" % (self.table,)
