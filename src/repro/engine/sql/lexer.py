"""SQL tokenizer.

A hand-rolled scanner producing a flat token list. It recognizes the SQL
subset the engine supports plus the AISQL extension keywords (``MODEL``,
``PREDICT``, ...), which are tokenized as ordinary identifiers/keywords and
interpreted by the declarative layer.
"""

from enum import Enum

from repro.common import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "JOIN", "INNER", "ON",
    "GROUP", "ORDER", "BY", "ASC", "DESC", "LIMIT", "AS", "CREATE", "TABLE",
    "INDEX", "INSERT", "INTO", "VALUES", "ANALYZE", "USING", "DISTINCT",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "MODEL", "PREDICT", "FEATURES",
    "TARGET", "WITH", "DROP", "VIEW", "MATERIALIZED", "BETWEEN", "HYPOTHETICAL",
}


class TokenType(Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


class Token:
    """One lexical token with its source position."""

    __slots__ = ("type", "value", "position")

    def __init__(self, type_, value, position):
        self.type = type_
        self.value = value
        self.position = position

    def matches(self, type_, value=None):
        """Type (and optionally case-insensitive value) equality test."""
        if self.type is not type_:
            return False
        if value is None:
            return True
        if isinstance(self.value, str):
            return self.value.upper() == value.upper()
        return self.value == value

    def __repr__(self):
        return "Token(%s, %r)" % (self.type.value, self.value)


_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>")
_ONE_CHAR_OPS = ("=", "<", ">")
_PUNCT = "(),.;*"


def tokenize(text):
    """Tokenize SQL text into a list of :class:`Token` ending with EOF.

    Raises:
        ParseError: on unterminated strings or unexpected characters.
    """
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # Line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (
            ch in "+-" and i + 1 < n and text[i + 1].isdigit()
        ):
            start = i
            i += 1
            seen_dot = False
            seen_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    text[i + 1].isdigit() or text[i + 1] in "+-"
                ):
                    seen_exp = True
                    i += 2
                else:
                    break
            raw = text[start:i]
            value = float(raw) if (seen_dot or seen_exp) else int(raw)
            tokens.append(Token(TokenType.NUMBER, value, start))
            continue
        if ch == "'":
            start = i
            i += 1
            chunks = []
            while True:
                if i >= n:
                    raise ParseError("unterminated string literal", start)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(text[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            op = "!=" if two == "<>" else two
            tokens.append(Token(TokenType.OP, op, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenType.OP, ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise ParseError("unexpected character %r" % ch, i)
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens
