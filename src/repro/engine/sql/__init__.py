"""SQL front end: lexer, parser, AST, and lowering to structured queries."""

from repro.engine.sql.lexer import Token, TokenType, tokenize
from repro.engine.sql.ast_nodes import (
    SelectStmt,
    TableRef,
    ColumnRef,
    Literal,
    Comparison,
    AggCall,
    CreateTableStmt,
    CreateIndexStmt,
    InsertStmt,
    AnalyzeStmt,
)
from repro.engine.sql.parser import Parser, parse_sql
from repro.engine.sql.lowering import lower_select

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "SelectStmt",
    "TableRef",
    "ColumnRef",
    "Literal",
    "Comparison",
    "AggCall",
    "CreateTableStmt",
    "CreateIndexStmt",
    "InsertStmt",
    "AnalyzeStmt",
    "Parser",
    "parse_sql",
    "lower_select",
]
