"""Lowering: SELECT AST -> :class:`~repro.engine.query.ConjunctiveQuery`.

Binds column references against the catalog (resolving unqualified names
and aliases), classifies WHERE comparisons into join edges vs. filter
predicates, and validates aggregate/grouping shape.

Self-joins (the same base table appearing twice) are not supported by the
structured query model; the binder rejects them with a clear error.
"""

from repro.common import ParseError, PlanError
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate
from repro.engine.sql.ast_nodes import AggCall, ColumnRef, Literal


class _Binder:
    def __init__(self, catalog, table_refs):
        self.catalog = catalog
        self.alias_to_table = {}
        self.tables = []
        for ref in table_refs:
            table = catalog.table(ref.name)  # raises CatalogError if missing
            effective = ref.effective_name
            key = effective.lower()
            if key in self.alias_to_table:
                raise ParseError("duplicate table/alias %r in FROM" % effective)
            base = table.name
            if base.lower() in {t.lower() for t in self.alias_to_table.values()}:
                raise ParseError(
                    "self-joins are not supported (table %r appears twice)" % base
                )
            self.alias_to_table[key] = base
            self.tables.append(base)

    def resolve(self, col_ref):
        """Resolve a ColumnRef to ``(base_table, column_name)``."""
        if col_ref.table is not None:
            key = col_ref.table.lower()
            if key not in self.alias_to_table:
                raise ParseError(
                    "unknown table or alias %r" % (col_ref.table,)
                )
            base = self.alias_to_table[key]
            schema = self.catalog.table(base).schema
            return base, schema.column(col_ref.column).name
        matches = []
        for base in self.tables:
            schema = self.catalog.table(base).schema
            if schema.has_column(col_ref.column):
                matches.append((base, schema.column(col_ref.column).name))
        if not matches:
            raise ParseError("unknown column %r" % (col_ref.column,))
        if len(matches) > 1:
            raise ParseError(
                "ambiguous column %r (in tables: %s)"
                % (col_ref.column, ", ".join(m[0] for m in matches))
            )
        return matches[0]


def lower_select(stmt, catalog):
    """Lower a parsed :class:`SelectStmt` into a :class:`ConjunctiveQuery`.

    Args:
        stmt: the AST from :func:`repro.engine.sql.parse_sql`.
        catalog: the :class:`repro.engine.catalog.Catalog` for binding.

    Returns:
        ConjunctiveQuery
    """
    all_refs = list(stmt.tables) + [ref for ref, __ in stmt.joins]
    binder = _Binder(catalog, all_refs)

    join_edges = []
    predicates = []
    for __, cond in stmt.joins:
        lt, lc = binder.resolve(cond.left)
        rt, rc = binder.resolve(cond.right)
        if cond.op != "=":
            raise PlanError("only equi-joins are supported in ON clauses")
        join_edges.append(JoinEdge(lt, lc, rt, rc))
    for comp in stmt.where:
        if comp.is_join:
            lt, lc = binder.resolve(comp.left)
            rt, rc = binder.resolve(comp.right)
            if comp.op != "=":
                raise PlanError("column-to-column predicates must be equi-joins")
            if lt.lower() == rt.lower():
                raise PlanError(
                    "intra-table column comparisons are not supported"
                )
            join_edges.append(JoinEdge(lt, lc, rt, rc))
        else:
            t, c = binder.resolve(comp.left)
            value = comp.right.value if isinstance(comp.right, Literal) else comp.right
            predicates.append(Predicate(t, c, comp.op, value))

    projections = []
    aggregates = []
    if stmt.items != "*":
        for item in stmt.items:
            if isinstance(item, AggCall):
                if item.arg is None:
                    aggregates.append(Aggregate("count"))
                else:
                    t, c = binder.resolve(item.arg)
                    aggregates.append(Aggregate(item.func, t, c))
            elif isinstance(item, ColumnRef):
                projections.append(binder.resolve(item))
            else:
                raise PlanError("unsupported select item %r" % (item,))

    group_by = [binder.resolve(c) for c in stmt.group_by]
    if aggregates and projections:
        extra = [p for p in projections if p not in group_by]
        if extra:
            raise PlanError(
                "non-aggregated columns %r must appear in GROUP BY" % (extra,)
            )
    order_by = None
    if stmt.order_by is not None:
        col, descending = stmt.order_by
        order_by = (binder.resolve(col), descending)

    return ConjunctiveQuery(
        tables=binder.tables,
        join_edges=join_edges,
        predicates=predicates,
        projections=projections,
        aggregates=aggregates,
        group_by=group_by,
        order_by=order_by,
        limit=stmt.limit,
        distinct=stmt.distinct,
    )
