"""Recursive-descent parser for the supported SQL subset.

Grammar (informally)::

    statement   := select | create_table | create_index | insert | analyze
    select      := SELECT [DISTINCT] items FROM table_ref (,"" table_ref)*
                   (JOIN table_ref ON comparison)*
                   [WHERE comparison (AND comparison)*]
                   [GROUP BY column_ref (, column_ref)*]
                   [ORDER BY column_ref [ASC|DESC]]
                   [LIMIT number]
    items       := * | item (, item)*
    item        := column_ref | agg '(' (column_ref | *) ')'
    comparison  := column_ref op (literal | column_ref)
    create_table:= CREATE TABLE name '(' col type (, col type)* ')'
    create_index:= CREATE [HYPOTHETICAL] INDEX name ON table '(' column ')'
                   [USING (btree|hash)]
    insert      := INSERT INTO name ['(' cols ')'] VALUES tuple (, tuple)*
    analyze     := ANALYZE [name]

OR, subqueries and expressions beyond a single comparison are intentionally
out of scope; the AI4DB experiments operate on conjunctive queries (see
DESIGN.md). ``BETWEEN`` is desugared into two comparisons.
"""

from repro.common import ParseError
from repro.engine.sql.ast_nodes import (
    AggCall,
    AnalyzeStmt,
    ColumnRef,
    Comparison,
    CreateIndexStmt,
    CreateTableStmt,
    InsertStmt,
    Literal,
    SelectStmt,
    TableRef,
)
from repro.engine.sql.lexer import TokenType, tokenize

_AGG_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class Parser:
    """Token-stream parser; one instance per statement string."""

    def __init__(self, text):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def _peek(self):
        return self.tokens[self.pos]

    def _advance(self):
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def _check(self, type_, value=None):
        return self._peek().matches(type_, value)

    def _accept(self, type_, value=None):
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_, value=None):
        tok = self._accept(type_, value)
        if tok is None:
            got = self._peek()
            raise ParseError(
                "expected %s%s but found %r"
                % (type_.value, " %r" % value if value else "", got.value),
                got.position,
            )
        return tok

    def _expect_ident(self):
        tok = self._peek()
        # Allow non-reserved keywords as identifiers where unambiguous.
        if tok.type in (TokenType.IDENT,):
            return self._advance().value
        raise ParseError("expected identifier, found %r" % (tok.value,), tok.position)

    # -- entry points ---------------------------------------------------
    def parse_statement(self):
        """Parse one statement and require EOF (a trailing ';' is allowed)."""
        stmt = self._statement()
        self._accept(TokenType.PUNCT, ";")
        if not self._check(TokenType.EOF):
            tok = self._peek()
            raise ParseError(
                "unexpected trailing input %r" % (tok.value,), tok.position
            )
        return stmt

    def _statement(self):
        if self._check(TokenType.KEYWORD, "SELECT"):
            return self._select()
        if self._check(TokenType.KEYWORD, "CREATE"):
            return self._create()
        if self._check(TokenType.KEYWORD, "INSERT"):
            return self._insert()
        if self._check(TokenType.KEYWORD, "ANALYZE"):
            return self._analyze()
        tok = self._peek()
        raise ParseError(
            "statement must start with SELECT/CREATE/INSERT/ANALYZE, found %r"
            % (tok.value,),
            tok.position,
        )

    # -- SELECT ----------------------------------------------------------
    def _select(self):
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = bool(self._accept(TokenType.KEYWORD, "DISTINCT"))
        items = self._select_items()
        self._expect(TokenType.KEYWORD, "FROM")
        tables = [self._table_ref()]
        while self._accept(TokenType.PUNCT, ","):
            tables.append(self._table_ref())
        joins = []
        while True:
            if self._accept(TokenType.KEYWORD, "INNER"):
                self._expect(TokenType.KEYWORD, "JOIN")
            elif not self._accept(TokenType.KEYWORD, "JOIN"):
                break
            ref = self._table_ref()
            self._expect(TokenType.KEYWORD, "ON")
            cond = self._comparison()
            if not cond.is_join:
                raise ParseError("ON clause must be an equi-join between columns")
            joins.append((ref, cond))
        where = []
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where.extend(self._comparison_or_between())
            while self._accept(TokenType.KEYWORD, "AND"):
                where.extend(self._comparison_or_between())
            if self._check(TokenType.KEYWORD, "OR"):
                tok = self._peek()
                raise ParseError(
                    "OR is not supported by the conjunctive-query engine",
                    tok.position,
                )
        group_by = []
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by.append(self._column_ref())
            while self._accept(TokenType.PUNCT, ","):
                group_by.append(self._column_ref())
        order_by = None
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            col = self._column_ref()
            descending = False
            if self._accept(TokenType.KEYWORD, "DESC"):
                descending = True
            else:
                self._accept(TokenType.KEYWORD, "ASC")
            order_by = (col, descending)
        limit = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            tok = self._expect(TokenType.NUMBER)
            if not isinstance(tok.value, int) or tok.value < 0:
                raise ParseError("LIMIT needs a non-negative integer", tok.position)
            limit = tok.value
        return SelectStmt(
            items, tables, joins, where, group_by, order_by, limit, distinct
        )

    def _select_items(self):
        if self._accept(TokenType.PUNCT, "*"):
            return "*"
        items = [self._select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._select_item())
        return items

    def _select_item(self):
        tok = self._peek()
        if tok.type is TokenType.KEYWORD and tok.value in _AGG_KEYWORDS:
            self._advance()
            self._expect(TokenType.PUNCT, "(")
            if self._accept(TokenType.PUNCT, "*"):
                if tok.value != "COUNT":
                    raise ParseError("only COUNT(*) may take *", tok.position)
                arg = None
            else:
                arg = self._column_ref()
            self._expect(TokenType.PUNCT, ")")
            return AggCall(tok.value, arg)
        return self._column_ref()

    def _table_ref(self):
        name = self._expect_ident()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect_ident()
        elif self._check(TokenType.IDENT):
            alias = self._advance().value
        return TableRef(name, alias)

    def _column_ref(self):
        first = self._expect_ident()
        if self._accept(TokenType.PUNCT, "."):
            second = self._expect_ident()
            return ColumnRef(second, table=first)
        return ColumnRef(first)

    def _comparison(self):
        left = self._column_ref()
        op_tok = self._expect(TokenType.OP)
        right = self._operand()
        return Comparison(left, op_tok.value, right)

    def _comparison_or_between(self):
        """Parse one predicate; BETWEEN desugars into two comparisons."""
        left = self._column_ref()
        if self._accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._literal()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._literal()
            return [
                Comparison(left, ">=", low),
                Comparison(left, "<=", high),
            ]
        op_tok = self._expect(TokenType.OP)
        right = self._operand()
        return [Comparison(left, op_tok.value, right)]

    def _operand(self):
        tok = self._peek()
        if tok.type in (TokenType.NUMBER, TokenType.STRING):
            self._advance()
            return Literal(tok.value)
        return self._column_ref()

    def _literal(self):
        tok = self._peek()
        if tok.type in (TokenType.NUMBER, TokenType.STRING):
            self._advance()
            return Literal(tok.value)
        raise ParseError("expected a literal, found %r" % (tok.value,), tok.position)

    # -- CREATE ----------------------------------------------------------
    def _create(self):
        self._expect(TokenType.KEYWORD, "CREATE")
        hypothetical = bool(self._accept(TokenType.KEYWORD, "HYPOTHETICAL"))
        if self._accept(TokenType.KEYWORD, "TABLE"):
            if hypothetical:
                raise ParseError("HYPOTHETICAL applies only to indexes")
            return self._create_table()
        if self._accept(TokenType.KEYWORD, "INDEX"):
            return self._create_index(hypothetical)
        tok = self._peek()
        raise ParseError(
            "CREATE must be followed by TABLE or INDEX, found %r" % (tok.value,),
            tok.position,
        )

    def _create_table(self):
        name = self._expect_ident()
        self._expect(TokenType.PUNCT, "(")
        columns = []
        while True:
            col = self._expect_ident()
            type_tok = self._peek()
            if type_tok.type is TokenType.IDENT:
                type_name = self._advance().value
            else:
                raise ParseError(
                    "expected a type name for column %r" % col, type_tok.position
                )
            columns.append((col, type_name))
            if not self._accept(TokenType.PUNCT, ","):
                break
        self._expect(TokenType.PUNCT, ")")
        return CreateTableStmt(name, columns)

    def _create_index(self, hypothetical):
        name = self._expect_ident()
        self._expect(TokenType.KEYWORD, "ON")
        table = self._expect_ident()
        self._expect(TokenType.PUNCT, "(")
        column = self._expect_ident()
        self._expect(TokenType.PUNCT, ")")
        kind = "btree"
        if self._accept(TokenType.KEYWORD, "USING"):
            kind = self._expect_ident().lower()
        return CreateIndexStmt(name, table, column, kind, hypothetical)

    # -- INSERT ----------------------------------------------------------
    def _insert(self):
        self._expect(TokenType.KEYWORD, "INSERT")
        self._expect(TokenType.KEYWORD, "INTO")
        table = self._expect_ident()
        columns = None
        if self._accept(TokenType.PUNCT, "("):
            columns = [self._expect_ident()]
            while self._accept(TokenType.PUNCT, ","):
                columns.append(self._expect_ident())
            self._expect(TokenType.PUNCT, ")")
        self._expect(TokenType.KEYWORD, "VALUES")
        rows = [self._value_tuple()]
        while self._accept(TokenType.PUNCT, ","):
            rows.append(self._value_tuple())
        return InsertStmt(table, columns, rows)

    def _value_tuple(self):
        self._expect(TokenType.PUNCT, "(")
        values = [self._literal().value]
        while self._accept(TokenType.PUNCT, ","):
            values.append(self._literal().value)
        self._expect(TokenType.PUNCT, ")")
        return values

    # -- ANALYZE ---------------------------------------------------------
    def _analyze(self):
        self._expect(TokenType.KEYWORD, "ANALYZE")
        table = None
        if self._check(TokenType.IDENT):
            table = self._advance().value
        return AnalyzeStmt(table)


def parse_sql(text):
    """Parse one SQL statement string into an AST node."""
    return Parser(text).parse_statement()
