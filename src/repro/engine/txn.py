"""Transaction workload simulator: locks, conflicts, aborts, makespan.

Substrate for the learned transaction-management experiments (E11). A
transaction is a timed sequence of key accesses; the simulator executes a
*scheduled* batch on ``n_workers`` under strict two-phase locking with a
wait-timeout abort policy, and reports makespan, aborts and wait time.
Scheduling policy is the experimental variable: FIFO vs. cost-ordered vs.
the learned conflict-aware scheduler in
:mod:`repro.ai4db.design.txn_mgmt`.
"""

import heapq

import numpy as np

from repro.common import ensure_rng


class Transaction:
    """One transaction: read/write key sets plus a service duration.

    Attributes:
        txn_id: unique integer id.
        reads: frozenset of keys read.
        writes: frozenset of keys written.
        duration: service time in milliseconds (excluding waits).
        kind: workload class label ("payment", "order", "scan", ...).
    """

    __slots__ = ("txn_id", "reads", "writes", "duration", "kind")

    def __init__(self, txn_id, reads, writes, duration, kind="generic"):
        self.txn_id = txn_id
        self.reads = frozenset(reads)
        self.writes = frozenset(writes)
        self.duration = float(duration)
        self.kind = kind

    def conflicts_with(self, other):
        """Whether the two transactions have a lock conflict (RW/WR/WW)."""
        if self.writes & other.writes:
            return True
        if self.writes & other.reads:
            return True
        if self.reads & other.writes:
            return True
        return False

    def keys(self):
        """All keys the transaction touches."""
        return self.reads | self.writes

    def __repr__(self):
        return "Transaction(#%d, r=%d, w=%d, %.1fms)" % (
            self.txn_id, len(self.reads), len(self.writes), self.duration
        )


def hotspot_workload(n_txns=300, n_keys=1000, hot_keys=20, hot_fraction=0.6,
                     reads_per_txn=4, writes_per_txn=2, seed=0):
    """A hotspot OLTP batch: most accesses hit a few hot keys.

    Args:
        n_txns: number of transactions.
        n_keys: key space size.
        hot_keys: number of contended keys.
        hot_fraction: probability an access goes to the hot set.
        seed: randomness seed.

    Returns:
        list of :class:`Transaction`.
    """
    rng = ensure_rng(seed)
    txns = []
    for i in range(n_txns):
        def draw(count):
            keys = set()
            for __ in range(count):
                if rng.random() < hot_fraction:
                    keys.add(int(rng.integers(0, hot_keys)))
                else:
                    keys.add(int(rng.integers(hot_keys, n_keys)))
            return keys

        n_r = max(1, int(rng.poisson(reads_per_txn)))
        n_w = int(rng.poisson(writes_per_txn))
        reads = draw(n_r)
        writes = draw(n_w)
        duration = float(rng.uniform(1.0, 8.0) + 2.0 * (n_r + n_w))
        kind = "write" if writes else "read"
        txns.append(Transaction(i, reads - writes, writes, duration, kind))
    return txns


class ScheduleResult:
    """Outcome of simulating a schedule.

    Attributes:
        makespan: wall-clock ms until the last transaction commits.
        total_wait: summed lock-wait milliseconds.
        aborts: number of abort-and-retry events.
        committed: number of committed transactions.
        avg_latency: mean commit latency (queue + wait + service).
    """

    def __init__(self, makespan, total_wait, aborts, committed, avg_latency):
        self.makespan = makespan
        self.total_wait = total_wait
        self.aborts = aborts
        self.committed = committed
        self.avg_latency = avg_latency

    def __repr__(self):
        return (
            "ScheduleResult(makespan=%.1f, waits=%.1f, aborts=%d, latency=%.1f)"
            % (self.makespan, self.total_wait, self.aborts, self.avg_latency)
        )


class LockTableSimulator:
    """Simulates strict 2PL execution of a scheduled transaction batch.

    The schedule is a list of worker queues (one list of transactions per
    worker). Each worker runs its queue in order; a transaction acquires
    all its locks at start (conservative 2PL — keeps the simulation
    deterministic and deadlock-free) and releases at commit. If the locks
    are not available, the transaction waits; if the wait would exceed
    ``timeout_ms`` it aborts, pays ``abort_penalty_ms``, and retries at the
    back of its worker's queue (up to ``max_retries``).

    Args:
        timeout_ms: lock-wait timeout before abort.
        abort_penalty_ms: penalty added on each abort.
        max_retries: retries before giving up (counted as committed last).
    """

    def __init__(self, timeout_ms=50.0, abort_penalty_ms=5.0, max_retries=10):
        self.timeout_ms = timeout_ms
        self.abort_penalty_ms = abort_penalty_ms
        self.max_retries = max_retries

    def run(self, worker_queues):
        """Simulate; returns a :class:`ScheduleResult`."""
        # lock_free_at[key] = (time read locks drain, time write lock drains)
        write_free = {}
        read_free = {}
        total_wait = 0.0
        aborts = 0
        latencies = []
        makespan = 0.0
        # Event loop: workers advance independently; we process the worker
        # with the smallest current time next (priority queue).
        queues = [list(q) for q in worker_queues]
        heap = [(0.0, w) for w in range(len(queues)) if queues[w]]
        heapq.heapify(heap)
        worker_time = [0.0] * len(queues)
        retries = {}
        arrival = {}
        for q in queues:
            for t in q:
                arrival.setdefault(t.txn_id, 0.0)
        while heap:
            now, w = heapq.heappop(heap)
            if not queues[w]:
                continue
            txn = queues[w].pop(0)
            # Earliest time all needed locks are free.
            ready = now
            for key in txn.keys():
                ready = max(ready, write_free.get(key, 0.0))
            for key in txn.writes:
                ready = max(ready, read_free.get(key, 0.0))
            wait = ready - now
            if wait > self.timeout_ms and retries.get(txn.txn_id, 0) < self.max_retries:
                # Abort: pay the penalty, requeue at the back.
                aborts += 1
                retries[txn.txn_id] = retries.get(txn.txn_id, 0) + 1
                worker_time[w] = now + self.abort_penalty_ms
                queues[w].append(txn)
                heapq.heappush(heap, (worker_time[w], w))
                continue
            total_wait += max(0.0, wait)
            start = max(now, ready)
            end = start + txn.duration
            for key in txn.writes:
                write_free[key] = max(write_free.get(key, 0.0), end)
            for key in txn.reads:
                read_free[key] = max(read_free.get(key, 0.0), end)
            worker_time[w] = end
            makespan = max(makespan, end)
            latencies.append(end - arrival[txn.txn_id])
            if queues[w]:
                heapq.heappush(heap, (worker_time[w], w))
        committed = len(latencies)
        avg_latency = float(np.mean(latencies)) if latencies else 0.0
        return ScheduleResult(makespan, total_wait, aborts, committed, avg_latency)


def fifo_schedule(txns, n_workers):
    """Round-robin FIFO assignment (the traditional baseline)."""
    queues = [[] for _ in range(n_workers)]
    for i, t in enumerate(txns):
        queues[i % n_workers].append(t)
    return queues


def cost_ordered_schedule(txns, n_workers):
    """Shortest-job-first assignment by predicted duration (cost baseline)."""
    ordered = sorted(txns, key=lambda t: t.duration)
    queues = [[] for _ in range(n_workers)]
    loads = [0.0] * n_workers
    for t in ordered:
        w = int(np.argmin(loads))
        queues[w].append(t)
        loads[w] += t.duration
    return queues
