"""Evaluation metrics used across AI4DB and DB4AI experiments.

Includes the database-specific *q-error* metric (the standard cardinality-
estimation error measure: ``max(est/true, true/est)``) alongside the usual
regression and classification scores.
"""

import numpy as np


def _pair(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            "shape mismatch: %s vs %s" % (y_true.shape, y_pred.shape)
        )
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return y_true, y_pred


def mean_absolute_error(y_true, y_pred):
    """Mean of ``|y_true - y_pred|``."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_squared_error(y_true, y_pred):
    """Mean of squared residuals."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred):
    """Square root of :func:`mean_squared_error`."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r2_score(y_true, y_pred):
    """Coefficient of determination; 1.0 is perfect, 0.0 matches the mean."""
    y_true, y_pred = _pair(y_true, y_pred)
    ss_res = np.sum((y_true - y_pred) ** 2)
    ss_tot = np.sum((y_true - y_true.mean()) ** 2)
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return float(1.0 - ss_res / ss_tot)


def q_error(true_values, est_values, floor=1.0):
    """Per-sample q-error: ``max(est/true, true/est)`` with a value floor.

    Cardinalities are floored at ``floor`` (default 1 row) before the ratio,
    matching the convention in the learned-cardinality literature so that
    zero estimates do not produce infinities.

    Returns:
        ndarray of per-sample q-errors (all >= 1).
    """
    t = np.maximum(np.asarray(true_values, dtype=float).ravel(), floor)
    e = np.maximum(np.asarray(est_values, dtype=float).ravel(), floor)
    if t.shape != e.shape:
        raise ValueError("shape mismatch: %s vs %s" % (t.shape, e.shape))
    return np.maximum(t / e, e / t)


def q_error_summary(true_values, est_values, quantiles=(0.5, 0.9, 0.95, 0.99)):
    """Summarize q-errors at the quantiles the literature reports.

    Returns:
        dict mapping ``"mean"``, ``"max"`` and ``"q50"``-style keys to floats.
    """
    qe = q_error(true_values, est_values)
    out = {"mean": float(qe.mean()), "max": float(qe.max())}
    for q in quantiles:
        out["q%d" % int(round(q * 100))] = float(np.quantile(qe, q))
    return out


def accuracy(y_true, y_pred):
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            "shape mismatch: %s vs %s" % (y_true.shape, y_pred.shape)
        )
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return float(np.mean(y_true == y_pred))


def precision_recall_f1(y_true, y_pred, positive=1):
    """Binary precision/recall/F1 for the ``positive`` label.

    Empty denominators yield 0.0 rather than NaN (the usual convention for
    detector benchmarks with no predicted/actual positives).

    Returns:
        ``(precision, recall, f1)`` floats.
    """
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            "shape mismatch: %s vs %s" % (y_true.shape, y_pred.shape)
        )
    tp = float(np.sum((y_pred == positive) & (y_true == positive)))
    fp = float(np.sum((y_pred == positive) & (y_true != positive)))
    fn = float(np.sum((y_pred != positive) & (y_true == positive)))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f1 = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f1


def log_loss(y_true, prob, eps=1e-12):
    """Binary cross-entropy between labels and predicted probabilities."""
    y_true, prob = _pair(y_true, prob)
    p = np.clip(prob, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p)))


def mean_absolute_percentage_error(y_true, y_pred, eps=1e-9):
    """MAPE with an epsilon guard against zero denominators."""
    y_true, y_pred = _pair(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def cumulative_regret(rewards, best_expected):
    """Cumulative regret curve of a bandit run.

    Args:
        rewards: sequence of realized per-step rewards.
        best_expected: expected per-step reward of the optimal arm.

    Returns:
        ndarray where entry ``t`` is ``(t+1)*best_expected - sum(rewards[:t+1])``.
    """
    rewards = np.asarray(rewards, dtype=float).ravel()
    steps = np.arange(1, rewards.size + 1)
    return steps * float(best_expected) - np.cumsum(rewards)
