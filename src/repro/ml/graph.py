"""GCN-lite: message-passing graph embedding on NetworkX graphs.

Backs the concurrent-query performance predictor (Zhou et al. [90]), which
embeds a *workload graph* — vertices are concurrently running operators,
edges are data-sharing/conflict relations — and regresses per-vertex
performance from the embedding.

The model is a standard 2-layer graph convolution with symmetric-normalized
adjacency, trained end-to-end with a linear readout per node. Everything is
dense NumPy, which is fine at workload-graph scale (tens of nodes).
"""

import numpy as np

from repro.common import ModelError, NotFittedError, ensure_rng


def normalized_adjacency(graph, nodes=None):
    """Symmetric-normalized adjacency with self-loops: ``D^-1/2 (A+I) D^-1/2``.

    Args:
        graph: an undirected :class:`networkx.Graph` (weights honored).
        nodes: optional explicit node ordering; default sorted by node key.

    Returns:
        ``(A_hat, nodes)`` — the dense normalized matrix and the ordering.
    """
    if nodes is None:
        nodes = sorted(graph.nodes())
    index = {n: i for i, n in enumerate(nodes)}
    n = len(nodes)
    A = np.eye(n)
    for u, v, data in graph.edges(data=True):
        w = float(data.get("weight", 1.0))
        A[index[u], index[v]] += w
        A[index[v], index[u]] += w
    deg = A.sum(axis=1)
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
    A_hat = A * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]
    return A_hat, list(nodes)


class GCNRegressor:
    """Two-layer GCN with a per-node linear readout, trained with Adam.

    Each training example is an entire graph: node-feature matrix ``X``
    (n_nodes x in_dim), adjacency from the graph structure, and a per-node
    target vector ``y``. The same weights are shared across graphs, so the
    model generalizes to unseen workload mixes.

    Args:
        in_dim: node feature dimension.
        hidden: hidden embedding width.
        epochs: training epochs over the graph list.
        lr: Adam learning rate.
        seed: init seed.
    """

    def __init__(self, in_dim, hidden=32, epochs=200, lr=1e-2, seed=0):
        rng = ensure_rng(seed)
        self.in_dim = in_dim
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.W1 = rng.normal(scale=np.sqrt(2.0 / in_dim), size=(in_dim, hidden))
        self.W2 = rng.normal(scale=np.sqrt(2.0 / hidden), size=(hidden, hidden))
        self.w_out = rng.normal(scale=np.sqrt(2.0 / hidden), size=(hidden, 1))
        self.b_out = np.zeros(1)
        self._fitted = False
        self.loss_curve_ = []

    @property
    def _params(self):
        return [self.W1, self.W2, self.w_out, self.b_out]

    def _forward(self, A_hat, X):
        H1_pre = A_hat @ X @ self.W1
        H1 = np.maximum(H1_pre, 0.0)
        H2_pre = A_hat @ H1 @ self.W2
        H2 = np.maximum(H2_pre, 0.0)
        out = H2 @ self.w_out + self.b_out
        cache = (A_hat, X, H1_pre, H1, H2_pre, H2)
        return out.ravel(), cache

    def _backward(self, cache, dout):
        A_hat, X, H1_pre, H1, H2_pre, H2 = cache
        dout = dout.reshape(-1, 1)
        g_w_out = H2.T @ dout
        g_b_out = dout.sum(axis=0)
        dH2 = dout @ self.w_out.T
        dH2_pre = dH2 * (H2_pre > 0)
        g_W2 = (A_hat @ H1).T @ dH2_pre
        dH1 = A_hat.T @ dH2_pre @ self.W2.T
        dH1_pre = dH1 * (H1_pre > 0)
        g_W1 = (A_hat @ X).T @ dH1_pre
        return [g_W1, g_W2, g_w_out, g_b_out]

    def fit(self, graphs, features, targets):
        """Train on a list of graphs with aligned features/targets.

        Args:
            graphs: list of :class:`networkx.Graph`.
            features: list of ``(n_nodes, in_dim)`` arrays; row order must
                match ``sorted(graph.nodes())``.
            targets: list of per-node target vectors.
        """
        if not (len(graphs) == len(features) == len(targets)):
            raise ModelError("graphs, features and targets must align")
        if not graphs:
            raise ModelError("need at least one training graph")
        prepared = []
        for g, X, y in zip(graphs, features, targets):
            X = np.asarray(X, dtype=float)
            y = np.asarray(y, dtype=float).ravel()
            if X.shape[0] != g.number_of_nodes():
                raise ModelError("feature rows must match node count")
            if X.shape[1] != self.in_dim:
                raise ModelError(
                    "feature dim %d != in_dim %d" % (X.shape[1], self.in_dim)
                )
            if y.shape[0] != X.shape[0]:
                raise ModelError("target length must match node count")
            A_hat, __ = normalized_adjacency(g)
            prepared.append((A_hat, X, y))
        # Simple Adam over the shared parameters.
        m = [np.zeros_like(p) for p in self._params]
        v = [np.zeros_like(p) for p in self._params]
        t = 0
        self.loss_curve_ = []
        for _ in range(self.epochs):
            epoch_loss = 0.0
            for A_hat, X, y in prepared:
                pred, cache = self._forward(A_hat, X)
                err = pred - y
                epoch_loss += float(np.mean(err**2))
                grads = self._backward(cache, 2.0 * err / len(err))
                t += 1
                params = self._params
                for i, (p, g_) in enumerate(zip(params, grads)):
                    m[i] = 0.9 * m[i] + 0.1 * g_
                    v[i] = 0.999 * v[i] + 0.001 * g_**2
                    m_hat = m[i] / (1 - 0.9**t)
                    v_hat = v[i] / (1 - 0.999**t)
                    p -= self.lr * m_hat / (np.sqrt(v_hat) + 1e-8)
            self.loss_curve_.append(epoch_loss / len(prepared))
        self._fitted = True
        return self

    def predict(self, graph, features):
        """Per-node predictions for one graph (row order = sorted nodes)."""
        if not self._fitted:
            raise NotFittedError("GCNRegressor used before fit")
        X = np.asarray(features, dtype=float)
        A_hat, __ = normalized_adjacency(graph)
        pred, __ = self._forward(A_hat, X)
        return pred

    def embed(self, graph, features):
        """Final-layer node embeddings (useful for clustering/inspection)."""
        if not self._fitted:
            raise NotFittedError("GCNRegressor used before fit")
        X = np.asarray(features, dtype=float)
        A_hat, __ = normalized_adjacency(graph)
        __, cache = self._forward(A_hat, X)
        return cache[5]
