"""CART decision trees, random forests, and gradient boosting in NumPy.

Tree models back several AI4DB components: the index-advisor classifier,
SQL-injection detection (classification-tree approach the tutorial cites),
and the learned cost model's non-neural baseline.
"""

import numpy as np

from repro.common import ModelError, NotFittedError, ensure_rng


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value=None):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.value = value

    @property
    def is_leaf(self):
        return self.feature is None


def _best_split_sse(X, y, feature_indices, min_leaf):
    """Best (feature, threshold) minimizing child SSE for regression."""
    n = len(y)
    best = (None, None, np.inf)
    y_sum = y.sum()
    y_sq = (y**2).sum()
    parent_sse = y_sq - y_sum**2 / n
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        ys = y[order]
        cum_sum = np.cumsum(ys)
        cum_sq = np.cumsum(ys**2)
        for i in range(min_leaf, n - min_leaf + 1):
            if i < n and xs[i - 1] == xs[i]:
                continue
            if i >= n:
                break
            left_n, right_n = i, n - i
            left_sse = cum_sq[i - 1] - cum_sum[i - 1] ** 2 / left_n
            r_sum = y_sum - cum_sum[i - 1]
            r_sq = y_sq - cum_sq[i - 1]
            right_sse = r_sq - r_sum**2 / right_n
            total = left_sse + right_sse
            if total < best[2] - 1e-12:
                thr = 0.5 * (xs[i - 1] + xs[i])
                best = (f, thr, total)
    if best[0] is None or best[2] >= parent_sse - 1e-12:
        return None
    return best[0], best[1]


def _best_split_gini(X, y, feature_indices, min_leaf):
    """Best (feature, threshold) minimizing weighted Gini for 0/1 labels."""
    n = len(y)
    total_pos = y.sum()
    p = total_pos / n
    parent_gini = 2.0 * p * (1.0 - p)
    best = (None, None, parent_gini)
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        ys = y[order]
        cum_pos = np.cumsum(ys)
        for i in range(min_leaf, n - min_leaf + 1):
            if i < n and xs[i - 1] == xs[i]:
                continue
            if i >= n:
                break
            left_n, right_n = i, n - i
            lp = cum_pos[i - 1] / left_n
            rp = (total_pos - cum_pos[i - 1]) / right_n
            gini = (
                left_n / n * 2.0 * lp * (1.0 - lp)
                + right_n / n * 2.0 * rp * (1.0 - rp)
            )
            if gini < best[2] - 1e-12:
                thr = 0.5 * (xs[i - 1] + xs[i])
                best = (f, thr, gini)
    if best[0] is None:
        return None
    return best[0], best[1]


class _BaseTree:
    def __init__(self, max_depth=6, min_samples_leaf=2, max_features=None, seed=0):
        if max_depth < 1:
            raise ModelError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ModelError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_ = None
        self.n_features_ = None

    def _leaf_value(self, y):
        raise NotImplementedError

    def _split(self, X, y, feats):
        raise NotImplementedError

    def _build(self, X, y, depth, rng):
        node = _Node(value=self._leaf_value(y))
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or np.all(y == y[0])
        ):
            return node
        n_features = X.shape[1]
        if self.max_features is None:
            feats = range(n_features)
        else:
            k = max(1, min(self.max_features, n_features))
            feats = rng.choice(n_features, size=k, replace=False)
        split = self._split(X, y, feats)
        if split is None:
            return node
        f, thr = split
        mask = X[:, f] <= thr
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = f
        node.threshold = thr
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ModelError(
                "X has %d rows but y has %d" % (X.shape[0], y.shape[0])
            )
        if X.shape[0] == 0:
            raise ModelError("cannot fit a tree on zero samples")
        self.n_features_ = X.shape[1]
        rng = ensure_rng(self.seed)
        self.root_ = self._build(X, y, 0, rng)
        return self

    def _predict_row(self, row):
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def _raw_predict(self, X):
        if self.root_ is None:
            raise NotFittedError("%s used before fit" % type(self).__name__)
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return np.array([self._predict_row(row) for row in X])

    def depth(self):
        """Actual depth of the fitted tree (0 = a single leaf)."""
        if self.root_ is None:
            raise NotFittedError("%s used before fit" % type(self).__name__)

        def walk(node):
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)


class DecisionTreeRegressor(_BaseTree):
    """CART regression tree minimizing squared error."""

    def _leaf_value(self, y):
        return float(y.mean())

    def _split(self, X, y, feats):
        return _best_split_sse(X, y, feats, self.min_samples_leaf)

    def predict(self, X):
        """Predicted mean of the matching leaf per row."""
        return self._raw_predict(X)


class DecisionTreeClassifier(_BaseTree):
    """CART binary classification tree minimizing Gini impurity."""

    def _leaf_value(self, y):
        return float(y.mean())

    def _split(self, X, y, feats):
        return _best_split_gini(X, y, feats, self.min_samples_leaf)

    def fit(self, X, y):
        labels = set(np.unique(np.asarray(y, dtype=float)))
        if labels - {0.0, 1.0}:
            raise ModelError("DecisionTreeClassifier expects 0/1 labels")
        return super().fit(X, y)

    def predict_proba(self, X):
        """Positive-class probability (leaf positive fraction)."""
        return self._raw_predict(X)

    def predict(self, X, threshold=0.5):
        """Hard 0/1 labels at the given threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)


class RandomForestRegressor:
    """Bagged ensemble of randomized regression trees."""

    def __init__(
        self,
        n_estimators=20,
        max_depth=8,
        min_samples_leaf=2,
        max_features=None,
        seed=0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=float).ravel()
        rng = ensure_rng(self.seed)
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, X.shape[1] // 2)
        self.trees_ = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, X):
        """Mean prediction across the ensemble."""
        if not self.trees_:
            raise NotFittedError("RandomForestRegressor used before fit")
        preds = np.stack([t.predict(X) for t in self.trees_])
        return preds.mean(axis=0)


class RandomForestClassifier:
    """Bagged ensemble of randomized binary classification trees."""

    def __init__(
        self,
        n_estimators=20,
        max_depth=8,
        min_samples_leaf=2,
        max_features=None,
        seed=0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=float).ravel()
        rng = ensure_rng(self.seed)
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.sqrt(X.shape[1])))
        self.trees_ = []
        n = X.shape[0]
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X):
        """Mean leaf-probability across the ensemble."""
        if not self.trees_:
            raise NotFittedError("RandomForestClassifier used before fit")
        preds = np.stack([t.predict_proba(X) for t in self.trees_])
        return preds.mean(axis=0)

    def predict(self, X, threshold=0.5):
        """Hard 0/1 labels at the given threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)


class GradientBoostingRegressor:
    """Gradient boosting with squared loss over shallow CART trees."""

    def __init__(
        self, n_estimators=50, learning_rate=0.1, max_depth=3, min_samples_leaf=2
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.init_ = None
        self.trees_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=float).ravel()
        self.init_ = float(y.mean())
        pred = np.full_like(y, self.init_)
        self.trees_ = []
        for i in range(self.n_estimators):
            residual = y - pred
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=i,
            )
            tree.fit(X, residual)
            update = tree.predict(X)
            pred = pred + self.learning_rate * update
            self.trees_.append(tree)
        return self

    def predict(self, X):
        """Staged-sum prediction of the boosted ensemble."""
        if self.trees_ is None:
            raise NotFittedError("GradientBoostingRegressor used before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        out = np.full(X.shape[0], self.init_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out
