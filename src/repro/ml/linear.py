"""Linear models: least squares, ridge, and logistic regression.

These are the workhorse baselines for the learned-database components
(e.g., the plan-only performance predictor, access-control scorer, and the
linear stages inside the recursive-model-index learned index).
"""

import numpy as np

from repro.common import ModelError, NotFittedError, ensure_rng


def _design(X, add_intercept):
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if add_intercept:
        X = np.hstack([X, np.ones((X.shape[0], 1))])
    return X


class LinearRegression:
    """Ordinary least squares via :func:`numpy.linalg.lstsq`.

    Args:
        add_intercept: whether to fit a bias term (default True).
    """

    def __init__(self, add_intercept=True):
        self.add_intercept = add_intercept
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y):
        Xd = _design(X, self.add_intercept)
        y = np.asarray(y, dtype=float).ravel()
        if Xd.shape[0] != y.shape[0]:
            raise ModelError(
                "X has %d rows but y has %d" % (Xd.shape[0], y.shape[0])
            )
        w, *_ = np.linalg.lstsq(Xd, y, rcond=None)
        if self.add_intercept:
            self.coef_ = w[:-1]
            self.intercept_ = float(w[-1])
        else:
            self.coef_ = w
            self.intercept_ = 0.0
        return self

    def predict(self, X):
        if self.coef_ is None:
            raise NotFittedError("LinearRegression used before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return X @ self.coef_ + self.intercept_


class RidgeRegression:
    """L2-regularized least squares solved in closed form.

    The intercept is not penalized (handled by centering), matching the
    standard formulation.

    Args:
        alpha: regularization strength (>= 0).
    """

    def __init__(self, alpha=1.0):
        if alpha < 0:
            raise ModelError("alpha must be >= 0, got %r" % (alpha,))
        self.alpha = float(alpha)
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ModelError(
                "X has %d rows but y has %d" % (X.shape[0], y.shape[0])
            )
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        n_features = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X):
        if self.coef_ is None:
            raise NotFittedError("RidgeRegression used before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return X @ self.coef_ + self.intercept_


def _sigmoid(z):
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """Binary logistic regression trained with full-batch gradient descent.

    Args:
        lr: learning rate.
        epochs: gradient steps.
        l2: L2 penalty on the weights (not the bias).
        seed: seed for the (tiny) random weight init.
    """

    def __init__(self, lr=0.1, epochs=500, l2=1e-4, seed=0):
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=float).ravel()
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ModelError("LogisticRegression expects 0/1 labels")
        if X.shape[0] != y.shape[0]:
            raise ModelError(
                "X has %d rows but y has %d" % (X.shape[0], y.shape[0])
            )
        rng = ensure_rng(self.seed)
        n, d = X.shape
        w = rng.normal(scale=0.01, size=d)
        b = 0.0
        for _ in range(self.epochs):
            p = _sigmoid(X @ w + b)
            err = p - y
            grad_w = X.T @ err / n + self.l2 * w
            grad_b = float(err.mean())
            w -= self.lr * grad_w
            b -= self.lr * grad_b
        self.coef_ = w
        self.intercept_ = b
        return self

    def predict_proba(self, X):
        """Probability of the positive class for each row."""
        if self.coef_ is None:
            raise NotFittedError("LogisticRegression used before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return _sigmoid(X @ self.coef_ + self.intercept_)

    def predict(self, X, threshold=0.5):
        """Hard 0/1 labels at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)
