"""Feed-forward neural networks with backprop and Adam, in NumPy.

This is the stand-in for the deep models the tutorial's cited systems use
(MSCN-style cardinality estimators, CDBTune/QTune critics and actors,
NEO's value network). Networks are intentionally small — the experiments
run on synthetic data at laptop scale — but the training loop is a real
mini-batch Adam loop with configurable losses and activations.
"""

import numpy as np

from repro.common import ModelError, NotFittedError, ensure_rng

_ACTIVATIONS = {}


def _activation(name):
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ModelError(
            "unknown activation %r (have: %s)"
            % (name, ", ".join(sorted(_ACTIVATIONS)))
        )


def _register(name, fwd, bwd):
    _ACTIVATIONS[name] = (fwd, bwd)


_register("relu", lambda z: np.maximum(z, 0.0), lambda z, a: (z > 0).astype(float))
_register("tanh", np.tanh, lambda z, a: 1.0 - a**2)
_register("identity", lambda z: z, lambda z, a: np.ones_like(z))


def _sigmoid(z):
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


_register("sigmoid", _sigmoid, lambda z, a: a * (1.0 - a))


class Adam:
    """Adam optimizer over a flat list of parameter arrays."""

    def __init__(self, params, lr=1e-3, beta1=0.9, beta2=0.999, eps=1e-8):
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, grads):
        """Apply one Adam update given gradients aligned with ``params``."""
        if len(grads) != len(self.params):
            raise ModelError("gradient count mismatch")
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for i, (p, g) in enumerate(zip(self.params, grads)):
            self._m[i] = b1 * self._m[i] + (1 - b1) * g
            self._v[i] = b2 * self._v[i] + (1 - b2) * g**2
            m_hat = self._m[i] / (1 - b1**self._t)
            v_hat = self._v[i] / (1 - b2**self._t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class MLP:
    """A multilayer perceptron with explicit forward/backward passes.

    This low-level class exposes ``forward``/``backward``/``grads`` so the RL
    agents (DQN/DDPG) can drive custom losses; most users want
    :class:`MLPRegressor` or :class:`MLPClassifier` instead.

    Args:
        layer_sizes: e.g. ``[in_dim, 64, 64, out_dim]``.
        hidden_activation: activation between hidden layers.
        output_activation: activation on the final layer.
        seed: weight-init seed.
    """

    def __init__(
        self,
        layer_sizes,
        hidden_activation="relu",
        output_activation="identity",
        seed=0,
    ):
        if len(layer_sizes) < 2:
            raise ModelError("need at least an input and an output layer")
        rng = ensure_rng(seed)
        self.layer_sizes = list(layer_sizes)
        self.hidden_activation = hidden_activation
        self.output_activation = output_activation
        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(scale=scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._cache = None

    @property
    def params(self):
        """Flat list of parameter arrays (weights then biases, per layer)."""
        out = []
        for w, b in zip(self.weights, self.biases):
            out.extend([w, b])
        return out

    def forward(self, X, cache=True):
        """Run the network; with ``cache=True`` store activations for backprop."""
        X = np.asarray(X, dtype=float)
        squeeze = X.ndim == 1
        if squeeze:
            X = X.reshape(1, -1)
        zs, acts = [], [X]
        a = X
        n_layers = len(self.weights)
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = a @ w + b
            name = (
                self.output_activation
                if i == n_layers - 1
                else self.hidden_activation
            )
            fwd, __ = _activation(name)
            a = fwd(z)
            zs.append(z)
            acts.append(a)
        if cache:
            self._cache = (zs, acts)
        return a[0] if squeeze else a

    def backward(self, dloss_dout):
        """Backprop ``dL/d(output)`` through the cached forward pass.

        Returns:
            ``(grads, dloss_dinput)`` — grads aligned with :attr:`params`.
        """
        if self._cache is None:
            raise ModelError("backward called before a cached forward pass")
        zs, acts = self._cache
        n_layers = len(self.weights)
        delta = np.asarray(dloss_dout, dtype=float)
        if delta.ndim == 1:
            delta = delta.reshape(1, -1)
        grads_w = [None] * n_layers
        grads_b = [None] * n_layers
        for i in reversed(range(n_layers)):
            name = (
                self.output_activation
                if i == n_layers - 1
                else self.hidden_activation
            )
            __, bwd = _activation(name)
            delta = delta * bwd(zs[i], acts[i + 1])
            grads_w[i] = acts[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            delta = delta @ self.weights[i].T
        grads = []
        for gw, gb in zip(grads_w, grads_b):
            grads.extend([gw, gb])
        return grads, delta

    def copy_from(self, other, tau=1.0):
        """Polyak-average parameters from ``other`` (tau=1 copies exactly)."""
        for p, q in zip(self.params, other.params):
            p *= 1.0 - tau
            p += tau * q


class _FittedMLP:
    """Shared mini-batch training loop for the high-level estimators."""

    def __init__(
        self,
        hidden=(64, 64),
        epochs=200,
        batch_size=32,
        lr=1e-3,
        seed=0,
        hidden_activation="relu",
    ):
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.hidden_activation = hidden_activation
        self.net_ = None
        self.loss_curve_ = []

    def _fit_loop(self, X, y, out_dim, output_activation, loss_grad, loss_val):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y.reshape(-1, out_dim) if out_dim > 1 else y.reshape(-1, 1)
        if X.shape[0] != y.shape[0]:
            raise ModelError(
                "X has %d rows but y has %d" % (X.shape[0], y.shape[0])
            )
        rng = ensure_rng(self.seed)
        sizes = [X.shape[1], *self.hidden, out_dim]
        self.net_ = MLP(
            sizes,
            hidden_activation=self.hidden_activation,
            output_activation=output_activation,
            seed=rng.integers(0, 2**31 - 1),
        )
        opt = Adam(self.net_.params, lr=self.lr)
        n = X.shape[0]
        batch = min(self.batch_size, n)
        self.loss_curve_ = []
        for _ in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = X[idx], y[idx]
                pred = self.net_.forward(xb)
                epoch_loss += loss_val(yb, pred) * len(idx)
                grads, __ = self.net_.backward(loss_grad(yb, pred) / len(idx))
                opt.step(grads)
            self.loss_curve_.append(epoch_loss / n)
        return self


class MLPRegressor(_FittedMLP):
    """MLP regression with mean-squared-error loss.

    Args mirror :class:`_FittedMLP`; ``fit(X, y)`` / ``predict(X)`` follow
    the usual estimator protocol. ``loss_curve_`` records per-epoch MSE.
    """

    def fit(self, X, y):
        y = np.asarray(y, dtype=float)
        out_dim = 1 if y.ndim == 1 else y.shape[1]
        return self._fit_loop(
            X,
            y,
            out_dim,
            "identity",
            loss_grad=lambda yt, yp: 2.0 * (yp - yt),
            loss_val=lambda yt, yp: float(np.mean((yp - yt) ** 2)),
        )

    def predict(self, X):
        if self.net_ is None:
            raise NotFittedError("MLPRegressor used before fit")
        out = self.net_.forward(np.asarray(X, dtype=float), cache=False)
        out = np.asarray(out)
        if out.ndim == 2 and out.shape[1] == 1:
            return out.ravel()
        return out


class MLPClassifier(_FittedMLP):
    """Binary MLP classifier with sigmoid output and cross-entropy loss."""

    def fit(self, X, y):
        y = np.asarray(y, dtype=float).ravel()
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ModelError("MLPClassifier expects 0/1 labels")

        def grad(yt, yp):
            # d(BCE)/d(sigmoid-output) combined form stays stable because the
            # chain through sigmoid' is applied in backward(); use the
            # quotient form with clipping.
            p = np.clip(yp, 1e-7, 1.0 - 1e-7)
            return (p - yt) / (p * (1.0 - p))

        def val(yt, yp):
            p = np.clip(yp, 1e-7, 1.0 - 1e-7)
            return float(-np.mean(yt * np.log(p) + (1 - yt) * np.log(1 - p)))

        return self._fit_loop(X, y, 1, "sigmoid", grad, val)

    def predict_proba(self, X):
        """Positive-class probability per row."""
        if self.net_ is None:
            raise NotFittedError("MLPClassifier used before fit")
        out = self.net_.forward(np.asarray(X, dtype=float), cache=False)
        return np.asarray(out).ravel()

    def predict(self, X, threshold=0.5):
        """Hard 0/1 labels at the given threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)
