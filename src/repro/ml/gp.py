"""Gaussian process regression and Bayesian optimization.

This powers the OtterTune-style knob-tuning baseline the tutorial cites
(Aken et al. [3]): GP surrogate + expected-improvement acquisition over the
knob space.
"""

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

from repro.common import ModelError, NotFittedError, ensure_rng


def rbf_kernel(A, B, length_scale=1.0, variance=1.0):
    """Squared-exponential kernel matrix between row sets ``A`` and ``B``."""
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    sq = (
        np.sum(A**2, axis=1)[:, None]
        + np.sum(B**2, axis=1)[None, :]
        - 2.0 * A @ B.T
    )
    np.maximum(sq, 0.0, out=sq)
    return variance * np.exp(-0.5 * sq / (length_scale**2))


class GaussianProcessRegressor:
    """GP regression with an RBF kernel and Gaussian observation noise.

    Args:
        length_scale: RBF length scale.
        variance: RBF signal variance.
        noise: observation-noise variance added to the kernel diagonal.
        normalize_y: center/scale targets internally (recommended when
            observations span decades, as throughput numbers do).
    """

    def __init__(self, length_scale=1.0, variance=1.0, noise=1e-6, normalize_y=True):
        if noise < 0:
            raise ModelError("noise must be >= 0")
        self.length_scale = float(length_scale)
        self.variance = float(variance)
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self._X = None
        self._chol = None
        self._alpha = None
        self._y_mean = 0.0
        self._y_scale = 1.0

    def fit(self, X, y):
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ModelError(
                "X has %d rows but y has %d" % (X.shape[0], y.shape[0])
            )
        if self.normalize_y:
            self._y_mean = float(y.mean())
            scale = float(y.std())
            self._y_scale = scale if scale > 0 else 1.0
        yn = (y - self._y_mean) / self._y_scale
        K = rbf_kernel(X, X, self.length_scale, self.variance)
        K[np.diag_indices_from(K)] += self.noise + 1e-10
        self._chol = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._chol, yn)
        self._X = X
        return self

    def predict(self, X, return_std=False):
        """Posterior mean (and optionally standard deviation) at ``X``."""
        if self._X is None:
            raise NotFittedError("GaussianProcessRegressor used before fit")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = rbf_kernel(X, self._X, self.length_scale, self.variance)
        mean = Ks @ self._alpha * self._y_scale + self._y_mean
        if not return_std:
            return mean
        v = cho_solve(self._chol, Ks.T)
        var = self.variance - np.sum(Ks * v.T, axis=1)
        var = np.maximum(var, 1e-12)
        return mean, np.sqrt(var) * self._y_scale


def expected_improvement(mean, std, best, xi=0.01):
    """EI acquisition for maximization given posterior mean/std arrays."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improve = mean - best - xi
    z = improve / std
    return improve * norm.cdf(z) + std * norm.pdf(z)


class BayesianOptimizer:
    """GP-based maximizer over a box-constrained continuous space.

    Implements the suggest/observe loop OtterTune-style tuners use: fit a GP
    on the observations so far, score a random candidate pool with expected
    improvement, and suggest the argmax.

    Args:
        bounds: sequence of ``(low, high)`` pairs, one per dimension.
        n_candidates: size of the random candidate pool per suggestion.
        init_points: suggestions drawn uniformly before the GP kicks in.
        seed: randomness seed.
    """

    def __init__(self, bounds, n_candidates=256, init_points=5, seed=0, noise=1e-4):
        self.bounds = [(float(lo), float(hi)) for lo, hi in bounds]
        for lo, hi in self.bounds:
            if hi <= lo:
                raise ModelError("each bound must satisfy low < high")
        self.n_candidates = n_candidates
        self.init_points = init_points
        self.noise = noise
        self._rng = ensure_rng(seed)
        self._X = []
        self._y = []

    def _random_point(self):
        return np.array(
            [self._rng.uniform(lo, hi) for lo, hi in self.bounds]
        )

    def suggest(self):
        """Return the next point to evaluate."""
        if len(self._X) < self.init_points:
            return self._random_point()
        dim_spans = np.array([hi - lo for lo, hi in self.bounds])
        gp = GaussianProcessRegressor(
            length_scale=float(np.mean(dim_spans)) * 0.25,
            variance=1.0,
            noise=self.noise,
        )
        gp.fit(np.array(self._X), np.array(self._y))
        pool = np.array([self._random_point() for _ in range(self.n_candidates)])
        mean, std = gp.predict(pool, return_std=True)
        ei = expected_improvement(mean, std, best=max(self._y))
        return pool[int(np.argmax(ei))]

    def observe(self, x, y):
        """Record an evaluated ``(point, objective)`` pair."""
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != len(self.bounds):
            raise ModelError(
                "point has %d dims, expected %d" % (x.shape[0], len(self.bounds))
            )
        self._X.append(x)
        self._y.append(float(y))

    @property
    def best(self):
        """Best ``(point, objective)`` observed so far, or ``None``."""
        if not self._y:
            return None
        i = int(np.argmax(self._y))
        return self._X[i], self._y[i]
