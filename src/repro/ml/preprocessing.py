"""Feature preprocessing: scalers, encoders, splits.

Minimal NumPy counterparts of the sklearn preprocessing utilities that the
learned-database components rely on. All transformers follow the
``fit`` / ``transform`` / ``fit_transform`` protocol and raise
:class:`repro.common.NotFittedError` when used before fitting.
"""

import numpy as np

from repro.common import NotFittedError, ensure_rng


def _as_2d(X):
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError("expected 1-D or 2-D input, got %d-D" % X.ndim)
    return X


class StandardScaler:
    """Standardize features to zero mean and unit variance.

    Constant columns get scale 1.0 so they pass through unchanged instead of
    producing NaNs.
    """

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, X):
        X = _as_2d(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X):
        if self.mean_ is None:
            raise NotFittedError("StandardScaler used before fit")
        return (_as_2d(X) - self.mean_) / self.scale_

    def fit_transform(self, X):
        return self.fit(X).transform(X)

    def inverse_transform(self, X):
        if self.mean_ is None:
            raise NotFittedError("StandardScaler used before fit")
        return _as_2d(X) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features into ``[lo, hi]`` (default ``[0, 1]``)."""

    def __init__(self, feature_range=(0.0, 1.0)):
        lo, hi = feature_range
        if hi <= lo:
            raise ValueError("feature_range must satisfy lo < hi")
        self.feature_range = (float(lo), float(hi))
        self.data_min_ = None
        self.data_max_ = None

    def fit(self, X):
        X = _as_2d(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def transform(self, X):
        if self.data_min_ is None:
            raise NotFittedError("MinMaxScaler used before fit")
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        unit = (_as_2d(X) - self.data_min_) / span
        return unit * (hi - lo) + lo

    def fit_transform(self, X):
        return self.fit(X).transform(X)

    def inverse_transform(self, X):
        if self.data_min_ is None:
            raise NotFittedError("MinMaxScaler used before fit")
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        unit = (_as_2d(X) - lo) / (hi - lo)
        return unit * span + self.data_min_


class OneHotEncoder:
    """One-hot encode a 1-D array of hashable category labels.

    Unknown categories at transform time map to the all-zero vector, which is
    the behaviour the security/monitoring classifiers want for unseen tokens.
    """

    def __init__(self):
        self.categories_ = None
        self._index = None

    def fit(self, values):
        seen = []
        index = {}
        for v in values:
            if v not in index:
                index[v] = len(seen)
                seen.append(v)
        self.categories_ = seen
        self._index = index
        return self

    def transform(self, values):
        if self._index is None:
            raise NotFittedError("OneHotEncoder used before fit")
        out = np.zeros((len(values), len(self.categories_)))
        for i, v in enumerate(values):
            j = self._index.get(v)
            if j is not None:
                out[i, j] = 1.0
        return out

    def fit_transform(self, values):
        return self.fit(values).transform(values)


def train_test_split(X, y, test_size=0.25, seed=None):
    """Shuffle and split ``(X, y)`` into train and test partitions.

    Args:
        X: 2-D features (or anything indexable by a row-index array).
        y: 1-D targets aligned with ``X``.
        test_size: fraction in ``(0, 1)`` assigned to the test split.
        seed: seed or Generator for the shuffle.

    Returns:
        ``(X_train, X_test, y_train, y_test)``
    """
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1), got %r" % (test_size,))
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y disagree on length: %d vs %d" % (len(X), len(y)))
    rng = ensure_rng(seed)
    order = rng.permutation(len(X))
    n_test = max(1, int(round(len(X) * test_size)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def polynomial_features(X, degree=2):
    """Append element-wise powers of ``X`` up to ``degree`` (no cross terms).

    A cheap nonlinearity injector for the linear baselines; degree 1 returns
    ``X`` unchanged (as a float copy).
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    X = _as_2d(X)
    blocks = [X]
    for d in range(2, degree + 1):
        blocks.append(X**d)
    return np.hstack(blocks)
