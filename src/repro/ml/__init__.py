"""NumPy-only machine-learning substrate for the AI4DB/DB4AI library.

No external ML frameworks are used; every model here is small enough to
train on the synthetic database workloads in seconds while preserving the
qualitative behaviour of the deep models the tutorial's cited systems use.
"""

from repro.ml.preprocessing import (
    StandardScaler,
    MinMaxScaler,
    OneHotEncoder,
    train_test_split,
    polynomial_features,
)
from repro.ml.metrics import (
    mean_absolute_error,
    mean_squared_error,
    root_mean_squared_error,
    r2_score,
    q_error,
    q_error_summary,
    accuracy,
    precision_recall_f1,
    log_loss,
    mean_absolute_percentage_error,
    cumulative_regret,
)
from repro.ml.linear import LinearRegression, RidgeRegression, LogisticRegression
from repro.ml.mlp import MLP, Adam, MLPRegressor, MLPClassifier
from repro.ml.tree import (
    DecisionTreeRegressor,
    DecisionTreeClassifier,
    RandomForestRegressor,
    RandomForestClassifier,
    GradientBoostingRegressor,
)
from repro.ml.gp import (
    GaussianProcessRegressor,
    BayesianOptimizer,
    expected_improvement,
    rbf_kernel,
)
from repro.ml.rl import (
    ReplayBuffer,
    QLearningAgent,
    DQNAgent,
    DDPGAgent,
    EpsilonGreedyBandit,
    UCB1Bandit,
    ThompsonBetaBandit,
    MCTS,
    MCTSNode,
)
from repro.ml.graph import GCNRegressor, normalized_adjacency
from repro.ml.cluster import KMeans, silhouette_score

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "OneHotEncoder",
    "train_test_split",
    "polynomial_features",
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "q_error",
    "q_error_summary",
    "accuracy",
    "precision_recall_f1",
    "log_loss",
    "mean_absolute_percentage_error",
    "cumulative_regret",
    "LinearRegression",
    "RidgeRegression",
    "LogisticRegression",
    "MLP",
    "Adam",
    "MLPRegressor",
    "MLPClassifier",
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "RandomForestRegressor",
    "RandomForestClassifier",
    "GradientBoostingRegressor",
    "GaussianProcessRegressor",
    "BayesianOptimizer",
    "expected_improvement",
    "rbf_kernel",
    "ReplayBuffer",
    "QLearningAgent",
    "DQNAgent",
    "DDPGAgent",
    "EpsilonGreedyBandit",
    "UCB1Bandit",
    "ThompsonBetaBandit",
    "MCTS",
    "MCTSNode",
    "GCNRegressor",
    "normalized_adjacency",
    "KMeans",
    "silhouette_score",
]
