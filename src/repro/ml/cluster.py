"""Clustering: k-means and quality scores.

Used by the root-cause diagnosis pipeline (cluster slow queries by KPI
state, per Ma et al. [51]) and by the workload-forecasting preprocessor.
"""

import numpy as np

from repro.common import ModelError, NotFittedError, ensure_rng


class KMeans:
    """Lloyd's algorithm with k-means++ initialization.

    Args:
        n_clusters: number of centroids.
        n_init: independent restarts; best inertia wins.
        max_iter: Lloyd iterations per restart.
        tol: centroid-shift convergence tolerance.
        seed: initialization seed.
    """

    def __init__(self, n_clusters=3, n_init=4, max_iter=100, tol=1e-6, seed=0):
        if n_clusters < 1:
            raise ModelError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids_ = None
        self.labels_ = None
        self.inertia_ = None

    def _init_centroids(self, X, rng):
        n = X.shape[0]
        centroids = [X[rng.integers(0, n)]]
        for _ in range(1, self.n_clusters):
            d2 = np.min(
                [np.sum((X - c) ** 2, axis=1) for c in centroids], axis=0
            )
            total = d2.sum()
            if total <= 0:
                centroids.append(X[rng.integers(0, n)])
                continue
            probs = d2 / total
            centroids.append(X[rng.choice(n, p=probs)])
        return np.array(centroids)

    def _run_once(self, X, rng):
        centroids = self._init_centroids(X, rng)
        labels = np.zeros(X.shape[0], dtype=int)
        for _ in range(self.max_iter):
            dists = np.linalg.norm(X[:, None, :] - centroids[None, :, :], axis=2)
            labels = dists.argmin(axis=1)
            new_centroids = centroids.copy()
            for k in range(self.n_clusters):
                members = X[labels == k]
                if len(members):
                    new_centroids[k] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            if shift < self.tol:
                break
        dists = np.linalg.norm(X[:, None, :] - centroids[None, :, :], axis=2)
        labels = dists.argmin(axis=1)
        inertia = float(np.sum(dists[np.arange(len(labels)), labels] ** 2))
        return centroids, labels, inertia

    def fit(self, X):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[0] < self.n_clusters:
            raise ModelError(
                "need at least n_clusters=%d samples, got %d"
                % (self.n_clusters, X.shape[0])
            )
        rng = ensure_rng(self.seed)
        best = None
        for _ in range(self.n_init):
            result = self._run_once(X, rng)
            if best is None or result[2] < best[2]:
                best = result
        self.centroids_, self.labels_, self.inertia_ = best
        return self

    def predict(self, X):
        """Nearest-centroid label for each row."""
        if self.centroids_ is None:
            raise NotFittedError("KMeans used before fit")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        dists = np.linalg.norm(X[:, None, :] - self.centroids_[None, :, :], axis=2)
        return dists.argmin(axis=1)

    def fit_predict(self, X):
        """Fit and return training labels."""
        return self.fit(X).labels_


def silhouette_score(X, labels):
    """Mean silhouette coefficient; higher means better-separated clusters."""
    X = np.asarray(X, dtype=float)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ModelError("silhouette needs at least 2 clusters")
    n = X.shape[0]
    dists = np.linalg.norm(X[:, None, :] - X[None, :, :], axis=2)
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same[i] = False
        a = dists[i, same].mean() if same.any() else 0.0
        b = np.inf
        for lab in unique:
            if lab == labels[i]:
                continue
            other = labels == lab
            if other.any():
                b = min(b, dists[i, other].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())
