"""Reinforcement-learning substrate: bandits, Q-learning, DQN, DDPG, MCTS.

These agents back the AI4DB components the tutorial surveys:

* **DDPG-lite** — CDBTune/QTune-style continuous knob tuning [42, 87].
* **DQN-lite / tabular Q** — ReJOIN-style join ordering [54], the
  index/partition advisors' create/drop MDPs [65, 23].
* **MCTS** — SkinnerDB-style join ordering [74] and learned rewrite-rule
  ordering.
* **Bandits** — database activity monitoring as a multi-armed bandit [19].
"""

import numpy as np

from repro.common import ModelError, ensure_rng
from repro.ml.mlp import MLP, Adam


class ReplayBuffer:
    """Fixed-capacity uniform-sampling experience replay."""

    def __init__(self, capacity=10000, seed=0):
        if capacity < 1:
            raise ModelError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = ensure_rng(seed)
        self._data = []
        self._pos = 0

    def push(self, state, action, reward, next_state, done):
        """Store one transition, evicting the oldest when full."""
        item = (
            np.asarray(state, dtype=float),
            action,
            float(reward),
            np.asarray(next_state, dtype=float),
            bool(done),
        )
        if len(self._data) < self.capacity:
            self._data.append(item)
        else:
            self._data[self._pos] = item
            self._pos = (self._pos + 1) % self.capacity

    def sample(self, batch_size):
        """Sample ``batch_size`` transitions (with replacement)."""
        if not self._data:
            raise ModelError("cannot sample from an empty buffer")
        idx = self._rng.integers(0, len(self._data), size=batch_size)
        states = np.stack([self._data[i][0] for i in idx])
        actions = [self._data[i][1] for i in idx]
        rewards = np.array([self._data[i][2] for i in idx])
        next_states = np.stack([self._data[i][3] for i in idx])
        dones = np.array([self._data[i][4] for i in idx], dtype=float)
        return states, actions, rewards, next_states, dones

    def __len__(self):
        return len(self._data)


class QLearningAgent:
    """Tabular Q-learning over hashable states and integer actions.

    Args:
        n_actions: size of the discrete action space.
        alpha: learning rate.
        gamma: discount factor.
        epsilon: exploration rate (epsilon-greedy).
        epsilon_decay: multiplicative decay applied by :meth:`decay`.
        seed: exploration seed.
    """

    def __init__(
        self,
        n_actions,
        alpha=0.1,
        gamma=0.95,
        epsilon=0.2,
        epsilon_min=0.01,
        epsilon_decay=0.995,
        seed=0,
    ):
        if n_actions < 1:
            raise ModelError("n_actions must be >= 1")
        self.n_actions = n_actions
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.epsilon_min = epsilon_min
        self.epsilon_decay = epsilon_decay
        self._rng = ensure_rng(seed)
        self.q_table = {}

    def q_values(self, state):
        """Q-value vector for ``state`` (zeros when unseen)."""
        key = state
        if key not in self.q_table:
            self.q_table[key] = np.zeros(self.n_actions)
        return self.q_table[key]

    def act(self, state, valid_actions=None, greedy=False):
        """Epsilon-greedy action; optionally restricted to ``valid_actions``."""
        actions = (
            list(range(self.n_actions)) if valid_actions is None else list(valid_actions)
        )
        if not actions:
            raise ModelError("no valid actions")
        if not greedy and self._rng.random() < self.epsilon:
            return int(self._rng.choice(actions))
        q = self.q_values(state)
        best = max(actions, key=lambda a: q[a])
        return int(best)

    def update(self, state, action, reward, next_state, done, next_valid=None):
        """One Q-learning backup."""
        q = self.q_values(state)
        if done:
            target = reward
        else:
            nq = self.q_values(next_state)
            if next_valid:
                future = max(nq[a] for a in next_valid)
            else:
                future = float(nq.max())
            target = reward + self.gamma * future
        q[action] += self.alpha * (target - q[action])

    def decay(self):
        """Decay epsilon toward its floor; call once per episode."""
        self.epsilon = max(self.epsilon_min, self.epsilon * self.epsilon_decay)


class DQNAgent:
    """DQN-lite: MLP Q-network, target network, replay, epsilon-greedy.

    Args:
        state_dim: state vector length.
        n_actions: discrete action count.
        hidden: hidden layer sizes for the Q-network.
        gamma: discount.
        lr: Adam learning rate.
        batch_size: replay batch size.
        target_sync: gradient steps between hard target-network syncs.
        seed: randomness seed.
    """

    def __init__(
        self,
        state_dim,
        n_actions,
        hidden=(64, 64),
        gamma=0.95,
        lr=1e-3,
        epsilon=0.3,
        epsilon_min=0.02,
        epsilon_decay=0.99,
        batch_size=32,
        buffer_capacity=5000,
        target_sync=50,
        seed=0,
    ):
        self.state_dim = state_dim
        self.n_actions = n_actions
        self.gamma = gamma
        self.epsilon = epsilon
        self.epsilon_min = epsilon_min
        self.epsilon_decay = epsilon_decay
        self.batch_size = batch_size
        self.target_sync = target_sync
        self._rng = ensure_rng(seed)
        sizes = [state_dim, *hidden, n_actions]
        self.q_net = MLP(sizes, seed=int(self._rng.integers(0, 2**31 - 1)))
        self.target_net = MLP(sizes, seed=int(self._rng.integers(0, 2**31 - 1)))
        self.target_net.copy_from(self.q_net)
        self._opt = Adam(self.q_net.params, lr=lr)
        self.buffer = ReplayBuffer(
            buffer_capacity, seed=int(self._rng.integers(0, 2**31 - 1))
        )
        self._steps = 0

    def act(self, state, valid_actions=None, greedy=False):
        """Epsilon-greedy action from the Q-network."""
        actions = (
            list(range(self.n_actions)) if valid_actions is None else list(valid_actions)
        )
        if not actions:
            raise ModelError("no valid actions")
        if not greedy and self._rng.random() < self.epsilon:
            return int(self._rng.choice(actions))
        q = self.q_net.forward(np.asarray(state, dtype=float), cache=False)
        q = np.asarray(q).ravel()
        best = max(actions, key=lambda a: q[a])
        return int(best)

    def remember(self, state, action, reward, next_state, done):
        """Store a transition in the replay buffer."""
        self.buffer.push(state, action, reward, next_state, done)

    def train_step(self):
        """One gradient step on a replay batch; no-op until enough data."""
        if len(self.buffer) < self.batch_size:
            return None
        states, actions, rewards, next_states, dones = self.buffer.sample(
            self.batch_size
        )
        next_q = self.target_net.forward(next_states, cache=False)
        targets_for_actions = rewards + self.gamma * (1.0 - dones) * next_q.max(axis=1)
        q = self.q_net.forward(states)
        grad = np.zeros_like(q)
        idx = np.arange(len(actions))
        taken = q[idx, actions]
        grad[idx, actions] = 2.0 * (taken - targets_for_actions) / len(actions)
        grads, __ = self.q_net.backward(grad)
        self._opt.step(grads)
        self._steps += 1
        if self._steps % self.target_sync == 0:
            self.target_net.copy_from(self.q_net)
        return float(np.mean((taken - targets_for_actions) ** 2))

    def decay(self):
        """Decay epsilon toward its floor; call once per episode."""
        self.epsilon = max(self.epsilon_min, self.epsilon * self.epsilon_decay)


class DDPGAgent:
    """DDPG-lite actor-critic for continuous action spaces in ``[-1, 1]^d``.

    The CDBTune paper frames knob tuning exactly this way: the state is the
    database metrics vector, the action is the (normalized) knob vector, the
    reward is the performance delta. This implementation keeps the standard
    machinery — actor/critic, target networks with Polyak averaging,
    replay, Gaussian exploration noise — at NumPy scale.
    """

    def __init__(
        self,
        state_dim,
        action_dim,
        hidden=(64, 64),
        gamma=0.95,
        actor_lr=1e-3,
        critic_lr=1e-3,
        tau=0.05,
        noise_scale=0.2,
        noise_decay=0.99,
        batch_size=32,
        buffer_capacity=5000,
        seed=0,
    ):
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.gamma = gamma
        self.tau = tau
        self.noise_scale = noise_scale
        self.noise_decay = noise_decay
        self.batch_size = batch_size
        self._rng = ensure_rng(seed)

        def seeded():
            return int(self._rng.integers(0, 2**31 - 1))

        self.actor = MLP(
            [state_dim, *hidden, action_dim], output_activation="tanh", seed=seeded()
        )
        self.actor_target = MLP(
            [state_dim, *hidden, action_dim], output_activation="tanh", seed=seeded()
        )
        self.actor_target.copy_from(self.actor)
        self.critic = MLP([state_dim + action_dim, *hidden, 1], seed=seeded())
        self.critic_target = MLP([state_dim + action_dim, *hidden, 1], seed=seeded())
        self.critic_target.copy_from(self.critic)
        self._actor_opt = Adam(self.actor.params, lr=actor_lr)
        self._critic_opt = Adam(self.critic.params, lr=critic_lr)
        self.buffer = ReplayBuffer(buffer_capacity, seed=seeded())

    def act(self, state, noisy=True):
        """Actor action in ``[-1, 1]^d``, with Gaussian exploration noise."""
        a = self.actor.forward(np.asarray(state, dtype=float), cache=False)
        a = np.asarray(a, dtype=float).ravel()
        if noisy:
            a = a + self._rng.normal(scale=self.noise_scale, size=a.shape)
        return np.clip(a, -1.0, 1.0)

    def remember(self, state, action, reward, next_state, done):
        """Store a transition in the replay buffer."""
        self.buffer.push(state, np.asarray(action, dtype=float), reward, next_state, done)

    def train_step(self):
        """One critic + actor update on a replay batch."""
        if len(self.buffer) < self.batch_size:
            return None
        states, actions, rewards, next_states, dones = self.buffer.sample(
            self.batch_size
        )
        actions = np.stack(actions)
        # Critic update: TD target from target nets.
        next_actions = self.actor_target.forward(next_states, cache=False)
        target_q = self.critic_target.forward(
            np.hstack([next_states, next_actions]), cache=False
        ).ravel()
        targets = rewards + self.gamma * (1.0 - dones) * target_q
        q = self.critic.forward(np.hstack([states, actions])).ravel()
        dq = (2.0 * (q - targets) / len(targets)).reshape(-1, 1)
        critic_grads, __ = self.critic.backward(dq)
        self._critic_opt.step(critic_grads)
        # Actor update: ascend dQ/da through the critic.
        pred_actions = self.actor.forward(states)
        q_in = np.hstack([states, pred_actions])
        self.critic.forward(q_in)
        __, dq_dinput = self.critic.backward(
            -np.ones((len(states), 1)) / len(states)
        )
        dq_daction = dq_dinput[:, self.state_dim :]
        actor_grads, __ = self.actor.backward(dq_daction)
        self._actor_opt.step(actor_grads)
        # Polyak averaging.
        self.actor_target.copy_from(self.actor, tau=self.tau)
        self.critic_target.copy_from(self.critic, tau=self.tau)
        return float(np.mean((q - targets) ** 2))

    def decay(self):
        """Decay exploration noise; call once per episode."""
        self.noise_scale *= self.noise_decay


class EpsilonGreedyBandit:
    """Classic epsilon-greedy multi-armed bandit with sample means."""

    def __init__(self, n_arms, epsilon=0.1, seed=0):
        if n_arms < 1:
            raise ModelError("n_arms must be >= 1")
        self.n_arms = n_arms
        self.epsilon = epsilon
        self._rng = ensure_rng(seed)
        self.counts = np.zeros(n_arms, dtype=int)
        self.values = np.zeros(n_arms)

    def select(self):
        """Pick an arm."""
        if self._rng.random() < self.epsilon:
            return int(self._rng.integers(0, self.n_arms))
        return int(np.argmax(self.values))

    def update(self, arm, reward):
        """Record the observed reward for ``arm``."""
        self.counts[arm] += 1
        self.values[arm] += (reward - self.values[arm]) / self.counts[arm]


class UCB1Bandit:
    """UCB1: optimism-in-the-face-of-uncertainty index policy."""

    def __init__(self, n_arms, c=2.0):
        if n_arms < 1:
            raise ModelError("n_arms must be >= 1")
        self.n_arms = n_arms
        self.c = c
        self.counts = np.zeros(n_arms, dtype=int)
        self.values = np.zeros(n_arms)
        self._t = 0

    def select(self):
        """Pick the arm with the highest upper confidence bound."""
        self._t += 1
        for a in range(self.n_arms):
            if self.counts[a] == 0:
                return a
        ucb = self.values + np.sqrt(self.c * np.log(self._t) / self.counts)
        return int(np.argmax(ucb))

    def update(self, arm, reward):
        """Record the observed reward for ``arm``."""
        self.counts[arm] += 1
        self.values[arm] += (reward - self.values[arm]) / self.counts[arm]


class ThompsonBetaBandit:
    """Thompson sampling with Beta posteriors for rewards in ``[0, 1]``."""

    def __init__(self, n_arms, seed=0):
        if n_arms < 1:
            raise ModelError("n_arms must be >= 1")
        self.n_arms = n_arms
        self._rng = ensure_rng(seed)
        self.alpha = np.ones(n_arms)
        self.beta = np.ones(n_arms)

    def select(self):
        """Sample each posterior and pick the argmax."""
        draws = self._rng.beta(self.alpha, self.beta)
        return int(np.argmax(draws))

    def update(self, arm, reward):
        """Bayesian update with a reward in [0, 1] (fractional allowed)."""
        reward = float(np.clip(reward, 0.0, 1.0))
        self.alpha[arm] += reward
        self.beta[arm] += 1.0 - reward


class MCTSNode:
    """One node of the UCT search tree."""

    __slots__ = ("state", "parent", "action", "children", "visits", "total", "untried")

    def __init__(self, state, parent=None, action=None, untried=()):
        self.state = state
        self.parent = parent
        self.action = action
        self.children = []
        self.visits = 0
        self.total = 0.0
        self.untried = list(untried)

    @property
    def mean(self):
        return self.total / self.visits if self.visits else 0.0


class MCTS:
    """Generic UCT Monte-Carlo tree search over a pluggable environment.

    The environment is described by three callables, which lets the join-order
    selector, rewrite-rule orderer, and tests all share one search core:

    Args:
        actions_fn: ``state -> list`` of legal actions (empty = terminal).
        step_fn: ``(state, action) -> state`` transition (pure).
        reward_fn: ``state -> float`` terminal reward (higher is better).
        c_uct: UCT exploration constant.
        seed: rollout seed.
    """

    def __init__(self, actions_fn, step_fn, reward_fn, c_uct=1.4, seed=0):
        self.actions_fn = actions_fn
        self.step_fn = step_fn
        self.reward_fn = reward_fn
        self.c_uct = c_uct
        self._rng = ensure_rng(seed)

    def _select(self, node):
        while not node.untried and node.children:
            log_n = np.log(node.visits + 1)
            node = max(
                node.children,
                key=lambda ch: ch.mean + self.c_uct * np.sqrt(log_n / (ch.visits + 1e-9)),
            )
        return node

    def _expand(self, node):
        if not node.untried:
            return node
        i = int(self._rng.integers(0, len(node.untried)))
        action = node.untried.pop(i)
        next_state = self.step_fn(node.state, action)
        child = MCTSNode(
            next_state,
            parent=node,
            action=action,
            untried=self.actions_fn(next_state),
        )
        node.children.append(child)
        return child

    def _rollout(self, state):
        while True:
            actions = self.actions_fn(state)
            if not actions:
                return self.reward_fn(state)
            action = actions[int(self._rng.integers(0, len(actions)))]
            state = self.step_fn(state, action)

    def search(self, root_state, n_iterations=200):
        """Run UCT from ``root_state``; return ``(best_terminal_state, reward)``.

        The best terminal state is the highest-reward state seen across all
        rollouts/expansions, which for plan search means the best complete
        plan encountered — not merely the most-visited child.
        """
        root = MCTSNode(root_state, untried=self.actions_fn(root_state))
        best_state, best_reward = None, -np.inf
        for _ in range(n_iterations):
            node = self._select(root)
            node = self._expand(node)
            state = node.state
            # Complete the episode with a random rollout, tracking the final
            # state so we can return the best complete solution.
            actions = self.actions_fn(state)
            while actions:
                action = actions[int(self._rng.integers(0, len(actions)))]
                state = self.step_fn(state, action)
                actions = self.actions_fn(state)
            reward = self.reward_fn(state)
            if reward > best_reward:
                best_state, best_reward = state, reward
            while node is not None:
                node.visits += 1
                node.total += reward
                node = node.parent
        return best_state, best_reward
