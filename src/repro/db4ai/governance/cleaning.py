"""ActiveClean-lite: cleaning-budget-aware data cleaning for ML.

Krishnan et al. [34]: when training data is dirty and cleaning is
expensive (human effort per record), clean the records that most improve
the model first. ActiveClean prioritizes by the *gradient influence* of
each dirty record on the current model, retraining as batches come back.

The substrate corrupts a systematic subset of a synthetic training set
(label flips + feature shifts concentrated where they hurt most); the
experiment (E14) compares model accuracy as a function of cleaned-record
budget for influence-prioritized vs. uniform-random cleaning.
"""

import numpy as np

from repro.common import ensure_rng
from repro.ml import LogisticRegression, StandardScaler, accuracy


class CorruptedDataset:
    """A binary-classification set with a systematically corrupted subset.

    The clean distribution: ``y = 1 if w.x + b > 0``. Corruption hits
    records in a feature-space region (not uniformly — systematic errors
    are what make naive retraining dangerous): labels flip and a feature
    is scaled, for a ``corrupt_fraction`` of rows.

    Attributes:
        X_dirty, y_dirty: the observable (partially corrupted) data.
        X_clean, y_clean: the ground truth (what cleaning recovers).
        is_dirty: boolean mask of corrupted rows.
        X_test, y_test: a clean held-out evaluation set.
    """

    def __init__(self, n_rows=2000, n_features=6, corrupt_fraction=0.4,
                 n_test=800, seed=0):
        rng = ensure_rng(seed)
        w = rng.normal(size=n_features)
        b = 0.0

        def sample(n):
            X = rng.normal(size=(n, n_features))
            margin = X @ w + b + rng.normal(0, 0.3, size=n)
            return X, (margin > 0).astype(float)

        self.X_clean, self.y_clean = sample(n_rows)
        self.X_test, self.y_test = sample(n_test)
        # Detected-dirty set (e.g., rows failing integrity checks): real
        # corruption is heterogeneous — some flagged rows are badly wrong
        # (labels flipped + features shifted), many are only mildly off.
        # Cleaning budget should go to the damaging ones first; that
        # difference is exactly what ActiveClean's influence signal finds.
        n_dirty = int(n_rows * corrupt_fraction)
        dirty_idx = rng.choice(n_rows, size=n_dirty, replace=False)
        self.is_dirty = np.zeros(n_rows, dtype=bool)
        self.is_dirty[dirty_idx] = True
        self.X_dirty = self.X_clean.copy()
        self.y_dirty = self.y_clean.copy()
        # Severe rows: a systematic logging bug forces the positive label
        # for flagged rows in one feature region — structured corruption
        # that rotates the learned boundary. The remaining flagged rows are
        # only mildly off (jittered features, correct labels), so budget
        # spent on them is budget wasted.
        in_region = self.X_clean[dirty_idx, 1] > 0.2
        severe = dirty_idx[in_region]
        mild = dirty_idx[~in_region]
        self.y_dirty[severe] = 1.0
        self.X_dirty[mild] += rng.normal(0, 0.1, size=(len(mild), n_features))

    @property
    def n_rows(self):
        """Training-set size."""
        return len(self.y_dirty)


class _CleaningSession:
    """Shared mechanics: iterative clean-batch -> retrain loop."""

    def __init__(self, dataset, batch_size=40, seed=0):
        self.dataset = dataset
        self.batch_size = batch_size
        self._rng = ensure_rng(seed)
        self.cleaned = np.zeros(dataset.n_rows, dtype=bool)
        self.X = dataset.X_dirty.copy()
        self.y = dataset.y_dirty.copy()
        self.scaler = StandardScaler()
        self.model = None
        self._retrain()

    def _retrain(self):
        Xs = self.scaler.fit_transform(self.X)
        self.model = LogisticRegression(lr=0.3, epochs=300, seed=0)
        self.model.fit(Xs, self.y)

    def _select(self):
        raise NotImplementedError

    def step(self):
        """Clean one batch, retrain; returns indices cleaned."""
        chosen = self._select()
        for i in chosen:
            self.X[i] = self.dataset.X_clean[i]
            self.y[i] = self.dataset.y_clean[i]
            self.cleaned[i] = True
        self._retrain()
        return chosen

    def test_accuracy(self):
        """Accuracy of the current model on the clean held-out set."""
        Xs = self.scaler.transform(self.dataset.X_test)
        return accuracy(self.dataset.y_test, self.model.predict(Xs))


class RandomCleanSession(_CleaningSession):
    """Baseline: clean uniformly random not-yet-cleaned *dirty* records.

    Both strategies draw from the detected-dirty pool (integrity checks
    flag candidates); the difference is purely prioritization.
    """

    name = "random"

    def _candidates(self):
        return np.where(self.dataset.is_dirty & ~self.cleaned)[0]

    def _select(self):
        candidates = self._candidates()
        if len(candidates) == 0:
            return []
        k = min(self.batch_size, len(candidates))
        return list(self._rng.choice(candidates, size=k, replace=False))


class ActiveCleanSession(_CleaningSession):
    """ActiveClean: prioritize records by gradient influence.

    For logistic loss the per-record gradient norm is
    ``|sigmoid(w.x) - y| * ||x||``; records where the current model is
    confidently wrong (large residual, large leverage) are cleaned first.
    A small epsilon of random exploration avoids starving regions the
    current (dirty) model is blind to.
    """

    name = "activeclean"

    def __init__(self, dataset, batch_size=40, seed=0, epsilon=0.1,
                 weighting="influence"):
        if weighting not in ("influence", "residual"):
            raise ValueError("weighting must be 'influence' or 'residual'")
        self.epsilon = epsilon
        self.weighting = weighting
        super().__init__(dataset, batch_size, seed)

    def _select(self):
        candidates = np.where(self.dataset.is_dirty & ~self.cleaned)[0]
        if len(candidates) == 0:
            return []
        Xs = self.scaler.transform(self.X[candidates])
        probs = self.model.predict_proba(Xs)
        residual = np.abs(probs - self.y[candidates])
        if self.weighting == "residual":
            # Ablation: loss-only prioritization without the leverage term.
            influence = residual
        else:
            leverage = np.linalg.norm(Xs, axis=1)
            influence = residual * leverage
        k = min(self.batch_size, len(candidates))
        n_explore = int(k * self.epsilon)
        n_exploit = k - n_explore
        order = np.argsort(-influence)
        chosen = list(candidates[order[:n_exploit]])
        rest = candidates[order[n_exploit:]]
        if n_explore and len(rest):
            chosen.extend(
                self._rng.choice(rest, size=min(n_explore, len(rest)),
                                 replace=False)
            )
        return chosen


def cleaning_curve(session_cls, dataset, n_batches=10, batch_size=40, seed=0,
                   **kwargs):
    """Accuracy-vs-cleaned-records curve for one strategy.

    Returns:
        ``(cleaned_counts, accuracies)`` arrays (length ``n_batches + 1``,
        including the before-any-cleaning point).
    """
    session = session_cls(dataset, batch_size=batch_size, seed=seed, **kwargs)
    counts = [0]
    accs = [session.test_accuracy()]
    for __ in range(n_batches):
        session.step()
        counts.append(int(session.cleaned.sum()))
        accs.append(session.test_accuracy())
    return np.asarray(counts), np.asarray(accs)
