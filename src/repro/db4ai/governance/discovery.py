"""Aurum-lite: an enterprise knowledge graph (EKG) for data discovery.

Fernandez et al. [16] build a hypergraph whose nodes are table columns,
with edges for content similarity and joinability, and hyperedges grouping
columns of the same table; discovery queries (find joinable columns, find
similar data, keyword search) become graph traversals.

This implementation profiles every column in a catalog (MinHash sketches
for value overlap, token sets for name similarity), wires the EKG as a
NetworkX graph, and answers the discovery queries the paper motivates.
"""

import re

import networkx as nx
import numpy as np

from repro.common import CatalogError
from repro.engine.types import DataType

_N_HASHES = 64


def _minhash(values, seed=12345, n_hashes=_N_HASHES):
    """MinHash sketch of a value set (string-hashed, deterministic)."""
    rng = np.random.default_rng(seed)
    salts = rng.integers(1, 2**31 - 1, size=n_hashes)
    sketch = np.full(n_hashes, np.iinfo(np.int64).max, dtype=np.int64)
    for v in values:
        h = hash(str(v)) & 0x7FFFFFFF
        hs = (h * salts) % (2**31 - 1)
        np.minimum(sketch, hs, out=sketch)
    return sketch


def _jaccard_from_sketches(a, b):
    return float(np.mean(a == b))


def _name_tokens(name):
    return set(t for t in re.split(r"[_\W]+", name.lower()) if t)


class _ColumnProfile:
    """Profile of one column: sketch, stats, tokens."""

    def __init__(self, table, column, dtype, values):
        self.table = table
        self.column = column
        self.dtype = dtype
        self.node = "%s.%s" % (table.lower(), column.lower())
        sample = values[:2000]
        self.n_distinct = len(set(map(str, sample)))
        self.sketch = _minhash(set(map(str, sample)))
        self.tokens = _name_tokens(column) | _name_tokens(table)
        if dtype is not DataType.TEXT and len(sample):
            arr = np.asarray(sample, dtype=float)
            self.min, self.max = float(arr.min()), float(arr.max())
        else:
            self.min = self.max = None


class EnterpriseKnowledgeGraph:
    """The EKG: column nodes + similarity/joinability edges.

    Args:
        content_threshold: minimum estimated value-overlap (Jaccard) for a
            content edge.
        name_threshold: minimum token Jaccard for a name-similarity edge.
    """

    def __init__(self, content_threshold=0.25, name_threshold=0.5):
        self.content_threshold = content_threshold
        self.name_threshold = name_threshold
        self.graph = nx.Graph()
        self._profiles = {}

    def build(self, catalog, tables=None):
        """Profile the catalog's columns and wire the graph."""
        names = tables if tables is not None else catalog.table_names()
        profiles = []
        for t in names:
            table = catalog.table(t)
            for col in table.schema.columns:
                values = table.column_array(col.name).tolist()
                profiles.append(
                    _ColumnProfile(table.name, col.name, col.dtype, values)
                )
        for p in profiles:
            self._profiles[p.node] = p
            self.graph.add_node(p.node, table=p.table, column=p.column,
                                dtype=p.dtype.value, n_distinct=p.n_distinct)
        # Same-table hyperedges (modeled as a table attribute per node and
        # pairwise "same_table" edges to keep the graph simple).
        for i, a in enumerate(profiles):
            for b in profiles[i + 1:]:
                if a.table.lower() == b.table.lower():
                    continue
                kinds = {}
                if a.dtype == b.dtype:
                    overlap = _jaccard_from_sketches(a.sketch, b.sketch)
                    if overlap >= self.content_threshold:
                        kinds["content"] = overlap
                name_sim = (
                    len(a.tokens & b.tokens) / len(a.tokens | b.tokens)
                    if (a.tokens | b.tokens)
                    else 0.0
                )
                if name_sim >= self.name_threshold:
                    kinds["name"] = name_sim
                if kinds:
                    self.graph.add_edge(a.node, b.node, **kinds)
        return self

    # -- discovery queries ------------------------------------------------
    def joinable_columns(self, table, column, min_overlap=None):
        """Columns with high value overlap (join candidates), ranked."""
        node = "%s.%s" % (table.lower(), column.lower())
        if node not in self.graph:
            raise CatalogError("no profiled column %r" % (node,))
        threshold = (
            min_overlap if min_overlap is not None else self.content_threshold
        )
        out = []
        for nb in self.graph.neighbors(node):
            data = self.graph.edges[node, nb]
            if data.get("content", 0.0) >= threshold:
                out.append((nb, data["content"]))
        return sorted(out, key=lambda x: -x[1])

    def similar_names(self, table, column):
        """Columns with similar names (schema-matching candidates)."""
        node = "%s.%s" % (table.lower(), column.lower())
        if node not in self.graph:
            raise CatalogError("no profiled column %r" % (node,))
        out = []
        for nb in self.graph.neighbors(node):
            data = self.graph.edges[node, nb]
            if "name" in data:
                out.append((nb, data["name"]))
        return sorted(out, key=lambda x: -x[1])

    def keyword_search(self, keyword):
        """Columns whose name/table tokens contain ``keyword``."""
        kw = keyword.lower()
        hits = []
        for node, p in self._profiles.items():
            if any(kw in tok for tok in p.tokens):
                hits.append(node)
        return sorted(hits)

    def related_tables(self, table, max_hops=2):
        """Tables reachable from ``table`` within ``max_hops`` EKG hops."""
        start_nodes = [
            n for n, p in self._profiles.items()
            if p.table.lower() == table.lower()
        ]
        seen_tables = set()
        frontier = set(start_nodes)
        for __ in range(max_hops):
            nxt = set()
            for node in frontier:
                for nb in self.graph.neighbors(node):
                    nxt.add(nb)
                    seen_tables.add(self._profiles[nb].table.lower())
            frontier = nxt
        seen_tables.discard(table.lower())
        return sorted(seen_tables)


def joinable_pairs(ekg, min_overlap=0.5):
    """All high-overlap column pairs in the EKG (for precision/recall eval)."""
    pairs = []
    for a, b, data in ekg.graph.edges(data=True):
        if data.get("content", 0.0) >= min_overlap:
            pairs.append((a, b, data["content"]))
    return sorted(pairs, key=lambda x: -x[2])
